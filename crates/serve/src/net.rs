//! Transport endpoints: Unix-domain sockets and TCP, std only.
//!
//! The daemon listens on exactly one [`Endpoint`]; clients connect to
//! the same value. Unix sockets are the container/pod-launch deployment
//! (a path the runtime mounts into the enforcement agent); TCP is the
//! fleet deployment (one analysis service per rack answering many
//! hosts). [`Conn`] erases the difference for the protocol layer.

use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where the policy service listens (or where a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP socket at this `host:port` address. Binding `…:0` picks an
    /// ephemeral port; the server handle reports the resolved address.
    Tcp(String),
}

impl Endpoint {
    /// Parses a CLI-style endpoint spec: `tcp:HOST:PORT` is TCP,
    /// `unix:PATH` or a bare path is a Unix socket.
    pub fn parse(spec: &str) -> Endpoint {
        if let Some(addr) = spec.strip_prefix("tcp:") {
            Endpoint::Tcp(addr.to_string())
        } else if let Some(path) = spec.strip_prefix("unix:") {
            Endpoint::Unix(PathBuf::from(path))
        } else {
            Endpoint::Unix(PathBuf::from(spec))
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A listening socket on either transport. Public because the serve
/// daemon is not its only consumer: the fleet coordinator accepts agent
/// connections through the same abstraction.
pub enum Listener {
    /// A bound Unix-domain listener.
    Unix(UnixListener),
    /// A bound TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds the endpoint. A Unix path with no live listener behind it
    /// (a previous daemon died without cleanup) is removed and rebound;
    /// a path a live daemon answers on is refused as `AddrInUse`.
    pub fn bind(endpoint: &Endpoint) -> std::io::Result<(Listener, Endpoint)> {
        match endpoint {
            Endpoint::Unix(path) => {
                if path.exists() {
                    if UnixStream::connect(path).is_ok() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::AddrInUse,
                            format!("{} already has a live listener", path.display()),
                        ));
                    }
                    std::fs::remove_file(path)?;
                }
                let listener = UnixListener::bind(path)?;
                Ok((Listener::Unix(listener), endpoint.clone()))
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let resolved = Endpoint::Tcp(listener.local_addr()?.to_string());
                Ok((Listener::Tcp(listener), resolved))
            }
        }
    }

    /// Blocks until a peer connects and returns the accepted connection.
    /// On a nonblocking listener, returns `WouldBlock` when no peer is
    /// pending instead of blocking.
    pub fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }

    /// Switches the listener between blocking and nonblocking accepts —
    /// the readiness loop polls the listening socket alongside every
    /// connection instead of dedicating a thread to `accept`.
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }
}

impl AsRawFd for Listener {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Listener::Unix(l) => l.as_raw_fd(),
            Listener::Tcp(l) => l.as_raw_fd(),
        }
    }
}

/// One accepted or dialed connection on either transport.
#[derive(Debug)]
pub enum Conn {
    /// A Unix-domain stream.
    Unix(UnixStream),
    /// A TCP stream.
    Tcp(TcpStream),
}

impl Conn {
    /// Dials the endpoint.
    pub fn connect(endpoint: &Endpoint) -> std::io::Result<Conn> {
        match endpoint {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Conn::Tcp),
        }
    }

    /// A second handle onto the same socket (separate read/write halves).
    pub fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }

    /// Bounds how long a read may block.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(timeout),
            Conn::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Switches the socket between blocking and non-blocking reads —
    /// used by the serve watcher thread to probe a parked connection
    /// for liveness without ever blocking on it.
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_nonblocking(nonblocking),
            Conn::Tcp(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// A display label for the remote peer: the TCP peer address, or a
    /// placeholder for Unix sockets (whose peers are anonymous).
    pub fn peer_label(&self) -> String {
        match self {
            Conn::Unix(_) => "unix-peer".to_string(),
            Conn::Tcp(s) => s
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "tcp-peer".to_string()),
        }
    }

    /// Severs both directions of the socket. Every clone of the
    /// connection observes it at once — the lever for forcibly
    /// disconnecting a peer (e.g. a fleet agent declared dead) whose
    /// reader thread is blocked in a read on another handle.
    pub fn shutdown_both(&self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl AsRawFd for Conn {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Conn::Unix(s) => s.as_raw_fd(),
            Conn::Tcp(s) => s.as_raw_fd(),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// Removes a Unix socket file if the endpoint is one (listener teardown).
pub fn cleanup(endpoint: &Endpoint) {
    if let Endpoint::Unix(path) = endpoint {
        let _ = std::fs::remove_file(path);
    }
}

/// `true` when an I/O error means "the socket is not ready right now" —
/// a nonblocking read or write that found nothing to do. Strictly
/// `WouldBlock`: on a nonblocking socket this is routine flow control,
/// never a failure, and conflating it with `TimedOut` (as the old
/// `is_timeout` did) would misread ordinary backpressure as a deadline.
pub fn is_would_block(e: &std::io::Error) -> bool {
    e.kind() == std::io::ErrorKind::WouldBlock
}

/// `true` when an I/O error means a configured read deadline expired on a
/// *blocking* socket (`set_read_timeout`). Platforms disagree on the
/// kind — Linux reports `WouldBlock`, others `TimedOut` — so both map
/// here. Only meaningful for blocking sockets; on a nonblocking socket
/// use [`is_would_block`], where `WouldBlock` means "not ready".
pub fn is_deadline(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_covers_both_transports() {
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7878"),
            Endpoint::Tcp("127.0.0.1:7878".to_string())
        );
        assert_eq!(
            Endpoint::parse("unix:/run/bside.sock"),
            Endpoint::Unix(PathBuf::from("/run/bside.sock"))
        );
        assert_eq!(
            Endpoint::parse("/run/bside.sock"),
            Endpoint::Unix(PathBuf::from("/run/bside.sock"))
        );
    }

    #[test]
    fn endpoint_display_round_trips_through_parse() {
        for spec in ["tcp:127.0.0.1:7878", "unix:/tmp/x.sock"] {
            let ep = Endpoint::parse(spec);
            assert_eq!(Endpoint::parse(&ep.to_string()), ep);
        }
    }

    #[test]
    fn nonblocking_not_ready_is_would_block_not_deadline() {
        // A nonblocking socket with nothing buffered: the error is
        // routine "not ready" flow control. is_would_block must accept
        // it; both classifiers match WouldBlock, but the distinction
        // that matters is below — a real deadline expiry is NOT
        // would-block.
        let (a, _b) = UnixStream::pair().expect("pair");
        a.set_nonblocking(true).expect("nonblocking");
        let mut conn = Conn::Unix(a);
        let mut buf = [0u8; 8];
        let err = conn.read(&mut buf).expect_err("nothing to read");
        assert!(
            is_would_block(&err),
            "nonblocking empty read is would-block"
        );
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    }

    #[test]
    fn blocking_deadline_expiry_is_deadline() {
        // A blocking socket with a read timeout: expiry is a deadline,
        // whatever kind the platform reports (Linux says WouldBlock,
        // others TimedOut). is_deadline accepts both kinds.
        let (a, _b) = UnixStream::pair().expect("pair");
        a.set_read_timeout(Some(Duration::from_millis(30)))
            .expect("timeout");
        let mut conn = Conn::Unix(a);
        let mut buf = [0u8; 8];
        let err = conn.read(&mut buf).expect_err("deadline expires");
        assert!(is_deadline(&err), "read-timeout expiry is a deadline");
        // And a genuine failure is neither.
        let real = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone");
        assert!(!is_would_block(&real));
        assert!(!is_deadline(&real));
    }

    #[test]
    fn stale_unix_socket_is_rebound() {
        let dir = std::env::temp_dir().join(format!("bside_net_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.sock");
        // A socket file with no listener behind it.
        drop(UnixListener::bind(&path).unwrap());
        assert!(path.exists(), "dropped listener leaves the file");
        let (listener, _) = Listener::bind(&Endpoint::Unix(path.clone())).expect("rebinds");
        // And a live listener is refused.
        let err = match Listener::bind(&Endpoint::Unix(path.clone())) {
            Err(e) => e,
            Ok(_) => panic!("binding over a live listener must fail"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        drop(listener);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
