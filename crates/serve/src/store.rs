//! The content-addressed policy store.
//!
//! Keyed by exactly the `bside_dist::cache` scheme —
//! `SHA-256(elf bytes ‖ 0x00 ‖ semantic-options fingerprint)` — so a
//! policy's address is stable across daemons, machines, and worker
//! counts, and a store directory can be pre-populated by a batch corpus
//! run and then served read-mostly. Dynamically linked binaries extend
//! the key with a **library-set fingerprint** (the SHA-256 of every
//! loaded shared interface, see [`library_fingerprint`]): re-analyzing a
//! library yields new interfaces, hence new keys, hence no stale bundles.
//! Values are [`PolicyBundle`]s in the `bside_filter::wire` JSON.
//!
//! Two layers:
//!
//! * an **in-memory map** of `Arc<PolicyBundle>` — the hot path a loaded
//!   daemon answers from without touching disk or re-parsing JSON;
//! * an optional **directory** of `<key>.policy.json` entries written
//!   atomically (temp file + rename), shared safely between concurrent
//!   daemons and surviving restarts. A corrupt or truncated entry reads
//!   as a miss, never as an error — the daemon re-analyzes and rewrites.
//!
//! The store also owns the daemon's **generation counter**: a per-process
//! strictly monotonic `u64` bumped by every mutation ([`PolicyStore::insert`],
//! [`PolicyStore::invalidate`]) — the push half of the `watch` protocol,
//! so long-lived enforcement agents learn about re-analyzed binaries
//! without polling. Generations are not persisted: a restarted daemon
//! starts at 0 and clients re-anchor from the `hello` they receive on
//! (re)connect.
//!
//! Two notification surfaces share that counter:
//!
//! * **blocking** — [`PolicyStore::wait_newer`] parks the calling thread
//!   on a condvar until the generation moves (used by embedders and
//!   tests that own a thread per waiter);
//! * **subscription** — [`PolicyStore::subscribe`] registers a token,
//!   optionally scoped to one store key, and every mutation moves the
//!   affected tokens onto a fired list ([`PolicyStore::take_fired`]) and
//!   rings the registered waker. This is the event-loop half: thousands
//!   of parked `watch` connections cost one map entry each, a mutation
//!   of key *k* wakes exactly *k*'s subscribers (plus keyless,
//!   whole-store subscribers), and nothing polls. The per-key
//!   last-mutation index (`key_gens`) makes subscription atomic against
//!   a racing mutation: a key mutated after the subscriber's anchor is
//!   reported `Ready` immediately rather than being lost.

use crate::protocol::PolicyBundle;
use bside_core::{AnalyzerOptions, LibraryStore};
use bside_dist::cache::{options_fingerprint, sha256_hex};
use bside_dist::ResultCache;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A concurrent policy store: in-memory map over an optional directory,
/// plus the daemon's monotonic generation counter.
#[derive(Debug)]
pub struct PolicyStore {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<String, Arc<PolicyBundle>>>,
    /// Generation counter plus the subscription registry; one mutex so a
    /// bump, its per-key index update, and the waiter hand-off are a
    /// single atomic step (no subscribe/mutate race can lose a wakeup).
    generation: Mutex<GenState>,
    generation_cv: Condvar,
}

/// Everything guarded by the generation lock.
struct GenState {
    /// The mutation counter itself.
    value: u64,
    /// Per-key last-mutation generation. `key_gens[k] > seen` means key
    /// `k` changed after a subscriber anchored at `seen` — the check
    /// that turns a would-be lost wakeup into an immediate `Ready`.
    /// Unbounded by design: clearing entries would reintroduce the lost
    /// wakeup, and growth tracks the store's own key population.
    key_gens: HashMap<String, u64>,
    /// Parked subscriptions by caller-chosen token.
    waiters: HashMap<u64, Waiter>,
    /// Subscriptions whose condition fired, as `(token, generation at
    /// fire)`, awaiting collection via [`PolicyStore::take_fired`].
    fired: Vec<(u64, u64)>,
    /// Rung (outside the lock) whenever `fired` gains entries.
    waker: Option<Arc<dyn Fn() + Send + Sync>>,
}

#[derive(Debug)]
struct Waiter {
    /// `Some(key)` scopes the subscription to one store key; `None` is a
    /// whole-store subscription (v2 `watch` semantics). The subscriber's
    /// anchor generation is *not* kept: a parked waiter is by
    /// construction anchored at or past the current state, so any later
    /// matching mutation satisfies it.
    key: Option<String>,
}

impl std::fmt::Debug for GenState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenState")
            .field("value", &self.value)
            .field("keys", &self.key_gens.len())
            .field("waiters", &self.waiters.len())
            .field("fired", &self.fired.len())
            .field("waker", &self.waker.is_some())
            .finish()
    }
}

/// What [`PolicyStore::subscribe`] decided, atomically against mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subscribed {
    /// The anchor is ahead of the store — the subscriber's generation
    /// cannot have been issued by this process (daemon restart).
    Ahead {
        /// The store's current generation.
        current: u64,
    },
    /// The watched state already moved past the anchor; no parking
    /// needed, answer immediately with `current`.
    Ready {
        /// The generation to report to the subscriber.
        current: u64,
    },
    /// Parked: the token is registered and will appear in
    /// [`PolicyStore::take_fired`] once the condition fires.
    Parked,
}

/// Distinguishes concurrent writers' temp files within one process (the
/// pid alone distinguishes processes).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl PolicyStore {
    /// Opens a store over `dir` (created if needed), or a purely
    /// in-memory store when `dir` is `None`.
    pub fn open(dir: Option<&Path>) -> std::io::Result<PolicyStore> {
        if let Some(dir) = dir {
            std::fs::create_dir_all(dir)?;
        }
        Ok(PolicyStore {
            dir: dir.map(Path::to_path_buf),
            mem: Mutex::new(HashMap::new()),
            generation: Mutex::new(GenState {
                value: 0,
                key_gens: HashMap::new(),
                waiters: HashMap::new(),
                fired: Vec::new(),
                waker: None,
            }),
            generation_cv: Condvar::new(),
        })
    }

    /// The content address of `(elf bytes, options)` for a **static**
    /// binary — delegated to the analysis cache's scheme, one key format
    /// across the workspace.
    pub fn key(elf_bytes: &[u8], options: &AnalyzerOptions) -> String {
        ResultCache::key(elf_bytes, options)
    }

    /// The content address of `(elf bytes, options, library set)`. With
    /// `lib_fingerprint == None` (a static binary, or a daemon with no
    /// libraries loaded) this is exactly [`PolicyStore::key`]; otherwise
    /// the library-set fingerprint is mixed in, so a bundle derived
    /// against one set of shared interfaces is never served for another.
    pub fn key_with_libs(
        elf_bytes: &[u8],
        options: &AnalyzerOptions,
        lib_fingerprint: Option<&str>,
    ) -> String {
        match lib_fingerprint {
            None => Self::key(elf_bytes, options),
            Some(fp) => sha256_hex(&[
                elf_bytes,
                b"\x00",
                options_fingerprint(options).as_bytes(),
                b"\x00libs:",
                fp.as_bytes(),
            ]),
        }
    }

    fn entry_path(&self, key: &str) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key}.policy.json")))
    }

    fn sidecar_path(&self, key: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{key}.libfp")))
    }

    /// Removes every on-disk entry whose recorded library-set
    /// fingerprint differs from `current` — the startup sweep a daemon
    /// runs after loading its `--lib-dir`. Re-analyzed interfaces mean
    /// new store keys, so entries fingerprinted under the old set can
    /// never be addressed again by this daemon; without the sweep they
    /// linger until manual invalidation or eviction. Returns the number
    /// of entries removed (each also clears its in-memory copy and its
    /// sidecar). Purely in-memory stores have nothing to sweep.
    pub fn sweep_stale_lib_entries(&self, current: &str) -> usize {
        let Some(dir) = &self.dir else {
            return 0;
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        let mut swept_keys: Vec<String> = Vec::new();
        for entry in entries.filter_map(Result::ok) {
            let file_name = entry.file_name();
            let name = file_name.to_string_lossy();
            let Some(key) = name.strip_suffix(".libfp") else {
                continue;
            };
            let recorded = std::fs::read_to_string(entry.path()).unwrap_or_default();
            if recorded == current {
                continue;
            }
            // Same lock discipline as `invalidate`: memory and disk go
            // under one hold so a racing load cannot resurrect the
            // entry between the two removals.
            let mut mem = self.mem.lock().expect("store lock");
            if let Some(path) = self.entry_path(key) {
                if std::fs::remove_file(path).is_ok() {
                    swept_keys.push(key.to_string());
                }
            }
            mem.remove(key);
            drop(mem);
            let _ = std::fs::remove_file(entry.path());
        }
        if !swept_keys.is_empty() {
            // One bump for the whole sweep — watchers hear one mutation,
            // but every swept key's subscribers are woken.
            let keys: Vec<&str> = swept_keys.iter().map(String::as_str).collect();
            self.bump_keys(&keys);
        }
        swept_keys.len()
    }

    /// The current generation: the number of mutations this process's
    /// store has performed. Strictly monotonic; starts at 0.
    pub fn generation(&self) -> u64 {
        self.generation.lock().expect("generation lock").value
    }

    /// Bumps the generation **once** for a mutation touching `keys`,
    /// records each key's last-mutation generation, moves every affected
    /// subscription (matching keyed ones plus all keyless ones) onto the
    /// fired list, and wakes blocking waiters. Returns the new value,
    /// unique to this mutation. The registered waker, if any, is rung
    /// after the lock is released.
    fn bump_keys(&self, keys: &[&str]) -> u64 {
        let (now, waker) = {
            let mut state = self.generation.lock().expect("generation lock");
            state.value += 1;
            let now = state.value;
            for key in keys {
                state.key_gens.insert((*key).to_string(), now);
            }
            let ripe: Vec<u64> = state
                .waiters
                .iter()
                .filter(|(_, w)| match &w.key {
                    None => true,
                    Some(k) => keys.iter().any(|mutated| mutated == k),
                })
                .map(|(token, _)| *token)
                .collect();
            for token in ripe {
                state.waiters.remove(&token);
                state.fired.push((token, now));
            }
            let waker = if state.fired.is_empty() {
                None
            } else {
                state.waker.clone()
            };
            self.generation_cv.notify_all();
            (now, waker)
        };
        if let Some(waker) = waker {
            waker();
        }
        now
    }

    /// Blocks until the generation exceeds `than` or `timeout` expires;
    /// returns the generation observed at wakeup. The thread-per-waiter
    /// counterpart to [`PolicyStore::subscribe`]; kept for embedders and
    /// tests that own a thread per waiter.
    pub fn wait_newer(&self, than: u64, timeout: Duration) -> u64 {
        let state = self.generation.lock().expect("generation lock");
        let (state, _) = self
            .generation_cv
            .wait_timeout_while(state, timeout, |s| s.value <= than)
            .expect("generation wait");
        state.value
    }

    /// Registers interest in mutations after `seen`, scoped to `key`
    /// when given, under the caller-chosen `token`. Decided atomically
    /// against concurrent mutations:
    ///
    /// * `seen` ahead of the store → [`Subscribed::Ahead`] (stale anchor
    ///   from a previous daemon incarnation — the caller should error);
    /// * the watched state already moved past `seen` (for a keyed
    ///   subscription: that key was last mutated after `seen`; keyless:
    ///   any mutation after `seen`) → [`Subscribed::Ready`] — answer now,
    ///   nothing was lost;
    /// * otherwise the token parks and will surface through
    ///   [`PolicyStore::take_fired`] exactly when the condition fires.
    pub fn subscribe(&self, token: u64, key: Option<&str>, seen: u64) -> Subscribed {
        let mut state = self.generation.lock().expect("generation lock");
        if seen > state.value {
            return Subscribed::Ahead {
                current: state.value,
            };
        }
        let already = match key {
            Some(k) => state.key_gens.get(k).copied().unwrap_or(0) > seen,
            None => state.value > seen,
        };
        if already {
            return Subscribed::Ready {
                current: state.value,
            };
        }
        state.waiters.insert(
            token,
            Waiter {
                key: key.map(str::to_string),
            },
        );
        Subscribed::Parked
    }

    /// Drops the subscription under `token` (parked or already fired but
    /// uncollected). Returns whether anything was removed. Called when a
    /// watching connection goes away before its condition fires.
    pub fn unsubscribe(&self, token: u64) -> bool {
        let mut state = self.generation.lock().expect("generation lock");
        let parked = state.waiters.remove(&token).is_some();
        let before = state.fired.len();
        state.fired.retain(|(t, _)| *t != token);
        parked || state.fired.len() != before
    }

    /// Takes the fired subscriptions accumulated since the last call, as
    /// `(token, generation at fire)` pairs in firing order.
    pub fn take_fired(&self) -> Vec<(u64, u64)> {
        let mut state = self.generation.lock().expect("generation lock");
        std::mem::take(&mut state.fired)
    }

    /// Installs the waker rung (outside the generation lock) whenever a
    /// mutation moves subscriptions onto the fired list — how the serve
    /// event loop learns a parked `watch` is ready without polling.
    pub fn set_waker(&self, waker: Arc<dyn Fn() + Send + Sync>) {
        self.generation.lock().expect("generation lock").waker = Some(waker);
    }

    /// Loads the bundle under `key`: memory first, then disk (promoting
    /// a disk hit into memory). Corrupt entries are a miss.
    ///
    /// The disk promotion happens *under the memory lock*: releasing it
    /// between the disk read and the memory insert would let a
    /// concurrent [`PolicyStore::invalidate`] (mem remove, then disk
    /// remove) interleave so the stale bundle is re-inserted after the
    /// invalidation completed — resurrecting an entry the daemon just
    /// acknowledged as removed, forever. Holding the lock makes the two
    /// orders both correct: either the invalidation ran first (the disk
    /// file is gone, this is a miss) or it runs after (and removes the
    /// freshly promoted entry). Promotion is once per key per process,
    /// so the lock is not held across disk I/O on any steady-state path.
    pub fn load(&self, key: &str) -> Option<Arc<PolicyBundle>> {
        let mut mem = self.mem.lock().expect("store lock");
        if let Some(hit) = mem.get(key) {
            return Some(Arc::clone(hit));
        }
        let path = self.entry_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        let bundle: PolicyBundle = serde_json::from_str(&text).ok()?;
        let bundle = Arc::new(bundle);
        mem.insert(key.to_string(), Arc::clone(&bundle));
        Some(bundle)
    }

    /// Stores `bundle` under `key` in memory and (when directory-backed)
    /// on disk via write-then-rename, so a concurrent reader never sees
    /// a partial entry. Returns the shared handle and the generation the
    /// insert landed at.
    pub fn insert(
        &self,
        key: &str,
        bundle: PolicyBundle,
    ) -> std::io::Result<(Arc<PolicyBundle>, u64)> {
        self.insert_with_libs(key, bundle, None)
    }

    /// [`PolicyStore::insert`] for a bundle whose key folds in a
    /// library-set fingerprint. The fingerprint is recorded in a
    /// `<key>.libfp` sidecar next to the entry, which is what lets a
    /// restarted daemon recognize — and proactively sweep — entries
    /// derived against shared interfaces it no longer serves (see
    /// [`PolicyStore::sweep_stale_lib_entries`]).
    pub fn insert_with_libs(
        &self,
        key: &str,
        bundle: PolicyBundle,
        lib_fingerprint: Option<&str>,
    ) -> std::io::Result<(Arc<PolicyBundle>, u64)> {
        let bundle = Arc::new(bundle);
        // Serialization and the temp-file write happen before the lock —
        // they are private to this writer. Only the rename (the publish)
        // and the memory insert run under the lock, so they are atomic
        // relative to a concurrent `invalidate`: either order leaves
        // memory and disk agreeing, and hot-path loads never stall
        // behind bundle serialization or a slow disk.
        let staged = match self.entry_path(key) {
            Some(path) => {
                let dir = self.dir.as_ref().expect("entry path implies dir");
                let json = serde_json::to_string(&*bundle).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                let tmp = dir.join(format!(
                    "{key}.tmp.{}.{}",
                    std::process::id(),
                    TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
                ));
                {
                    let mut file = std::fs::File::create(&tmp)?;
                    file.write_all(json.as_bytes())?;
                }
                Some((tmp, path))
            }
            None => None,
        };
        {
            let mut mem = self.mem.lock().expect("store lock");
            if let Some((tmp, path)) = staged {
                if let Err(e) = std::fs::rename(&tmp, path) {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(e);
                }
                // The sidecar is provenance metadata, not the entry
                // itself: best-effort, written after the entry lands
                // (a missing sidecar just means the entry is never
                // swept as stale).
                if let (Some(fp), Some(sidecar)) = (lib_fingerprint, self.sidecar_path(key)) {
                    let _ = std::fs::write(sidecar, fp);
                }
            }
            mem.insert(key.to_string(), Arc::clone(&bundle));
        }
        Ok((bundle, self.bump_keys(&[key])))
    }

    /// Removes the entry under `key` from memory and disk. Returns the
    /// generation the removal landed at when an entry existed, `None`
    /// when the key was unknown (a no-op does not bump the generation —
    /// watchers only wake for real state changes).
    pub fn invalidate(&self, key: &str) -> Option<u64> {
        // Memory and disk are removed under one lock hold, pairing with
        // the locked promotion in [`PolicyStore::load`]: a concurrent
        // load either observes both layers before the removal or both
        // after — never the torn middle that would let it promote the
        // just-deleted disk entry back into memory.
        let removed = {
            let mut mem = self.mem.lock().expect("store lock");
            let mem_hit = mem.remove(key).is_some();
            match self.entry_path(key) {
                Some(path) => match std::fs::remove_file(path) {
                    Ok(()) => true,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => mem_hit,
                    Err(e) => {
                        // The disk entry survives (e.g. the directory went
                        // read-only), so a later load would re-promote it:
                        // report the invalidation as NOT performed rather
                        // than acking a removal that did not stick.
                        eprintln!("bside-serve: invalidating {key} on disk: {e}");
                        false
                    }
                },
                None => mem_hit,
            }
        };
        if removed {
            if let Some(sidecar) = self.sidecar_path(key) {
                let _ = std::fs::remove_file(sidecar);
            }
        }
        removed.then(|| self.bump_keys(&[key]))
    }

    /// Number of stored policies: on-disk entries when directory-backed
    /// (the durable truth), in-memory entries otherwise.
    pub fn len(&self) -> usize {
        match &self.dir {
            Some(dir) => std::fs::read_dir(dir)
                .map(|rd| {
                    rd.filter_map(Result::ok)
                        .filter(|e| e.file_name().to_string_lossy().ends_with(".policy.json"))
                        .count()
                })
                .unwrap_or(0),
            None => self.mem.lock().expect("store lock").len(),
        }
    }

    /// `true` when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The content fingerprint of a whole [`LibraryStore`]: SHA-256 over
/// every interface's `(name, JSON)` in library-name order, `None` for an
/// empty store. Mixed into dynamic-binary store keys so a policy bundle
/// is addressed by the exact interfaces it was derived against.
pub fn library_fingerprint(libs: &LibraryStore) -> Option<String> {
    if libs.is_empty() {
        return None;
    }
    let parts: Vec<String> = libs
        .interfaces()
        .map(|i| format!("{}\x00{}\x00", i.library, i.to_json()))
        .collect();
    let chunks: Vec<&[u8]> = parts.iter().map(|p| p.as_bytes()).collect();
    Some(sha256_hex(&chunks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bside_filter::bpf::BpfProgram;
    use bside_filter::{FilterPolicy, PhasePolicy};
    use bside_syscalls::{SyscallSet, Sysno};

    fn bundle(name: &str) -> PolicyBundle {
        let allowed: SyscallSet = ["read", "write"]
            .iter()
            .filter_map(|n| Sysno::from_name(n))
            .collect();
        let policy = FilterPolicy::allow_only(name, allowed);
        let bpf = BpfProgram::from_policy(&policy);
        PolicyBundle {
            binary: name.to_string(),
            policy,
            phases: PhasePolicy {
                binary: name.to_string(),
                phases: vec![allowed],
                transitions: vec![vec![]],
                initial: 0,
            },
            bpf,
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bside_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_only_store_round_trips() {
        let store = PolicyStore::open(None).unwrap();
        assert!(store.is_empty());
        assert!(store.load("k").is_none());
        store.insert("k", bundle("a")).unwrap();
        assert_eq!(store.load("k").unwrap().binary, "a");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn directory_store_survives_reopening() {
        let dir = scratch("reopen");
        {
            let store = PolicyStore::open(Some(&dir)).unwrap();
            store.insert("deadbeef", bundle("a")).unwrap();
            assert_eq!(store.len(), 1);
        }
        let store = PolicyStore::open(Some(&dir)).unwrap();
        let loaded = store.load("deadbeef").expect("disk hit");
        assert_eq!(loaded.binary, "a");
        assert_eq!(*loaded, bundle("a"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_a_miss_not_an_error() {
        let dir = scratch("corrupt");
        let store = PolicyStore::open(Some(&dir)).unwrap();
        std::fs::write(dir.join("badkey.policy.json"), b"{not json").unwrap();
        assert!(store.load("badkey").is_none());
        // And it can be overwritten with a good entry.
        store.insert("badkey", bundle("fixed")).unwrap();
        assert_eq!(store.load("badkey").unwrap().binary, "fixed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn len_counts_only_policy_entries() {
        let dir = scratch("len");
        let store = PolicyStore::open(Some(&dir)).unwrap();
        store.insert("k1", bundle("a")).unwrap();
        std::fs::write(dir.join("stray.txt"), b"x").unwrap();
        std::fs::write(dir.join("k2.tmp.999.0"), b"partial").unwrap();
        assert_eq!(store.len(), 1, "stray and temp files are not entries");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_matches_the_dist_cache_scheme() {
        let options = AnalyzerOptions::default();
        assert_eq!(
            PolicyStore::key(b"elf", &options),
            ResultCache::key(b"elf", &options),
            "one content-address scheme across analysis cache and policy store"
        );
        assert_eq!(
            PolicyStore::key_with_libs(b"elf", &options, None),
            PolicyStore::key(b"elf", &options),
            "no libraries means the plain static key"
        );
    }

    #[test]
    fn library_fingerprint_splits_keys_per_interface_set() {
        use bside_core::SharedInterface;
        let options = AnalyzerOptions::default();
        let mut libs = LibraryStore::new();
        assert!(library_fingerprint(&libs).is_none(), "empty store: no fp");
        libs.insert(SharedInterface {
            library: "liba.so".to_string(),
            exports: Default::default(),
            wrappers: vec!["w".to_string()],
            addresses_taken: vec![],
            function_cfg: Default::default(),
        });
        let fp_a = library_fingerprint(&libs).expect("one lib");
        let key_a = PolicyStore::key_with_libs(b"elf", &options, Some(&fp_a));
        assert_ne!(
            key_a,
            PolicyStore::key(b"elf", &options),
            "library set must split the key space"
        );
        // A changed interface changes the fingerprint, hence the key.
        let mut libs2 = LibraryStore::new();
        libs2.insert(SharedInterface {
            library: "liba.so".to_string(),
            exports: Default::default(),
            wrappers: vec![],
            addresses_taken: vec![],
            function_cfg: Default::default(),
        });
        let fp_b = library_fingerprint(&libs2).expect("one lib");
        assert_ne!(fp_a, fp_b);
        assert_ne!(
            key_a,
            PolicyStore::key_with_libs(b"elf", &options, Some(&fp_b))
        );
    }

    #[test]
    fn generation_bumps_on_insert_and_real_invalidation_only() {
        let store = PolicyStore::open(None).unwrap();
        assert_eq!(store.generation(), 0);
        let (_, g1) = store.insert("k", bundle("a")).unwrap();
        assert_eq!(g1, 1);
        assert!(store.invalidate("unknown").is_none(), "no-op: no bump");
        assert_eq!(store.generation(), 1);
        let g2 = store.invalidate("k").expect("entry existed");
        assert_eq!(g2, 2);
        assert!(store.load("k").is_none(), "invalidated entry is gone");
    }

    #[test]
    fn invalidate_removes_the_disk_entry_too() {
        let dir = scratch("inval");
        let store = PolicyStore::open(Some(&dir)).unwrap();
        store.insert("k", bundle("a")).unwrap();
        assert!(dir.join("k.policy.json").exists());
        store.invalidate("k").expect("existed");
        assert!(!dir.join("k.policy.json").exists());
        // A second daemon sharing the directory no longer sees it either.
        let other = PolicyStore::open(Some(&dir)).unwrap();
        assert!(other.load("k").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_removes_only_entries_from_a_different_library_set() {
        let dir = scratch("sweep");
        let store = PolicyStore::open(Some(&dir)).unwrap();
        // One static entry (no sidecar), one entry under the current
        // library set, one under a stale set.
        store
            .insert("a".repeat(64).as_str(), bundle("static"))
            .unwrap();
        store
            .insert_with_libs("b".repeat(64).as_str(), bundle("fresh"), Some("fp-now"))
            .unwrap();
        store
            .insert_with_libs("c".repeat(64).as_str(), bundle("stale"), Some("fp-old"))
            .unwrap();
        assert_eq!(store.len(), 3, "sidecars are not entries");
        let generation_before = store.generation();

        let swept = store.sweep_stale_lib_entries("fp-now");
        assert_eq!(swept, 1, "exactly the stale-set entry goes");
        assert_eq!(store.len(), 2);
        assert!(store.load(&"a".repeat(64)).is_some(), "static entry kept");
        assert!(
            store.load(&"b".repeat(64)).is_some(),
            "current-set entry kept"
        );
        assert!(store.load(&"c".repeat(64)).is_none(), "stale entry gone");
        assert!(
            !dir.join(format!("{}.libfp", "c".repeat(64))).exists(),
            "stale sidecar removed with its entry"
        );
        assert_eq!(
            store.generation(),
            generation_before + 1,
            "a real sweep is a mutation watchers hear about"
        );
        // Idempotent: nothing left to sweep, no spurious bump.
        assert_eq!(store.sweep_stale_lib_entries("fp-now"), 0);
        assert_eq!(store.generation(), generation_before + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalidate_clears_the_fingerprint_sidecar_too() {
        let dir = scratch("sidecar_inval");
        let store = PolicyStore::open(Some(&dir)).unwrap();
        let key = "d".repeat(64);
        store
            .insert_with_libs(&key, bundle("dyn"), Some("fp"))
            .unwrap();
        assert!(dir.join(format!("{key}.libfp")).exists());
        store.invalidate(&key).expect("entry existed");
        assert!(!dir.join(format!("{key}.policy.json")).exists());
        assert!(
            !dir.join(format!("{key}.libfp")).exists(),
            "sidecar must not outlive its entry"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keyed_subscription_wakes_only_on_its_key() {
        let store = PolicyStore::open(None).unwrap();
        let key_a = "a".repeat(64);
        let key_b = "b".repeat(64);
        assert_eq!(store.subscribe(1, Some(&key_a), 0), Subscribed::Parked);
        assert_eq!(store.subscribe(2, Some(&key_b), 0), Subscribed::Parked);
        assert_eq!(store.subscribe(3, None, 0), Subscribed::Parked);

        // Mutating B fires B's subscriber and the keyless one — never A's.
        let (_, g1) = store.insert(&key_b, bundle("b")).unwrap();
        let mut fired = store.take_fired();
        fired.sort_unstable();
        assert_eq!(
            fired,
            vec![(2, g1), (3, g1)],
            "key A's watcher stays parked"
        );
        assert!(store.take_fired().is_empty(), "fired list drains");

        // Now A's turn.
        let (_, g2) = store.insert(&key_a, bundle("a")).unwrap();
        assert_eq!(store.take_fired(), vec![(1, g2)]);
    }

    #[test]
    fn subscribe_is_atomic_against_prior_mutations() {
        let store = PolicyStore::open(None).unwrap();
        let key = "c".repeat(64);
        let (_, g1) = store.insert(&key, bundle("c")).unwrap();

        // Anchor ahead of the store: stale generation from a previous
        // daemon incarnation.
        assert_eq!(
            store.subscribe(1, None, g1 + 5),
            Subscribed::Ahead { current: g1 }
        );
        // Keyed anchor older than the key's last mutation: Ready, not a
        // lost wakeup.
        assert_eq!(
            store.subscribe(2, Some(&key), 0),
            Subscribed::Ready { current: g1 }
        );
        // Keyed anchor at the key's last mutation: parked (nothing newer).
        assert_eq!(store.subscribe(3, Some(&key), g1), Subscribed::Parked);
        // A key never mutated in this process parks regardless of other
        // keys' churn.
        assert_eq!(
            store.subscribe(4, Some(&"d".repeat(64)), g1),
            Subscribed::Parked
        );
        // Keyless anchor behind the store: Ready.
        assert_eq!(
            store.subscribe(5, None, 0),
            Subscribed::Ready { current: g1 }
        );
    }

    #[test]
    fn unsubscribe_removes_parked_and_uncollected_fired() {
        let store = PolicyStore::open(None).unwrap();
        assert_eq!(store.subscribe(7, None, 0), Subscribed::Parked);
        assert!(store.unsubscribe(7), "parked waiter removed");
        assert!(!store.unsubscribe(7), "second remove is a no-op");

        assert_eq!(store.subscribe(8, None, 0), Subscribed::Parked);
        store.insert("k", bundle("a")).unwrap();
        assert!(store.unsubscribe(8), "fired-but-uncollected removed");
        assert!(store.take_fired().is_empty());
    }

    #[test]
    fn waker_rings_exactly_when_subscriptions_fire() {
        use std::sync::atomic::AtomicUsize;
        let store = PolicyStore::open(None).unwrap();
        let rings = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&rings);
        store.set_waker(Arc::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        }));

        // A mutation with no subscribers does not ring.
        store.insert("k1", bundle("a")).unwrap();
        assert_eq!(rings.load(Ordering::SeqCst), 0);

        // A mutation that fires a subscription rings once.
        assert_eq!(
            store.subscribe(1, Some("k2"), store.generation()),
            Subscribed::Parked
        );
        store.insert("k2", bundle("b")).unwrap();
        assert_eq!(rings.load(Ordering::SeqCst), 1);
        assert_eq!(store.take_fired().len(), 1);
    }

    #[test]
    fn one_sweep_fires_every_swept_keys_subscribers_with_one_bump() {
        let dir = scratch("sweep_subs");
        let store = PolicyStore::open(Some(&dir)).unwrap();
        let stale_x = "e".repeat(64);
        let stale_y = "f".repeat(64);
        store
            .insert_with_libs(&stale_x, bundle("x"), Some("fp-old"))
            .unwrap();
        store
            .insert_with_libs(&stale_y, bundle("y"), Some("fp-old"))
            .unwrap();
        let anchor = store.generation();
        assert_eq!(
            store.subscribe(1, Some(&stale_x), anchor),
            Subscribed::Parked
        );
        assert_eq!(
            store.subscribe(2, Some(&stale_y), anchor),
            Subscribed::Parked
        );
        assert_eq!(store.sweep_stale_lib_entries("fp-now"), 2);
        assert_eq!(store.generation(), anchor + 1, "one bump for the sweep");
        let mut fired = store.take_fired();
        fired.sort_unstable();
        assert_eq!(fired, vec![(1, anchor + 1), (2, anchor + 1)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wait_newer_wakes_on_bump_and_times_out_otherwise() {
        let store = std::sync::Arc::new(PolicyStore::open(None).unwrap());
        // Timeout path: nothing bumps, returns the unchanged generation.
        assert_eq!(store.wait_newer(0, Duration::from_millis(20)), 0);
        // Wakeup path: a concurrent insert unblocks the waiter.
        let waiter = {
            let store = std::sync::Arc::clone(&store);
            std::thread::spawn(move || store.wait_newer(0, Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(30));
        store.insert("k", bundle("a")).unwrap();
        assert_eq!(waiter.join().expect("waiter"), 1);
    }
}
