//! The content-addressed policy store.
//!
//! Keyed by exactly the `bside_dist::cache` scheme —
//! `SHA-256(elf bytes ‖ 0x00 ‖ semantic-options fingerprint)` — so a
//! policy's address is stable across daemons, machines, and worker
//! counts, and a store directory can be pre-populated by a batch corpus
//! run and then served read-mostly. Values are [`PolicyBundle`]s in the
//! `bside_filter::wire` JSON.
//!
//! Two layers:
//!
//! * an **in-memory map** of `Arc<PolicyBundle>` — the hot path a loaded
//!   daemon answers from without touching disk or re-parsing JSON;
//! * an optional **directory** of `<key>.policy.json` entries written
//!   atomically (temp file + rename), shared safely between concurrent
//!   daemons and surviving restarts. A corrupt or truncated entry reads
//!   as a miss, never as an error — the daemon re-analyzes and rewrites.

use crate::protocol::PolicyBundle;
use bside_core::AnalyzerOptions;
use bside_dist::ResultCache;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A concurrent policy store: in-memory map over an optional directory.
#[derive(Debug)]
pub struct PolicyStore {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<String, Arc<PolicyBundle>>>,
}

/// Distinguishes concurrent writers' temp files within one process (the
/// pid alone distinguishes processes).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl PolicyStore {
    /// Opens a store over `dir` (created if needed), or a purely
    /// in-memory store when `dir` is `None`.
    pub fn open(dir: Option<&Path>) -> std::io::Result<PolicyStore> {
        if let Some(dir) = dir {
            std::fs::create_dir_all(dir)?;
        }
        Ok(PolicyStore {
            dir: dir.map(Path::to_path_buf),
            mem: Mutex::new(HashMap::new()),
        })
    }

    /// The content address of `(elf bytes, options)` — delegated to the
    /// analysis cache's scheme, one key format across the workspace.
    pub fn key(elf_bytes: &[u8], options: &AnalyzerOptions) -> String {
        ResultCache::key(elf_bytes, options)
    }

    fn entry_path(&self, key: &str) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key}.policy.json")))
    }

    /// Loads the bundle under `key`: memory first, then disk (promoting
    /// a disk hit into memory). Corrupt entries are a miss.
    pub fn load(&self, key: &str) -> Option<Arc<PolicyBundle>> {
        if let Some(hit) = self.mem.lock().expect("store lock").get(key) {
            return Some(Arc::clone(hit));
        }
        let path = self.entry_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        let bundle: PolicyBundle = serde_json::from_str(&text).ok()?;
        let bundle = Arc::new(bundle);
        self.mem
            .lock()
            .expect("store lock")
            .insert(key.to_string(), Arc::clone(&bundle));
        Some(bundle)
    }

    /// Stores `bundle` under `key` in memory and (when directory-backed)
    /// on disk via write-then-rename, so a concurrent reader never sees
    /// a partial entry. Returns the shared handle.
    pub fn insert(&self, key: &str, bundle: PolicyBundle) -> std::io::Result<Arc<PolicyBundle>> {
        let bundle = Arc::new(bundle);
        if let Some(path) = self.entry_path(key) {
            let dir = self.dir.as_ref().expect("entry path implies dir");
            let json = serde_json::to_string(&*bundle)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            let tmp = dir.join(format!(
                "{key}.tmp.{}.{}",
                std::process::id(),
                TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            {
                let mut file = std::fs::File::create(&tmp)?;
                file.write_all(json.as_bytes())?;
            }
            std::fs::rename(&tmp, path)?;
        }
        self.mem
            .lock()
            .expect("store lock")
            .insert(key.to_string(), Arc::clone(&bundle));
        Ok(bundle)
    }

    /// Number of stored policies: on-disk entries when directory-backed
    /// (the durable truth), in-memory entries otherwise.
    pub fn len(&self) -> usize {
        match &self.dir {
            Some(dir) => std::fs::read_dir(dir)
                .map(|rd| {
                    rd.filter_map(Result::ok)
                        .filter(|e| e.file_name().to_string_lossy().ends_with(".policy.json"))
                        .count()
                })
                .unwrap_or(0),
            None => self.mem.lock().expect("store lock").len(),
        }
    }

    /// `true` when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bside_filter::bpf::BpfProgram;
    use bside_filter::{FilterPolicy, PhasePolicy};
    use bside_syscalls::{SyscallSet, Sysno};

    fn bundle(name: &str) -> PolicyBundle {
        let allowed: SyscallSet = ["read", "write"]
            .iter()
            .filter_map(|n| Sysno::from_name(n))
            .collect();
        let policy = FilterPolicy::allow_only(name, allowed);
        let bpf = BpfProgram::from_policy(&policy);
        PolicyBundle {
            binary: name.to_string(),
            policy,
            phases: PhasePolicy {
                binary: name.to_string(),
                phases: vec![allowed],
                transitions: vec![vec![]],
                initial: 0,
            },
            bpf,
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bside_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_only_store_round_trips() {
        let store = PolicyStore::open(None).unwrap();
        assert!(store.is_empty());
        assert!(store.load("k").is_none());
        store.insert("k", bundle("a")).unwrap();
        assert_eq!(store.load("k").unwrap().binary, "a");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn directory_store_survives_reopening() {
        let dir = scratch("reopen");
        {
            let store = PolicyStore::open(Some(&dir)).unwrap();
            store.insert("deadbeef", bundle("a")).unwrap();
            assert_eq!(store.len(), 1);
        }
        let store = PolicyStore::open(Some(&dir)).unwrap();
        let loaded = store.load("deadbeef").expect("disk hit");
        assert_eq!(loaded.binary, "a");
        assert_eq!(*loaded, bundle("a"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_a_miss_not_an_error() {
        let dir = scratch("corrupt");
        let store = PolicyStore::open(Some(&dir)).unwrap();
        std::fs::write(dir.join("badkey.policy.json"), b"{not json").unwrap();
        assert!(store.load("badkey").is_none());
        // And it can be overwritten with a good entry.
        store.insert("badkey", bundle("fixed")).unwrap();
        assert_eq!(store.load("badkey").unwrap().binary, "fixed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn len_counts_only_policy_entries() {
        let dir = scratch("len");
        let store = PolicyStore::open(Some(&dir)).unwrap();
        store.insert("k1", bundle("a")).unwrap();
        std::fs::write(dir.join("stray.txt"), b"x").unwrap();
        std::fs::write(dir.join("k2.tmp.999.0"), b"partial").unwrap();
        assert_eq!(store.len(), 1, "stray and temp files are not entries");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_matches_the_dist_cache_scheme() {
        let options = AnalyzerOptions::default();
        assert_eq!(
            PolicyStore::key(b"elf", &options),
            ResultCache::key(b"elf", &options),
            "one content-address scheme across analysis cache and policy store"
        );
    }
}
