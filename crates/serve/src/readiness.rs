//! Readiness plumbing for the serve event loop: a reusable `poll(2)`
//! descriptor set and a self-wake pipe.
//!
//! The event loop blocks in [`PollSet::wait`] on every connection, the
//! listener, and the read half of a [`WakePipe`]. Anything that happens
//! off-loop — a worker finishing a request, a store mutation firing a
//! subscription, a shutdown request — rings a [`Waker`] (a cloned write
//! half), which makes the pipe readable and pops the loop out of `poll`.
//! Writing to the pipe never blocks: both halves are nonblocking and a
//! `WouldBlock` on write just means a wake is already pending, which is
//! exactly as good as delivering another byte.

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// A nonblocking socketpair used as a level-triggered wake signal.
pub(crate) struct WakePipe {
    rx: UnixStream,
    tx: Arc<UnixStream>,
}

impl WakePipe {
    /// A fresh pipe; both halves nonblocking.
    pub(crate) fn new() -> io::Result<WakePipe> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(WakePipe {
            rx,
            tx: Arc::new(tx),
        })
    }

    /// A clonable handle that makes [`WakePipe::fd`] readable.
    pub(crate) fn waker(&self) -> Waker {
        Waker {
            tx: Arc::clone(&self.tx),
        }
    }

    /// The descriptor the loop registers for readability.
    pub(crate) fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes every pending wake byte so the pipe goes quiet until the
    /// next [`Waker::wake`].
    pub(crate) fn drain(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.rx.read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// The write half of a [`WakePipe`]; cheap to clone, safe to ring from
/// any thread (including from inside the store's generation lock path —
/// the write is nonblocking and never takes a lock).
#[derive(Clone)]
pub(crate) struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Makes the pipe readable. A full pipe means a wake is already
    /// pending, so `WouldBlock` (and any other error — the loop is gone
    /// during teardown) is deliberately ignored.
    pub(crate) fn wake(&self) {
        let _ = (&*self.tx).write(&[1]);
    }
}

/// A reusable `poll(2)` set: filled each loop iteration, waited on once,
/// then queried by the index `push` returned.
pub(crate) struct PollSet {
    fds: Vec<poll::PollFd>,
}

impl PollSet {
    pub(crate) fn new() -> PollSet {
        PollSet { fds: Vec::new() }
    }

    /// Empties the set for the next iteration (capacity retained).
    pub(crate) fn clear(&mut self) {
        self.fds.clear();
    }

    /// Registers `fd` with the given interest; returns the slot index
    /// used to query results after [`PollSet::wait`].
    pub(crate) fn push(&mut self, fd: RawFd, readable: bool, writable: bool) -> usize {
        let mut events = 0i16;
        if readable {
            events |= poll::POLLIN;
        }
        if writable {
            events |= poll::POLLOUT;
        }
        self.fds.push(poll::PollFd::new(fd, events));
        self.fds.len() - 1
    }

    /// Blocks until at least one registered descriptor is ready or the
    /// timeout elapses; returns the number of ready descriptors.
    pub(crate) fn wait(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        poll::poll(&mut self.fds, timeout)
    }

    /// Readability at `slot` — including hangup/error, which a read will
    /// surface as EOF or a real error (level-triggered, so the loop must
    /// consume it).
    pub(crate) fn readable(&self, slot: usize) -> bool {
        self.fds[slot].revents & (poll::POLLIN | poll::POLLHUP | poll::POLLERR) != 0
    }

    /// Writability at `slot` — including error, which the write surfaces.
    pub(crate) fn writable(&self, slot: usize) -> bool {
        self.fds[slot].revents & (poll::POLLOUT | poll::POLLERR | poll::POLLHUP) != 0
    }

    /// The descriptor at `slot` is dead (closed out from under the set).
    pub(crate) fn invalid(&self, slot: usize) -> bool {
        self.fds[slot].revents & poll::POLLNVAL != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pops_a_blocked_poll_and_drain_quiets_it() {
        let mut pipe = WakePipe::new().expect("pipe");
        let waker = pipe.waker();
        let mut set = PollSet::new();

        // Quiet pipe: poll times out.
        set.clear();
        let slot = set.push(pipe.fd(), true, false);
        assert_eq!(set.wait(Some(Duration::from_millis(30))).unwrap(), 0);

        // A wake from another thread makes it readable.
        let t = std::thread::spawn(move || waker.wake());
        set.clear();
        let slot2 = set.push(pipe.fd(), true, false);
        assert_eq!(slot, slot2);
        assert_eq!(set.wait(Some(Duration::from_secs(5))).unwrap(), 1);
        assert!(set.readable(slot2));
        t.join().unwrap();

        // Drained, the pipe goes quiet again — and repeated wakes while
        // quiet coalesce without ever blocking the waker.
        pipe.drain();
        let waker = pipe.waker();
        for _ in 0..10_000 {
            waker.wake();
        }
        set.clear();
        let slot3 = set.push(pipe.fd(), true, false);
        assert_eq!(set.wait(Some(Duration::from_millis(30))).unwrap(), 1);
        assert!(set.readable(slot3));
        pipe.drain();
        set.clear();
        let slot4 = set.push(pipe.fd(), true, false);
        assert_eq!(
            set.wait(Some(Duration::from_millis(30))).unwrap(),
            0,
            "quiet after drain"
        );
        let _ = slot4;
    }
}
