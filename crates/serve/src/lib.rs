//! # `bside-serve`: the policy-distribution service
//!
//! The paper's end product is a seccomp policy per binary; its
//! deployment story (§1, §4.7) assumes something hands that policy to
//! the enforcement point — exactly the middleware gap container runtimes
//! hit at pod launch. This crate turns the analyzer into that always-on
//! layer: a long-running daemon that answers *"give me the seccomp
//! policy for this binary"* over a socket.
//!
//! * a **content-addressed policy store** ([`store`]) keyed by the
//!   `bside_dist::cache` SHA-256 scheme (elf bytes ‖ options
//!   fingerprint, extended with a library-set fingerprint for dynamic
//!   binaries), holding [`FilterPolicy`]/[`PhasePolicy`] plus the
//!   lowered classic-BPF program, in memory and optionally on disk, with
//!   a monotonic **generation counter** bumped by every mutation;
//! * a versioned **NDJSON request/response protocol** ([`protocol`])
//!   over Unix-domain or TCP sockets ([`net`]), with explicit framing,
//!   in-band error replies, and push-style `watch` notification — since
//!   v5 optionally **per key**: a keyed watch fires only when *its*
//!   store entry is mutated;
//! * a **readiness-loop server** ([`server`]): one event-loop thread
//!   multiplexes every connection over the vendored `poll(2)` shim
//!   (the `shims/poll` workspace crate), dispatching complete request lines
//!   to a small worker pool — idle and watch-parked connections cost no
//!   thread, so a two-thread daemon holds thousands of open watches —
//!   with graceful shutdown, per-connection panic isolation, and
//!   **single-flight** analyze-on-miss (the `flight` table): N
//!   concurrent cold requests for the same binary run exactly one
//!   analysis, the rest block and share the result
//!   (`source: "Coalesced"`);
//! * **dynamic binaries**: with [`ServeOptions::library_dir`] pointing
//!   at a directory of `§4.5` shared-interface JSONs, `DT_NEEDED`
//!   binaries are derived through [`bside_core::LibraryStore`] instead
//!   of being refused;
//! * a **client library** ([`client`]) the `bside serve` / `bside
//!   policy` CLI subcommands and embedding enforcement agents use,
//!   including [`PolicyClient::wait_for_generation`] for watchers.
//!
//! # Example
//!
//! ```no_run
//! use bside_serve::{Endpoint, PolicyClient, PolicyServer, ServeOptions};
//!
//! let endpoint = Endpoint::parse("/run/bside.sock");
//! let server = PolicyServer::spawn(&endpoint, ServeOptions::default())?;
//! let mut client = PolicyClient::connect(server.endpoint())?;
//! let fetch = client.fetch_path("/usr/bin/redis-server").expect("policy");
//! println!("{} syscalls allowed", fetch.bundle.policy.allowed.len());
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod client;
pub(crate) mod flight;
pub mod net;
pub mod protocol;
pub(crate) mod readiness;
pub mod server;
pub mod store;

pub use breaker::{BreakerState, CircuitBreaker};
pub use client::{PolicyClient, PolicyFetch, ServeError};
pub use net::{Conn, Endpoint};
pub use protocol::{PolicyBundle, Reply, Request, Source, StatsSnapshot, PROTOCOL_VERSION};
pub use server::{PolicyServer, RemoteAnalyzer, ServeOptions, ServerHandle};
pub use store::{library_fingerprint, PolicyStore};

use bside_core::phase::{detect_phases, PhaseOptions};
use bside_core::{Analyzer, AnalyzerOptions, LibraryStore};
use bside_filter::{FilterPolicy, PhasePolicy};
use bside_syscalls::SyscallSet;
use std::collections::HashMap;

/// The display name a path's policy is derived under: the file stem
/// (matching the corpus unit-naming convention), falling back to the
/// whole path when there is none.
pub fn binary_name(path: &std::path::Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string_lossy().into_owned())
}

/// Derives the full policy bundle for one ELF: whole-program allow-list,
/// phase refinement, and the classic-BPF lowering.
///
/// A static binary needs no `libs`; a dynamically linked one (non-empty
/// `DT_NEEDED`) is resolved through the given [`LibraryStore`] of §4.5
/// shared interfaces via `Analyzer::analyze_dynamic`, and is refused
/// with an explanatory message when `libs` is `None`.
///
/// This is the one derivation both sides of the wire share: the daemon's
/// analyze-on-miss path calls it, and tests call it locally to prove a
/// fetched bundle is byte-identical to a local derivation.
///
/// # Errors
///
/// A human-readable message (the error-reply payload) when the bytes are
/// not a parseable ELF, a needed library is missing, or the analysis
/// fails.
pub fn derive_bundle(
    name: &str,
    elf_bytes: &[u8],
    options: &AnalyzerOptions,
    libs: Option<&LibraryStore>,
) -> Result<PolicyBundle, String> {
    let elf = bside_elf::Elf::parse(elf_bytes).map_err(|e| format!("parsing {name}: {e}"))?;
    derive_bundle_parsed(name, &elf, options, libs)
}

/// [`derive_bundle`] over an already-parsed ELF — the server's path,
/// which parses once to detect `DT_NEEDED` and compute the store key
/// before deciding to analyze.
pub fn derive_bundle_parsed(
    name: &str,
    elf: &bside_elf::Elf,
    options: &AnalyzerOptions,
    libs: Option<&LibraryStore>,
) -> Result<PolicyBundle, String> {
    let analyzer = Analyzer::new(options.clone());
    let analysis = if elf.needed_libraries().is_empty() {
        analyzer.analyze_static(elf).map_err(|e| e.to_string())?
    } else {
        let Some(libs) = libs else {
            return Err(format!(
                "{name} is dynamically linked; the policy service needs a shared-interface \
                 directory to resolve it (start the daemon with --lib-dir, or analyze it \
                 locally via `bside analyze --lib`)"
            ));
        };
        analyzer
            .analyze_dynamic(elf, libs, &[])
            .map_err(|e| e.to_string())?
    };
    let site_sets: HashMap<u64, SyscallSet> = analysis
        .sites
        .iter()
        .map(|s| (s.site, s.syscalls))
        .collect();
    let automaton = detect_phases(&analysis.cfg, &site_sets, &PhaseOptions::default());
    let policy = FilterPolicy::allow_only(name, analysis.syscalls);
    let phases = PhasePolicy::from_automaton(name, &automaton);
    // The optimized lowering, gated by the exhaustive equivalence check
    // against the naive program; falls back to naive if the gate cannot
    // prove them identical. CACHE_FORMAT_VERSION was bumped with this
    // change so stores never mix naive and optimized artifacts.
    let bpf = bside_filter::compile::compile(&policy).program;
    Ok(PolicyBundle {
        binary: name.to_string(),
        policy,
        phases,
        bpf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_name_uses_the_file_stem() {
        assert_eq!(
            binary_name(std::path::Path::new("/corpus/0003_redis.elf")),
            "0003_redis"
        );
        assert_eq!(binary_name(std::path::Path::new("plain")), "plain");
    }

    #[test]
    fn derive_bundle_is_deterministic_and_consistent() {
        let profile = bside_gen::profiles::lighttpd();
        let options = AnalyzerOptions::default();
        let a = derive_bundle("lighttpd", &profile.program.image, &options, None).expect("derives");
        let b = derive_bundle("lighttpd", &profile.program.image, &options, None).expect("derives");
        assert_eq!(a, b, "same bytes, same bundle");
        assert_eq!(a.policy.allowed, a.bpf_allowed_set(), "bpf matches policy");
    }

    #[test]
    fn derive_bundle_rejects_garbage_and_reports_parsing() {
        let err = derive_bundle("junk", b"not an elf", &AnalyzerOptions::default(), None)
            .expect_err("must fail");
        assert!(err.contains("parsing junk"), "got: {err}");
    }

    #[test]
    fn dynamic_binary_without_libs_is_refused_with_guidance() {
        let corpus = bside_gen::corpus::corpus_with_size(5, 0, 1, 2);
        let binary = &corpus.binaries[0];
        assert!(!binary.program.elf.needed_libraries().is_empty());
        let err = derive_bundle(
            "dyn",
            &binary.program.image,
            &AnalyzerOptions::default(),
            None,
        )
        .expect_err("no libs");
        assert!(err.contains("--lib-dir"), "got: {err}");
    }

    #[test]
    fn dynamic_binary_derives_through_the_library_store() {
        let corpus = bside_gen::corpus::corpus_with_size(5, 0, 1, 2);
        let binary = &corpus.binaries[0];
        let analyzer = Analyzer::new(AnalyzerOptions::default());
        let refs: Vec<(&str, &bside_elf::Elf)> = corpus
            .libraries
            .iter()
            .map(|l| (l.spec.name.as_str(), &l.elf))
            .collect();
        let libs = analyzer.analyze_libraries(&refs).expect("libraries");
        let bundle = derive_bundle(
            "dyn",
            &binary.program.image,
            &AnalyzerOptions::default(),
            Some(&libs),
        )
        .expect("derives dynamically");
        // The bundle's allow-list is exactly the analyze_dynamic result.
        let local = analyzer
            .analyze_dynamic(&binary.program.elf, &libs, &[])
            .expect("local analysis");
        assert_eq!(bundle.policy.allowed, local.syscalls);
    }

    impl PolicyBundle {
        /// Test helper: the allow-set the lowered program actually
        /// accepts, recovered by evaluating it over the known table.
        fn bpf_allowed_set(&self) -> SyscallSet {
            use bside_filter::bpf::{execute, SeccompData, AUDIT_ARCH_X86_64, RET_ALLOW};
            bside_syscalls::table::iter()
                .filter(|(nr, _)| {
                    execute(&self.bpf.insns, &SeccompData::new(AUDIT_ARCH_X86_64, *nr))
                        == Ok(RET_ALLOW)
                })
                .map(|(nr, _)| bside_syscalls::Sysno::new(nr).expect("table nr"))
                .collect()
        }
    }
}
