//! # `bside-serve`: the policy-distribution service
//!
//! The paper's end product is a seccomp policy per binary; its
//! deployment story (§1, §4.7) assumes something hands that policy to
//! the enforcement point — exactly the middleware gap container runtimes
//! hit at pod launch. This crate turns the analyzer into that always-on
//! layer: a long-running daemon that answers *"give me the seccomp
//! policy for this binary"* over a socket.
//!
//! * a **content-addressed policy store** ([`store`]) keyed by the
//!   `bside_dist::cache` SHA-256 scheme (elf bytes ‖ options
//!   fingerprint), holding [`FilterPolicy`]/[`PhasePolicy`] plus the
//!   lowered classic-BPF program, in memory and optionally on disk;
//! * a versioned **NDJSON request/response protocol** ([`protocol`])
//!   over Unix-domain or TCP sockets ([`net`]), with explicit framing
//!   and in-band error replies;
//! * a **thread-pool server** ([`server`]) with graceful shutdown and
//!   per-connection panic isolation;
//! * an **analyze-on-miss** path: an unknown binary is analyzed
//!   in-process, its bundle stored, and every later fetch — from any
//!   client — served from the store (observable via the reply's
//!   `source` metadata);
//! * a **client library** ([`client`]) the `bside serve` / `bside
//!   policy` CLI subcommands and embedding enforcement agents use.
//!
//! # Example
//!
//! ```no_run
//! use bside_serve::{Endpoint, PolicyClient, PolicyServer, ServeOptions};
//!
//! let endpoint = Endpoint::parse("/run/bside.sock");
//! let server = PolicyServer::spawn(&endpoint, ServeOptions::default())?;
//! let mut client = PolicyClient::connect(server.endpoint())?;
//! let fetch = client.fetch_path("/usr/bin/redis-server").expect("policy");
//! println!("{} syscalls allowed", fetch.bundle.policy.allowed.len());
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod net;
pub mod protocol;
pub mod server;
pub mod store;

pub use client::{PolicyClient, PolicyFetch, ServeError};
pub use net::{Conn, Endpoint};
pub use protocol::{PolicyBundle, Reply, Request, Source, StatsSnapshot, PROTOCOL_VERSION};
pub use server::{PolicyServer, ServeOptions, ServerHandle};
pub use store::PolicyStore;

use bside_core::phase::{detect_phases, PhaseOptions};
use bside_core::{Analyzer, AnalyzerOptions};
use bside_filter::bpf::BpfProgram;
use bside_filter::{FilterPolicy, PhasePolicy};
use bside_syscalls::SyscallSet;
use std::collections::HashMap;

/// The display name a path's policy is derived under: the file stem
/// (matching the corpus unit-naming convention), falling back to the
/// whole path when there is none.
pub fn binary_name(path: &std::path::Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string_lossy().into_owned())
}

/// Derives the full policy bundle for one static ELF: whole-program
/// allow-list, phase refinement, and the classic-BPF lowering.
///
/// This is the one derivation both sides of the wire share: the daemon's
/// analyze-on-miss path calls it, and tests call it locally to prove a
/// fetched bundle is byte-identical to a local derivation.
///
/// # Errors
///
/// A human-readable message (the error-reply payload) when the bytes are
/// not a parseable static ELF or the analysis fails.
pub fn derive_bundle(
    name: &str,
    elf_bytes: &[u8],
    options: &AnalyzerOptions,
) -> Result<PolicyBundle, String> {
    let elf = bside_elf::Elf::parse(elf_bytes).map_err(|e| format!("parsing {name}: {e}"))?;
    if !elf.needed_libraries().is_empty() {
        return Err(format!(
            "{name} is dynamically linked; the policy service serves static binaries \
             (analyze it with library interfaces via `bside analyze` instead)"
        ));
    }
    let analysis = Analyzer::new(options.clone())
        .analyze_static(&elf)
        .map_err(|e| e.to_string())?;
    let site_sets: HashMap<u64, SyscallSet> = analysis
        .sites
        .iter()
        .map(|s| (s.site, s.syscalls))
        .collect();
    let automaton = detect_phases(&analysis.cfg, &site_sets, &PhaseOptions::default());
    let policy = FilterPolicy::allow_only(name, analysis.syscalls);
    let phases = PhasePolicy::from_automaton(name, &automaton);
    let bpf = BpfProgram::from_policy(&policy);
    Ok(PolicyBundle {
        binary: name.to_string(),
        policy,
        phases,
        bpf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_name_uses_the_file_stem() {
        assert_eq!(
            binary_name(std::path::Path::new("/corpus/0003_redis.elf")),
            "0003_redis"
        );
        assert_eq!(binary_name(std::path::Path::new("plain")), "plain");
    }

    #[test]
    fn derive_bundle_is_deterministic_and_consistent() {
        let profile = bside_gen::profiles::lighttpd();
        let options = AnalyzerOptions::default();
        let a = derive_bundle("lighttpd", &profile.program.image, &options).expect("derives");
        let b = derive_bundle("lighttpd", &profile.program.image, &options).expect("derives");
        assert_eq!(a, b, "same bytes, same bundle");
        assert_eq!(a.policy.allowed, a.bpf_allowed_set(), "bpf matches policy");
    }

    #[test]
    fn derive_bundle_rejects_garbage_and_reports_parsing() {
        let err = derive_bundle("junk", b"not an elf", &AnalyzerOptions::default())
            .expect_err("must fail");
        assert!(err.contains("parsing junk"), "got: {err}");
    }

    impl PolicyBundle {
        /// Test helper: the allow-set the lowered program actually
        /// accepts, recovered by evaluating it over the known table.
        fn bpf_allowed_set(&self) -> SyscallSet {
            use bside_filter::bpf::{execute, SeccompData, AUDIT_ARCH_X86_64, RET_ALLOW};
            bside_syscalls::table::iter()
                .filter(|(nr, _)| {
                    execute(&self.bpf.insns, &SeccompData::new(AUDIT_ARCH_X86_64, *nr))
                        == Ok(RET_ALLOW)
                })
                .map(|(nr, _)| bside_syscalls::Sysno::new(nr).expect("table nr"))
                .collect()
        }
    }
}
