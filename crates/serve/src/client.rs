//! The client library: what an enforcement agent (or the `bside policy`
//! CLI) links to talk to the daemon.

use crate::net::{Conn, Endpoint};
use crate::protocol::{
    read_message, write_message, PolicyBundle, Reply, Request, Source, StatsSnapshot,
    PROTOCOL_VERSION,
};
use std::fmt;
use std::io::BufReader;

/// Why a client call failed.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure (connect, read, write, unexpected EOF).
    Io(std::io::Error),
    /// The peer broke protocol (bad hello, wrong reply shape).
    Protocol(String),
    /// The server answered with an in-band error reply.
    Server(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol: {m}"),
            ServeError::Server(m) => write!(f, "server: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A fetched policy: the bundle plus its provenance metadata.
#[derive(Debug, Clone)]
pub struct PolicyFetch {
    /// The bundle's content address in the server's store.
    pub key: String,
    /// `Store` when served without re-analysis, `Analyzed` when this
    /// request ran the pipeline — the cache-observability contract.
    pub source: Source,
    /// The policy bundle.
    pub bundle: PolicyBundle,
}

/// One connection to a policy server. Connections are cheap and
/// reusable: issue any number of requests before dropping.
pub struct PolicyClient {
    writer: Conn,
    reader: BufReader<Conn>,
}

impl PolicyClient {
    /// Dials the endpoint and verifies the server's protocol version.
    /// Reads block indefinitely — right for batch callers where a slow
    /// answer (a cold analysis, a saturated daemon working the backlog)
    /// is still a wanted answer. Interactive callers should prefer
    /// [`Self::connect_with`].
    pub fn connect(endpoint: &Endpoint) -> Result<PolicyClient, ServeError> {
        Self::connect_with(endpoint, None)
    }

    /// [`Self::connect`] with a per-read budget: every read — including
    /// the initial hello, which a saturated daemon only sends once a
    /// pool worker picks the connection up — fails with a timeout error
    /// instead of hanging past `read_timeout`.
    pub fn connect_with(
        endpoint: &Endpoint,
        read_timeout: Option<std::time::Duration>,
    ) -> Result<PolicyClient, ServeError> {
        let conn = Conn::connect(endpoint)?;
        conn.set_read_timeout(read_timeout)?;
        let writer = conn.try_clone()?;
        let mut reader = BufReader::new(conn);
        match read_message::<Reply>(&mut reader)? {
            Some(Reply::Hello { version }) if version == PROTOCOL_VERSION => {
                Ok(PolicyClient { writer, reader })
            }
            Some(Reply::Hello { version }) => Err(ServeError::Protocol(format!(
                "server speaks protocol v{version}, expected v{PROTOCOL_VERSION}"
            ))),
            other => Err(ServeError::Protocol(format!(
                "expected hello, got {other:?}"
            ))),
        }
    }

    fn call(&mut self, request: &Request) -> Result<Reply, ServeError> {
        write_message(&mut self.writer, request)?;
        match read_message::<Reply>(&mut self.reader)? {
            Some(reply) => Ok(reply),
            None => Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-request",
            ))),
        }
    }

    fn expect_policy(reply: Reply) -> Result<PolicyFetch, ServeError> {
        match reply {
            Reply::Policy {
                key,
                source,
                bundle,
            } => Ok(PolicyFetch {
                key,
                source,
                bundle: *bundle,
            }),
            Reply::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "expected policy reply, got {other:?}"
            ))),
        }
    }

    /// Fetches the policy for the binary at `path` (a path on the
    /// *server's* filesystem; analyze on store miss).
    pub fn fetch_path(&mut self, path: &str) -> Result<PolicyFetch, ServeError> {
        let reply = self.call(&Request::Policy {
            path: path.to_string(),
        })?;
        Self::expect_policy(reply)
    }

    /// Fetches the stored policy under a content address (no analysis).
    pub fn fetch_key(&mut self, key: &str) -> Result<PolicyFetch, ServeError> {
        let reply = self.call(&Request::PolicyByKey {
            key: key.to_string(),
        })?;
        Self::expect_policy(reply)
    }

    /// The server's counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServeError> {
        match self.call(&Request::Stats)? {
            Reply::Stats { stats } => Ok(stats),
            Reply::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "expected stats reply, got {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to shut down gracefully; returns once the server
    /// has acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "expected shutdown acknowledgment, got {other:?}"
            ))),
        }
    }
}
