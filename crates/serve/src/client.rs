//! The client library: what an enforcement agent (or the `bside policy`
//! CLI) links to talk to the daemon.

use crate::net::{Conn, Endpoint};
use crate::protocol::{
    read_message, write_message, PolicyBundle, Reply, Request, Source, StatsSnapshot,
    OLDEST_COMPATIBLE_VERSION, PROTOCOL_VERSION,
};
use std::fmt;
use std::io::BufReader;

/// Why a client call failed.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure (connect, read, write, unexpected EOF).
    Io(std::io::Error),
    /// The peer broke protocol (bad hello, wrong reply shape).
    Protocol(String),
    /// The server answered with an in-band error reply.
    Server(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol: {m}"),
            ServeError::Server(m) => write!(f, "server: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A fetched policy: the bundle plus its provenance metadata.
#[derive(Debug, Clone)]
pub struct PolicyFetch {
    /// The bundle's content address in the server's store.
    pub key: String,
    /// `Store` when served without re-analysis, `Analyzed` when this
    /// request ran the pipeline, `Coalesced` when it shared a concurrent
    /// identical request's analysis — the cache-observability contract.
    pub source: Source,
    /// The server's store generation when the reply was built — the
    /// anchor to pass to [`PolicyClient::wait_for_generation`].
    pub generation: u64,
    /// The policy bundle.
    pub bundle: PolicyBundle,
}

/// One connection to a policy server. Connections are cheap and
/// reusable: issue any number of requests before dropping.
pub struct PolicyClient {
    writer: Conn,
    reader: BufReader<Conn>,
    /// The store generation announced in the server's hello.
    hello_generation: u64,
}

impl PolicyClient {
    /// Dials the endpoint and verifies the server's protocol version.
    /// Reads block indefinitely — right for batch callers where a slow
    /// answer (a cold analysis, a saturated daemon working the backlog)
    /// is still a wanted answer, and for [`Self::wait_for_generation`]
    /// watchers that may block for hours. Interactive callers should
    /// prefer [`Self::connect_with`].
    pub fn connect(endpoint: &Endpoint) -> Result<PolicyClient, ServeError> {
        Self::connect_with(endpoint, None)
    }

    /// [`Self::connect`] with a per-read budget: every read — including
    /// the initial hello, which a saturated daemon only sends once a
    /// pool worker picks the connection up — fails with a timeout error
    /// instead of hanging past `read_timeout`. (A `watch` whose wait
    /// legitimately exceeds the budget will time out too; watchers
    /// should connect without one.)
    pub fn connect_with(
        endpoint: &Endpoint,
        read_timeout: Option<std::time::Duration>,
    ) -> Result<PolicyClient, ServeError> {
        let conn = Conn::connect(endpoint)?;
        conn.set_read_timeout(read_timeout)?;
        let writer = conn.try_clone()?;
        let mut reader = BufReader::new(conn);
        match read_message::<Reply>(&mut reader)? {
            Some(Reply::Hello {
                version,
                generation,
            }) if (OLDEST_COMPATIBLE_VERSION..=PROTOCOL_VERSION).contains(&version) => {
                // v4 servers differ from v5 only by the optional `key`
                // field on `watch` — and the field is absent-tolerant in
                // both directions, so everything but keyed-watch
                // *precision* works against a v4 daemon (a keyed watch
                // degrades to whole-store wakes: spurious, never lost).
                Ok(PolicyClient {
                    writer,
                    reader,
                    hello_generation: generation,
                })
            }
            Some(Reply::Hello { version, .. }) => Err(ServeError::Protocol(format!(
                "server speaks protocol v{version}, expected \
                 v{OLDEST_COMPATIBLE_VERSION}..=v{PROTOCOL_VERSION}"
            ))),
            other => Err(ServeError::Protocol(format!(
                "expected hello, got {other:?}"
            ))),
        }
    }

    /// The server's store generation at connect time — the baseline a
    /// fresh watcher passes to [`Self::wait_for_generation`].
    pub fn generation_at_connect(&self) -> u64 {
        self.hello_generation
    }

    fn call(&mut self, request: &Request) -> Result<Reply, ServeError> {
        write_message(&mut self.writer, request)?;
        match read_message::<Reply>(&mut self.reader)? {
            Some(reply) => Ok(reply),
            None => Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-request",
            ))),
        }
    }

    fn expect_policy(reply: Reply) -> Result<PolicyFetch, ServeError> {
        match reply {
            Reply::Policy {
                key,
                source,
                generation,
                bundle,
            } => Ok(PolicyFetch {
                key,
                source,
                generation,
                bundle: *bundle,
            }),
            Reply::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "expected policy reply, got {other:?}"
            ))),
        }
    }

    /// Fetches the policy for the binary at `path` (a path on the
    /// *server's* filesystem; analyze on store miss).
    pub fn fetch_path(&mut self, path: &str) -> Result<PolicyFetch, ServeError> {
        let reply = self.call(&Request::Policy {
            path: path.to_string(),
        })?;
        Self::expect_policy(reply)
    }

    /// Fetches the stored policy under a content address (no analysis).
    pub fn fetch_key(&mut self, key: &str) -> Result<PolicyFetch, ServeError> {
        let reply = self.call(&Request::PolicyByKey {
            key: key.to_string(),
        })?;
        Self::expect_policy(reply)
    }

    /// Drops the stored policy under `key` so the next fetch re-analyzes.
    /// Returns `(removed, generation)`: whether an entry existed, and the
    /// store generation after the operation.
    pub fn invalidate(&mut self, key: &str) -> Result<(bool, u64), ServeError> {
        match self.call(&Request::Invalidate {
            key: key.to_string(),
        })? {
            Reply::Invalidated {
                removed,
                generation,
                ..
            } => Ok((removed, generation)),
            Reply::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "expected invalidated reply, got {other:?}"
            ))),
        }
    }

    /// Blocks until the server's store generation exceeds `seen` (e.g.
    /// the value from a [`PolicyFetch`] or [`Self::generation_at_connect`])
    /// and returns the new generation — push notification of store
    /// mutations (re-analyses, invalidations), no polling. A server
    /// shutting down fails the watch with an in-band error. Use a
    /// connection without a read timeout: the wait is open-ended.
    pub fn wait_for_generation(&mut self, seen: u64) -> Result<u64, ServeError> {
        self.watch(seen, None)
    }

    /// [`Self::wait_for_generation`], scoped to one store key (v5): the
    /// watch fires only when *that* entry is mutated (inserted,
    /// re-analyzed, invalidated, or swept), not on unrelated store
    /// traffic — the fan-out an enforcement agent wants when it caches
    /// one binary's policy. Against an older (v4) daemon the key is
    /// ignored and this degrades to a whole-store watch: wakes may be
    /// spurious, but are never lost.
    pub fn wait_for_key(&mut self, key: &str, seen: u64) -> Result<u64, ServeError> {
        self.watch(seen, Some(key.to_string()))
    }

    fn watch(&mut self, seen: u64, key: Option<String>) -> Result<u64, ServeError> {
        match self.call(&Request::Watch {
            generation: seen,
            key,
        })? {
            Reply::Generation { generation } => Ok(generation),
            Reply::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "expected generation reply, got {other:?}"
            ))),
        }
    }

    /// The server's counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServeError> {
        match self.call(&Request::Stats)? {
            Reply::Stats { stats } => Ok(stats),
            Reply::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "expected stats reply, got {other:?}"
            ))),
        }
    }

    /// The server's full telemetry registry in Prometheus text
    /// exposition format (v4): counters, gauges, and per-endpoint
    /// latency histograms — everything the `stats` snapshot summarizes,
    /// plus distributions `stats` cannot carry.
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        match self.call(&Request::Metrics)? {
            Reply::Metrics { text } => Ok(text),
            Reply::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "expected metrics reply, got {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to shut down gracefully; returns once the server
    /// has acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "expected shutdown acknowledgment, got {other:?}"
            ))),
        }
    }
}
