//! Circuit breaker for the remote-offload path: graceful degradation
//! instead of failure amplification.
//!
//! When `bside serve --fleet` loses its fleet (agents dead, coordinator
//! partitioned), every cold fetch would otherwise burn the full offload
//! wait budget before falling back — a self-inflicted brownout. The
//! breaker is the classic three-state machine around the remote call:
//!
//! * **closed** — remote calls flow; each failure increments a
//!   consecutive-failure counter, and reaching the threshold opens the
//!   breaker. Any success resets the counter.
//! * **open** — remote calls are skipped outright (the caller goes
//!   straight to its local fallback) until the cooldown elapses.
//! * **half-open** — after the cooldown, exactly **one** probe call is
//!   let through: success closes the breaker, failure re-opens it for
//!   another cooldown. Concurrent callers during the probe are treated
//!   as open (local fallback) rather than piling onto a possibly-sick
//!   fleet.
//!
//! Time is passed in explicitly (`Instant` parameters), so the state
//! machine is testable without sockets or sleeps — the unit tests below
//! walk closed → open → half-open → closed with a synthetic clock.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The breaker's externally visible state (also surfaced as a numeric
/// code in the serve stats snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Remote calls flow normally.
    Closed,
    /// Remote calls are skipped until the cooldown elapses.
    Open,
    /// One probe call is in flight; everyone else falls back locally.
    HalfOpen,
}

impl BreakerState {
    /// Stable numeric encoding for the stats snapshot: 0 closed, 1 open,
    /// 2 half-open.
    pub fn code(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// Callback invoked with the new state on every state *transition*
/// (never on a no-op re-assertion of the current state) — how the serve
/// daemon feeds `bside_serve_breaker_transitions_total`. Runs under the
/// breaker lock, so it must not call back into the breaker.
pub type BreakerObserver = Box<dyn Fn(BreakerState) + Send + Sync>;

struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

impl Inner {
    fn transition(&mut self, observer: &Option<BreakerObserver>, to: BreakerState) {
        if self.state != to {
            if let Some(observer) = observer {
                observer(to);
            }
        }
        self.state = to;
    }
}

/// A consecutive-failure circuit breaker with timed half-open probes.
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    observer: Option<BreakerObserver>,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// failures (clamped to ≥1) and probes again `cooldown` after
    /// opening.
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            observer: None,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
            }),
        }
    }

    /// Installs the transition observer. Takes `&mut self`, so it can
    /// only happen during construction, before the breaker is shared.
    pub fn set_observer(&mut self, observer: BreakerObserver) {
        self.observer = Some(observer);
    }

    /// Asks permission to attempt the remote call *now*. `false` means
    /// skip the call and use the local fallback. A `true` from the open
    /// state admits the single half-open probe; the caller **must**
    /// report the outcome via [`Self::record_success`] or
    /// [`Self::record_failure`], or the breaker stays half-open until
    /// another cooldown admits a fresh probe.
    pub fn try_acquire(&self, now: Instant) -> bool {
        let mut inner = self.inner.lock().expect("breaker lock");
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let ripe = inner
                    .opened_at
                    .is_none_or(|at| now.duration_since(at) >= self.cooldown);
                if ripe {
                    inner.transition(&self.observer, BreakerState::HalfOpen);
                    true // this caller is the probe
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => false, // a probe is already out
        }
    }

    /// The remote call succeeded: close the breaker and forget the
    /// failure streak.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().expect("breaker lock");
        inner.transition(&self.observer, BreakerState::Closed);
        inner.consecutive_failures = 0;
        inner.opened_at = None;
    }

    /// The remote call failed at `now`: extend the streak (opening the
    /// breaker at the threshold), or — for a failed half-open probe —
    /// re-open for another cooldown.
    pub fn record_failure(&self, now: Instant) {
        let mut inner = self.inner.lock().expect("breaker lock");
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.threshold {
                    inner.transition(&self.observer, BreakerState::Open);
                    inner.opened_at = Some(now);
                }
            }
            BreakerState::HalfOpen | BreakerState::Open => {
                inner.transition(&self.observer, BreakerState::Open);
                inner.opened_at = Some(now);
            }
        }
    }

    /// The current state (for the stats snapshot and tests).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker lock").state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COOLDOWN: Duration = Duration::from_secs(5);

    /// The full life cycle on a synthetic clock: closed → (threshold
    /// failures) → open → (cooldown) → half-open single probe →
    /// closed on success. No sockets, no sleeps.
    #[test]
    fn closed_open_half_open_closed_on_a_synthetic_clock() {
        let breaker = CircuitBreaker::new(3, COOLDOWN);
        let t0 = Instant::now();
        assert_eq!(breaker.state(), BreakerState::Closed);

        // Two failures: still closed (threshold is 3).
        for _ in 0..2 {
            assert!(breaker.try_acquire(t0));
            breaker.record_failure(t0);
        }
        assert_eq!(breaker.state(), BreakerState::Closed);

        // Third consecutive failure opens it.
        assert!(breaker.try_acquire(t0));
        breaker.record_failure(t0);
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(
            !breaker.try_acquire(t0 + COOLDOWN / 2),
            "open within the cooldown: remote skipped"
        );

        // Cooldown elapses: exactly one probe is admitted.
        let probe_time = t0 + COOLDOWN;
        assert!(breaker.try_acquire(probe_time), "the half-open probe");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(
            !breaker.try_acquire(probe_time),
            "concurrent callers during the probe fall back locally"
        );

        // Probe succeeds: closed, streak forgotten.
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.try_acquire(probe_time));
    }

    #[test]
    fn a_failed_probe_reopens_for_a_fresh_cooldown() {
        let breaker = CircuitBreaker::new(1, COOLDOWN);
        let t0 = Instant::now();
        assert!(breaker.try_acquire(t0));
        breaker.record_failure(t0);
        assert_eq!(breaker.state(), BreakerState::Open);

        let t1 = t0 + COOLDOWN;
        assert!(breaker.try_acquire(t1), "probe admitted");
        breaker.record_failure(t1);
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(
            !breaker.try_acquire(t1 + COOLDOWN / 2),
            "the failed probe bought a whole new cooldown"
        );
        assert!(breaker.try_acquire(t1 + COOLDOWN), "and then probes again");
    }

    #[test]
    fn success_resets_the_failure_streak_in_closed_state() {
        let breaker = CircuitBreaker::new(3, COOLDOWN);
        let t0 = Instant::now();
        for round in 0..5 {
            assert!(breaker.try_acquire(t0));
            breaker.record_failure(t0);
            assert!(breaker.try_acquire(t0));
            breaker.record_failure(t0);
            breaker.record_success();
            assert_eq!(
                breaker.state(),
                BreakerState::Closed,
                "round {round}: interleaved successes must keep it closed"
            );
        }
    }

    #[test]
    fn observer_sees_each_transition_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let seen = Arc::new([AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)]);
        let mut breaker = CircuitBreaker::new(1, COOLDOWN);
        {
            let seen = Arc::clone(&seen);
            breaker.set_observer(Box::new(move |to| {
                seen[to.code() as usize].fetch_add(1, Ordering::Relaxed);
            }));
        }
        let t0 = Instant::now();
        breaker.record_success(); // closed → closed: NOT a transition
        assert!(breaker.try_acquire(t0));
        breaker.record_failure(t0); // → open
        assert!(breaker.try_acquire(t0 + COOLDOWN)); // → half-open
        breaker.record_failure(t0 + COOLDOWN); // → open again
        assert!(breaker.try_acquire(t0 + 2 * COOLDOWN)); // → half-open
        breaker.record_success(); // → closed
        let counts: Vec<u64> = seen.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert_eq!(counts, vec![1, 2, 2], "to=[closed, open, half-open]");
    }

    #[test]
    fn state_codes_are_stable() {
        assert_eq!(BreakerState::Closed.code(), 0);
        assert_eq!(BreakerState::Open.code(), 1);
        assert_eq!(BreakerState::HalfOpen.code(), 2);
    }
}
