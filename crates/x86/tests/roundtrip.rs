//! Property tests: encoder output always decodes back to the intended
//! instruction, and the decoder never panics on arbitrary bytes.
//!
//! The build environment has no registry access, so instead of proptest
//! these properties run over seeded pseudo-random inputs (512 cases per
//! test; failures print the case index for replay).

use bside_x86::{decode, Assembler, Cond, Instruction, Mem, Op, Operand, Reg, Target};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

const CASES: u64 = 512;

fn reg(rng: &mut SmallRng) -> Reg {
    Reg::from_number(rng.gen_range(0u32..16) as u8)
}

fn non_rsp_reg(rng: &mut SmallRng) -> Reg {
    loop {
        let r = reg(rng);
        if r != Reg::Rsp {
            return r;
        }
    }
}

fn any_i32(rng: &mut SmallRng) -> i32 {
    rng.next_u64() as u32 as i32
}

fn mem(rng: &mut SmallRng) -> Mem {
    match rng.gen_range(0..3) {
        0 => Mem::base_disp(reg(rng), any_i32(rng)),
        1 => Mem::rip(any_i32(rng)),
        _ => Mem {
            base: Some(reg(rng)),
            index: Some((non_rsp_reg(rng), [1u8, 2, 4, 8][rng.gen_range(0usize..4)])),
            disp: any_i32(rng),
            rip_relative: false,
        },
    }
}

fn assemble_one(f: impl FnOnce(&mut Assembler)) -> Vec<u8> {
    let mut asm = Assembler::new(0x40_0000);
    f(&mut asm);
    asm.finish().expect("assemble")
}

fn decode_one(bytes: &[u8]) -> Instruction {
    let insn = decode(bytes, 0x40_0000).expect("decode");
    assert_eq!(
        insn.len as usize,
        bytes.len(),
        "single instruction consumes all bytes"
    );
    insn
}

fn for_cases(salt: u64, mut f: impl FnMut(&mut SmallRng)) {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(salt.wrapping_mul(0x9E37) + case);
        f(&mut rng);
    }
}

#[test]
fn mov_reg_imm32_round_trips() {
    for_cases(1, |rng| {
        let (dst, imm) = (reg(rng), any_i32(rng));
        let code = assemble_one(|a| a.mov_reg_imm32(dst, imm));
        let insn = decode_one(&code);
        assert_eq!(
            insn.op,
            Op::Mov {
                dst: Operand::Reg(dst),
                src: Operand::Imm(imm as i64)
            }
        );
    });
}

#[test]
fn mov_reg_imm64_round_trips() {
    for_cases(2, |rng| {
        let (dst, imm) = (reg(rng), rng.next_u64());
        let code = assemble_one(|a| a.mov_reg_imm64(dst, imm));
        let insn = decode_one(&code);
        assert_eq!(insn.op, Op::MovImm64 { dst, imm });
    });
}

#[test]
fn mov_reg_reg_round_trips() {
    for_cases(3, |rng| {
        let (dst, src) = (reg(rng), reg(rng));
        let code = assemble_one(|a| a.mov_reg_reg(dst, src));
        let insn = decode_one(&code);
        assert_eq!(
            insn.op,
            Op::Mov {
                dst: Operand::Reg(dst),
                src: Operand::Reg(src)
            }
        );
    });
}

#[test]
fn mov_mem_forms_round_trip() {
    for_cases(4, |rng| {
        let (r, m) = (reg(rng), mem(rng));
        let code = assemble_one(|a| a.mov_reg_mem(r, m));
        let insn = decode_one(&code);
        assert_eq!(
            insn.op,
            Op::Mov {
                dst: Operand::Reg(r),
                src: Operand::Mem(m)
            }
        );

        let code = assemble_one(|a| a.mov_mem_reg(m, r));
        let insn = decode_one(&code);
        assert_eq!(
            insn.op,
            Op::Mov {
                dst: Operand::Mem(m),
                src: Operand::Reg(r)
            }
        );
    });
}

#[test]
fn mov_mem_imm_round_trips() {
    for_cases(5, |rng| {
        let (m, imm) = (mem(rng), any_i32(rng));
        let code = assemble_one(|a| a.mov_mem_imm32(m, imm));
        let insn = decode_one(&code);
        assert_eq!(
            insn.op,
            Op::Mov {
                dst: Operand::Mem(m),
                src: Operand::Imm(imm as i64)
            }
        );
    });
}

#[test]
fn lea_round_trips() {
    for_cases(6, |rng| {
        let (dst, m) = (reg(rng), mem(rng));
        let code = assemble_one(|a| a.lea(dst, m));
        let insn = decode_one(&code);
        assert_eq!(insn.op, Op::Lea { dst, addr: m });
    });
}

#[test]
fn push_pop_round_trip() {
    for_cases(7, |rng| {
        let (r, imm) = (reg(rng), any_i32(rng));
        let code = assemble_one(|a| a.push_reg(r));
        assert_eq!(decode_one(&code).op, Op::Push(Operand::Reg(r)));

        let code = assemble_one(|a| a.pop_reg(r));
        assert_eq!(decode_one(&code).op, Op::Pop(r));

        let code = assemble_one(|a| a.push_imm32(imm));
        assert_eq!(decode_one(&code).op, Op::Push(Operand::Imm(imm as i64)));
    });
}

#[test]
fn alu_round_trips() {
    for_cases(8, |rng| {
        let (dst, src, imm) = (reg(rng), reg(rng), any_i32(rng));
        let code = assemble_one(|a| a.add_reg_reg(dst, src));
        assert_eq!(
            decode_one(&code).op,
            Op::Add {
                dst: Operand::Reg(dst),
                src: Operand::Reg(src)
            }
        );

        let code = assemble_one(|a| a.sub_reg_imm32(dst, imm));
        assert_eq!(
            decode_one(&code).op,
            Op::Sub {
                dst: Operand::Reg(dst),
                src: Operand::Imm(imm as i64)
            }
        );

        let code = assemble_one(|a| a.xor_reg_reg(dst, src));
        assert_eq!(
            decode_one(&code).op,
            Op::Xor {
                dst: Operand::Reg(dst),
                src: Operand::Reg(src)
            }
        );

        let code = assemble_one(|a| a.cmp_reg_imm32(dst, imm));
        assert_eq!(
            decode_one(&code).op,
            Op::Cmp {
                a: Operand::Reg(dst),
                b: Operand::Imm(imm as i64)
            }
        );

        let code = assemble_one(|a| a.test_reg_reg(dst, src));
        assert_eq!(
            decode_one(&code).op,
            Op::Test {
                a: Operand::Reg(dst),
                b: Operand::Reg(src)
            }
        );
    });
}

#[test]
fn indirect_control_flow_round_trips() {
    for_cases(9, |rng| {
        let (r, m) = (reg(rng), mem(rng));
        let code = assemble_one(|a| a.call_reg(r));
        assert_eq!(decode_one(&code).op, Op::Call(Target::Reg(r)));

        let code = assemble_one(|a| a.jmp_reg(r));
        assert_eq!(decode_one(&code).op, Op::Jmp(Target::Reg(r)));

        let code = assemble_one(|a| a.call_mem(m));
        assert_eq!(decode_one(&code).op, Op::Call(Target::Mem(m)));
    });
}

#[test]
fn labelled_branches_resolve() {
    for_cases(10, |rng| {
        // jmp over `disp` nops lands exactly past them.
        let disp = rng.gen_range(0usize..200);
        let mut asm = Assembler::new(0x1000);
        let l = asm.new_label();
        asm.jmp_label(l);
        for _ in 0..disp {
            asm.nop();
        }
        asm.bind(l).unwrap();
        asm.ret();
        let code = asm.finish().unwrap();
        let insn = decode(&code, 0x1000).unwrap();
        assert_eq!(insn.branch_target(), Some(0x1000 + 5 + disp as u64));
    });
}

#[test]
fn jcc_labels_resolve() {
    for_cases(11, |rng| {
        let conds = [
            Cond::E,
            Cond::Ne,
            Cond::L,
            Cond::Le,
            Cond::G,
            Cond::Ge,
            Cond::B,
            Cond::Be,
            Cond::Ae,
            Cond::A,
            Cond::S,
            Cond::Ns,
        ];
        let cond = conds[rng.gen_range(0..conds.len())];
        let disp = rng.gen_range(0usize..100);
        let mut asm = Assembler::new(0x2000);
        let l = asm.new_label();
        asm.jcc_label(cond, l);
        for _ in 0..disp {
            asm.nop();
        }
        asm.bind(l).unwrap();
        let code = asm.finish().unwrap();
        let insn = decode(&code, 0x2000).unwrap();
        match insn.op {
            Op::Jcc(c, _) => assert_eq!(c, cond),
            other => panic!("expected jcc, got {other:?}"),
        }
        assert_eq!(insn.branch_target(), Some(0x2000 + 6 + disp as u64));
    });
}

#[test]
fn decoder_never_panics() {
    for_cases(12, |rng| {
        let n = rng.gen_range(0usize..32);
        let bytes: Vec<u8> = (0..n).map(|_| rng.gen_range(0u32..256) as u8).collect();
        let _ = decode(&bytes, 0x1234);
    });
}

#[test]
fn decoded_length_is_within_input() {
    for_cases(13, |rng| {
        let n = rng.gen_range(1usize..32);
        let bytes: Vec<u8> = (0..n).map(|_| rng.gen_range(0u32..256) as u8).collect();
        if let Ok(insn) = decode(&bytes, 0) {
            assert!(insn.len as usize <= bytes.len());
            assert!(insn.len > 0);
        }
    });
}
