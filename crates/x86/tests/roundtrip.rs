//! Property tests: encoder output always decodes back to the intended
//! instruction, and the decoder never panics on arbitrary bytes.

use bside_x86::{decode, Assembler, Cond, Instruction, Mem, Op, Operand, Reg, Target};
use proptest::prelude::*;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::from_number)
}

fn non_rsp_reg() -> impl Strategy<Value = Reg> {
    reg_strategy().prop_filter("rsp cannot be an index", |r| *r != Reg::Rsp)
}

fn mem_strategy() -> impl Strategy<Value = Mem> {
    prop_oneof![
        // [base + disp]
        (reg_strategy(), any::<i32>()).prop_map(|(base, disp)| Mem::base_disp(base, disp)),
        // [rip + disp]
        any::<i32>().prop_map(Mem::rip),
        // [base + index*scale + disp]
        (reg_strategy(), non_rsp_reg(), prop_oneof![Just(1u8), Just(2), Just(4), Just(8)], any::<i32>())
            .prop_map(|(base, index, scale, disp)| Mem {
                base: Some(base),
                index: Some((index, scale)),
                disp,
                rip_relative: false,
            }),
    ]
}

fn assemble_one(f: impl FnOnce(&mut Assembler)) -> Vec<u8> {
    let mut asm = Assembler::new(0x40_0000);
    f(&mut asm);
    asm.finish().expect("assemble")
}

fn decode_one(bytes: &[u8]) -> Instruction {
    let insn = decode(bytes, 0x40_0000).expect("decode");
    assert_eq!(insn.len as usize, bytes.len(), "single instruction consumes all bytes");
    insn
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn mov_reg_imm32_round_trips(dst in reg_strategy(), imm in any::<i32>()) {
        let code = assemble_one(|a| a.mov_reg_imm32(dst, imm));
        let insn = decode_one(&code);
        prop_assert_eq!(insn.op, Op::Mov { dst: Operand::Reg(dst), src: Operand::Imm(imm as i64) });
    }

    #[test]
    fn mov_reg_imm64_round_trips(dst in reg_strategy(), imm in any::<u64>()) {
        let code = assemble_one(|a| a.mov_reg_imm64(dst, imm));
        let insn = decode_one(&code);
        prop_assert_eq!(insn.op, Op::MovImm64 { dst, imm });
    }

    #[test]
    fn mov_reg_reg_round_trips(dst in reg_strategy(), src in reg_strategy()) {
        let code = assemble_one(|a| a.mov_reg_reg(dst, src));
        let insn = decode_one(&code);
        prop_assert_eq!(insn.op, Op::Mov { dst: Operand::Reg(dst), src: Operand::Reg(src) });
    }

    #[test]
    fn mov_mem_forms_round_trip(reg in reg_strategy(), mem in mem_strategy()) {
        let code = assemble_one(|a| a.mov_reg_mem(reg, mem));
        let insn = decode_one(&code);
        prop_assert_eq!(insn.op, Op::Mov { dst: Operand::Reg(reg), src: Operand::Mem(mem) });

        let code = assemble_one(|a| a.mov_mem_reg(mem, reg));
        let insn = decode_one(&code);
        prop_assert_eq!(insn.op, Op::Mov { dst: Operand::Mem(mem), src: Operand::Reg(reg) });
    }

    #[test]
    fn mov_mem_imm_round_trips(mem in mem_strategy(), imm in any::<i32>()) {
        let code = assemble_one(|a| a.mov_mem_imm32(mem, imm));
        let insn = decode_one(&code);
        prop_assert_eq!(insn.op, Op::Mov { dst: Operand::Mem(mem), src: Operand::Imm(imm as i64) });
    }

    #[test]
    fn lea_round_trips(dst in reg_strategy(), mem in mem_strategy()) {
        let code = assemble_one(|a| a.lea(dst, mem));
        let insn = decode_one(&code);
        prop_assert_eq!(insn.op, Op::Lea { dst, addr: mem });
    }

    #[test]
    fn push_pop_round_trip(reg in reg_strategy(), imm in any::<i32>()) {
        let code = assemble_one(|a| a.push_reg(reg));
        prop_assert_eq!(decode_one(&code).op, Op::Push(Operand::Reg(reg)));

        let code = assemble_one(|a| a.pop_reg(reg));
        prop_assert_eq!(decode_one(&code).op, Op::Pop(reg));

        let code = assemble_one(|a| a.push_imm32(imm));
        prop_assert_eq!(decode_one(&code).op, Op::Push(Operand::Imm(imm as i64)));
    }

    #[test]
    fn alu_round_trips(dst in reg_strategy(), src in reg_strategy(), imm in any::<i32>()) {
        let code = assemble_one(|a| a.add_reg_reg(dst, src));
        prop_assert_eq!(decode_one(&code).op, Op::Add { dst: Operand::Reg(dst), src: Operand::Reg(src) });

        let code = assemble_one(|a| a.sub_reg_imm32(dst, imm));
        prop_assert_eq!(decode_one(&code).op, Op::Sub { dst: Operand::Reg(dst), src: Operand::Imm(imm as i64) });

        let code = assemble_one(|a| a.xor_reg_reg(dst, src));
        prop_assert_eq!(decode_one(&code).op, Op::Xor { dst: Operand::Reg(dst), src: Operand::Reg(src) });

        let code = assemble_one(|a| a.cmp_reg_imm32(dst, imm));
        prop_assert_eq!(decode_one(&code).op, Op::Cmp { a: Operand::Reg(dst), b: Operand::Imm(imm as i64) });

        let code = assemble_one(|a| a.test_reg_reg(dst, src));
        prop_assert_eq!(decode_one(&code).op, Op::Test { a: Operand::Reg(dst), b: Operand::Reg(src) });
    }

    #[test]
    fn indirect_control_flow_round_trips(reg in reg_strategy(), mem in mem_strategy()) {
        let code = assemble_one(|a| a.call_reg(reg));
        prop_assert_eq!(decode_one(&code).op, Op::Call(Target::Reg(reg)));

        let code = assemble_one(|a| a.jmp_reg(reg));
        prop_assert_eq!(decode_one(&code).op, Op::Jmp(Target::Reg(reg)));

        let code = assemble_one(|a| a.call_mem(mem));
        prop_assert_eq!(decode_one(&code).op, Op::Call(Target::Mem(mem)));
    }

    #[test]
    fn labelled_branches_resolve(disp in 0usize..200) {
        // jmp over `disp` nops lands exactly past them.
        let mut asm = Assembler::new(0x1000);
        let l = asm.new_label();
        asm.jmp_label(l);
        for _ in 0..disp {
            asm.nop();
        }
        asm.bind(l).unwrap();
        asm.ret();
        let code = asm.finish().unwrap();
        let insn = decode(&code, 0x1000).unwrap();
        prop_assert_eq!(insn.branch_target(), Some(0x1000 + 5 + disp as u64));
    }

    #[test]
    fn jcc_labels_resolve(cond_code in 0usize..12, disp in 0usize..100) {
        let conds = [
            Cond::E, Cond::Ne, Cond::L, Cond::Le, Cond::G, Cond::Ge,
            Cond::B, Cond::Be, Cond::Ae, Cond::A, Cond::S, Cond::Ns,
        ];
        let cond = conds[cond_code];
        let mut asm = Assembler::new(0x2000);
        let l = asm.new_label();
        asm.jcc_label(cond, l);
        for _ in 0..disp {
            asm.nop();
        }
        asm.bind(l).unwrap();
        let code = asm.finish().unwrap();
        let insn = decode(&code, 0x2000).unwrap();
        match insn.op {
            Op::Jcc(c, _) => prop_assert_eq!(c, cond),
            other => prop_assert!(false, "expected jcc, got {:?}", other),
        }
        prop_assert_eq!(insn.branch_target(), Some(0x2000 + 6 + disp as u64));
    }

    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..32)) {
        let _ = decode(&bytes, 0x1234);
    }

    #[test]
    fn decoded_length_is_within_input(bytes in prop::collection::vec(any::<u8>(), 1..32)) {
        if let Ok(insn) = decode(&bytes, 0) {
            prop_assert!(insn.len as usize <= bytes.len());
            prop_assert!(insn.len > 0);
        }
    }
}
