//! Concrete reference interpreter.
//!
//! The paper establishes its dynamic ground truth by running each
//! application's test suite under `strace` (§5.1). Our synthetic corpus is
//! executed by this interpreter instead: it runs the decoded machine code
//! concretely and records every `syscall` invocation together with the
//! value of `%rax` at the time — exactly what `strace` would observe.
//!
//! The interpreter also serves as the semantic oracle for the symbolic
//! execution engine: on fully concrete inputs, `bside-symex` must agree
//! with it (property-tested in `bside-symex`).
//!
//! # Examples
//!
//! ```
//! use bside_x86::{Assembler, Reg};
//! use bside_x86::interp::{execute, ExecConfig, ExitReason, Image};
//!
//! let mut asm = Assembler::new(0x1000);
//! asm.mov_reg_imm32(Reg::Rax, 60); // exit
//! asm.xor_reg_reg(Reg::Rdi, Reg::Rdi);
//! asm.syscall();
//! let code = asm.finish().unwrap();
//!
//! let mut image = Image::new();
//! image.add_region(0x1000, code);
//! let trace = execute(&image, 0x1000, &ExecConfig::default());
//! assert_eq!(trace.exit, ExitReason::SyscallExit);
//! assert_eq!(trace.syscalls, vec![(0x100a, 60)]);
//! ```

use crate::insn::{Cond, Mem, Op, Operand, Target};
use crate::{decode, Reg};
use std::collections::HashMap;

/// A flat memory image: the loadable contents of a binary.
#[derive(Debug, Clone, Default)]
pub struct Image {
    regions: Vec<(u64, Vec<u8>)>,
}

impl Image {
    /// Creates an empty image.
    pub fn new() -> Self {
        Image::default()
    }

    /// Adds a region of bytes at `vaddr`.
    pub fn add_region(&mut self, vaddr: u64, bytes: Vec<u8>) {
        self.regions.push((vaddr, bytes));
    }

    /// Reads one byte, if mapped.
    pub fn read_u8(&self, addr: u64) -> Option<u8> {
        for (base, bytes) in &self.regions {
            if addr >= *base && addr < *base + bytes.len() as u64 {
                return Some(bytes[(addr - base) as usize]);
            }
        }
        None
    }

    /// Returns up to `len` contiguous bytes at `addr`, if mapped.
    pub fn bytes_at(&self, addr: u64, len: usize) -> Option<&[u8]> {
        for (base, bytes) in &self.regions {
            if addr >= *base && addr + len as u64 <= *base + bytes.len() as u64 {
                let start = (addr - base) as usize;
                return Some(&bytes[start..start + len]);
            }
        }
        None
    }
}

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// The entry function executed `ret`.
    ReturnedFromEntry,
    /// An `exit`/`exit_group` system call was invoked.
    SyscallExit,
    /// The step budget was exhausted.
    StepLimit,
    /// Execution faulted (unmapped fetch, trap instruction, …).
    Fault {
        /// Address at which the fault occurred.
        addr: u64,
    },
}

/// Execution limits and environment.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Maximum number of instructions to execute.
    pub max_steps: usize,
    /// Initial stack pointer (grows down).
    pub stack_top: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_steps: 1_000_000,
            stack_top: 0x7fff_0000_0000,
        }
    }
}

/// The record of one run.
#[derive(Debug, Clone)]
pub struct Trace {
    /// `(site address, %rax)` for every `syscall` executed, in order.
    pub syscalls: Vec<(u64, u64)>,
    /// Instructions executed.
    pub steps: usize,
    /// Why the run ended.
    pub exit: ExitReason,
}

const RETURN_SENTINEL: u64 = 0xdead_beef_0000_0000;

#[derive(Debug, Default)]
struct Flags {
    zf: bool,
    sf: bool,
    cf: bool,
    of: bool,
}

struct Machine<'a> {
    image: &'a Image,
    regs: [u64; 16],
    mem: HashMap<u64, u8>,
    flags: Flags,
}

impl Machine<'_> {
    fn reg(&self, r: Reg) -> u64 {
        self.regs[r.number() as usize]
    }

    fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.number() as usize] = v;
    }

    fn read_u64(&self, addr: u64) -> Option<u64> {
        let mut v = 0u64;
        for i in 0..8 {
            let a = addr.wrapping_add(i);
            let byte = match self.mem.get(&a) {
                Some(&b) => b,
                None => self.image.read_u8(a)?,
            };
            v |= (byte as u64) << (8 * i);
        }
        Some(v)
    }

    fn write_u64(&mut self, addr: u64, v: u64) {
        for i in 0..8 {
            self.mem.insert(addr.wrapping_add(i), (v >> (8 * i)) as u8);
        }
    }

    fn effective_addr(&self, mem: &Mem, insn_end: u64) -> u64 {
        if mem.rip_relative {
            return insn_end.wrapping_add(mem.disp as i64 as u64);
        }
        let mut addr = mem.disp as i64 as u64;
        if let Some(base) = mem.base {
            addr = addr.wrapping_add(self.reg(base));
        }
        if let Some((index, scale)) = mem.index {
            addr = addr.wrapping_add(self.reg(index).wrapping_mul(scale as u64));
        }
        addr
    }

    fn read_operand(&self, op: &Operand, insn_end: u64) -> Option<u64> {
        match op {
            Operand::Reg(r) => Some(self.reg(*r)),
            Operand::Imm(i) => Some(*i as u64),
            Operand::Mem(m) => self.read_u64(self.effective_addr(m, insn_end)),
        }
    }

    fn write_operand(&mut self, op: &Operand, v: u64, insn_end: u64) -> bool {
        match op {
            Operand::Reg(r) => {
                self.set_reg(*r, v);
                true
            }
            Operand::Mem(m) => {
                self.write_u64(self.effective_addr(m, insn_end), v);
                true
            }
            Operand::Imm(_) => false,
        }
    }

    fn set_flags_sub(&mut self, a: u64, b: u64) {
        let (res, borrow) = a.overflowing_sub(b);
        self.flags.zf = res == 0;
        self.flags.sf = (res as i64) < 0;
        self.flags.cf = borrow;
        self.flags.of = ((a ^ b) & (a ^ res)) >> 63 == 1;
    }

    fn set_flags_add(&mut self, a: u64, b: u64) {
        let (res, carry) = a.overflowing_add(b);
        self.flags.zf = res == 0;
        self.flags.sf = (res as i64) < 0;
        self.flags.cf = carry;
        self.flags.of = (!(a ^ b) & (a ^ res)) >> 63 == 1;
    }

    fn set_flags_logic(&mut self, res: u64) {
        self.flags.zf = res == 0;
        self.flags.sf = (res as i64) < 0;
        self.flags.cf = false;
        self.flags.of = false;
    }

    fn cond_holds(&self, cond: Cond) -> bool {
        let f = &self.flags;
        match cond {
            Cond::E => f.zf,
            Cond::Ne => !f.zf,
            Cond::L => f.sf != f.of,
            Cond::Le => f.zf || f.sf != f.of,
            Cond::G => !f.zf && f.sf == f.of,
            Cond::Ge => f.sf == f.of,
            Cond::B => f.cf,
            Cond::Be => f.cf || f.zf,
            Cond::Ae => !f.cf,
            Cond::A => !f.cf && !f.zf,
            Cond::S => f.sf,
            Cond::Ns => !f.sf,
        }
    }
}

/// Executes the image from `entry`, recording system calls.
///
/// The run ends when the entry function returns, an `exit`/`exit_group`
/// system call is made, the step budget is exhausted, or execution faults.
/// Non-exit system calls write `0` to `%rax` (success) and clobber
/// `%rcx`/`%r11` as the hardware does.
pub fn execute(image: &Image, entry: u64, config: &ExecConfig) -> Trace {
    let mut m = Machine {
        image,
        regs: [0; 16],
        mem: HashMap::new(),
        flags: Flags::default(),
    };
    m.set_reg(Reg::Rsp, config.stack_top - 8);
    m.write_u64(config.stack_top - 8, RETURN_SENTINEL);

    let mut rip = entry;
    let mut syscalls = Vec::new();
    let mut steps = 0;

    loop {
        if steps >= config.max_steps {
            return Trace {
                syscalls,
                steps,
                exit: ExitReason::StepLimit,
            };
        }
        let Some(window) = image.bytes_at(rip, 16).or_else(|| image.bytes_at(rip, 1)) else {
            return Trace {
                syscalls,
                steps,
                exit: ExitReason::Fault { addr: rip },
            };
        };
        // Re-slice to the longest available window ≤ 16 bytes.
        let window = {
            let mut len = 16;
            loop {
                if let Some(w) = image.bytes_at(rip, len) {
                    break w;
                }
                len -= 1;
                if len == 0 {
                    break window;
                }
            }
        };
        let Ok(insn) = decode(window, rip) else {
            return Trace {
                syscalls,
                steps,
                exit: ExitReason::Fault { addr: rip },
            };
        };
        steps += 1;
        let end = insn.end();
        let mut next = end;

        match insn.op {
            Op::Mov { dst, src } => {
                let Some(v) = m.read_operand(&src, end) else {
                    return Trace {
                        syscalls,
                        steps,
                        exit: ExitReason::Fault { addr: rip },
                    };
                };
                m.write_operand(&dst, v, end);
            }
            Op::MovImm64 { dst, imm } => m.set_reg(dst, imm),
            Op::Lea { dst, addr } => {
                let ea = m.effective_addr(&addr, end);
                m.set_reg(dst, ea);
            }
            Op::Push(src) => {
                let Some(v) = m.read_operand(&src, end) else {
                    return Trace {
                        syscalls,
                        steps,
                        exit: ExitReason::Fault { addr: rip },
                    };
                };
                let rsp = m.reg(Reg::Rsp) - 8;
                m.set_reg(Reg::Rsp, rsp);
                m.write_u64(rsp, v);
            }
            Op::Pop(dst) => {
                let rsp = m.reg(Reg::Rsp);
                let Some(v) = m.read_u64(rsp) else {
                    return Trace {
                        syscalls,
                        steps,
                        exit: ExitReason::Fault { addr: rip },
                    };
                };
                m.set_reg(dst, v);
                m.set_reg(Reg::Rsp, rsp + 8);
            }
            Op::Add { dst, src } => {
                let (Some(a), Some(b)) = (m.read_operand(&dst, end), m.read_operand(&src, end))
                else {
                    return Trace {
                        syscalls,
                        steps,
                        exit: ExitReason::Fault { addr: rip },
                    };
                };
                m.set_flags_add(a, b);
                m.write_operand(&dst, a.wrapping_add(b), end);
            }
            Op::Sub { dst, src } => {
                let (Some(a), Some(b)) = (m.read_operand(&dst, end), m.read_operand(&src, end))
                else {
                    return Trace {
                        syscalls,
                        steps,
                        exit: ExitReason::Fault { addr: rip },
                    };
                };
                m.set_flags_sub(a, b);
                m.write_operand(&dst, a.wrapping_sub(b), end);
            }
            Op::Xor { dst, src } => {
                let (Some(a), Some(b)) = (m.read_operand(&dst, end), m.read_operand(&src, end))
                else {
                    return Trace {
                        syscalls,
                        steps,
                        exit: ExitReason::Fault { addr: rip },
                    };
                };
                let res = a ^ b;
                m.set_flags_logic(res);
                m.write_operand(&dst, res, end);
            }
            Op::And { dst, src } => {
                let (Some(a), Some(b)) = (m.read_operand(&dst, end), m.read_operand(&src, end))
                else {
                    return Trace {
                        syscalls,
                        steps,
                        exit: ExitReason::Fault { addr: rip },
                    };
                };
                let res = a & b;
                m.set_flags_logic(res);
                m.write_operand(&dst, res, end);
            }
            Op::Or { dst, src } => {
                let (Some(a), Some(b)) = (m.read_operand(&dst, end), m.read_operand(&src, end))
                else {
                    return Trace {
                        syscalls,
                        steps,
                        exit: ExitReason::Fault { addr: rip },
                    };
                };
                let res = a | b;
                m.set_flags_logic(res);
                m.write_operand(&dst, res, end);
            }
            Op::Cmp { a, b } => {
                let (Some(x), Some(y)) = (m.read_operand(&a, end), m.read_operand(&b, end)) else {
                    return Trace {
                        syscalls,
                        steps,
                        exit: ExitReason::Fault { addr: rip },
                    };
                };
                m.set_flags_sub(x, y);
            }
            Op::Test { a, b } => {
                let (Some(x), Some(y)) = (m.read_operand(&a, end), m.read_operand(&b, end)) else {
                    return Trace {
                        syscalls,
                        steps,
                        exit: ExitReason::Fault { addr: rip },
                    };
                };
                m.set_flags_logic(x & y);
            }
            Op::Call(target) => {
                let dest = match target {
                    Target::Rel(_) => insn.branch_target().expect("rel"),
                    Target::Reg(r) => m.reg(r),
                    Target::Mem(mem) => {
                        let ea = m.effective_addr(&mem, end);
                        match m.read_u64(ea) {
                            Some(v) => v,
                            None => {
                                return Trace {
                                    syscalls,
                                    steps,
                                    exit: ExitReason::Fault { addr: rip },
                                }
                            }
                        }
                    }
                };
                let rsp = m.reg(Reg::Rsp) - 8;
                m.set_reg(Reg::Rsp, rsp);
                m.write_u64(rsp, end);
                next = dest;
            }
            Op::Jmp(target) => {
                next = match target {
                    Target::Rel(_) => insn.branch_target().expect("rel"),
                    Target::Reg(r) => m.reg(r),
                    Target::Mem(mem) => {
                        let ea = m.effective_addr(&mem, end);
                        match m.read_u64(ea) {
                            Some(v) => v,
                            None => {
                                return Trace {
                                    syscalls,
                                    steps,
                                    exit: ExitReason::Fault { addr: rip },
                                }
                            }
                        }
                    }
                };
            }
            Op::Jcc(cond, _) => {
                if m.cond_holds(cond) {
                    next = insn.branch_target().expect("rel");
                }
            }
            Op::Ret => {
                let rsp = m.reg(Reg::Rsp);
                let Some(v) = m.read_u64(rsp) else {
                    return Trace {
                        syscalls,
                        steps,
                        exit: ExitReason::Fault { addr: rip },
                    };
                };
                m.set_reg(Reg::Rsp, rsp + 8);
                if v == RETURN_SENTINEL {
                    return Trace {
                        syscalls,
                        steps,
                        exit: ExitReason::ReturnedFromEntry,
                    };
                }
                next = v;
            }
            Op::Syscall => {
                let rax = m.reg(Reg::Rax);
                syscalls.push((insn.addr, rax));
                if rax == 60 || rax == 231 {
                    return Trace {
                        syscalls,
                        steps,
                        exit: ExitReason::SyscallExit,
                    };
                }
                // Kernel return: rax = 0, rcx/r11 clobbered.
                m.set_reg(Reg::Rax, 0);
                m.set_reg(Reg::Rcx, end);
                m.set_reg(Reg::R11, 0x246);
            }
            Op::Nop | Op::Endbr64 => {}
            Op::Int3 | Op::Ud2 | Op::Hlt => {
                return Trace {
                    syscalls,
                    steps,
                    exit: ExitReason::Fault { addr: rip },
                };
            }
        }

        rip = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assembler;

    fn run(asm: Assembler, entry: u64) -> Trace {
        let base = 0x1000;
        let code = asm.finish().expect("assemble");
        let mut image = Image::new();
        image.add_region(base, code);
        execute(&image, entry, &ExecConfig::default())
    }

    #[test]
    fn records_syscall_sequence() {
        let mut a = Assembler::new(0x1000);
        a.mov_reg_imm32(Reg::Rax, 1); // write
        a.syscall();
        a.mov_reg_imm32(Reg::Rax, 0); // read
        a.syscall();
        a.mov_reg_imm32(Reg::Rax, 60); // exit
        a.syscall();
        let t = run(a, 0x1000);
        assert_eq!(t.exit, ExitReason::SyscallExit);
        let ids: Vec<u64> = t.syscalls.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![1, 0, 60]);
    }

    #[test]
    fn call_and_ret_work() {
        let mut a = Assembler::new(0x1000);
        let f = a.new_label();
        a.call_label(f);
        a.mov_reg_imm32(Reg::Rax, 60);
        a.syscall();
        a.bind(f).unwrap();
        a.mov_reg_imm32(Reg::Rax, 1);
        a.syscall();
        a.ret();
        let t = run(a, 0x1000);
        let ids: Vec<u64> = t.syscalls.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![1, 60]);
    }

    #[test]
    fn branch_both_directions() {
        // if rdi == 0 → syscall 0 else syscall 1, driven by initial rdi=0.
        let mut a = Assembler::new(0x1000);
        let elze = a.new_label();
        let done = a.new_label();
        a.cmp_reg_imm32(Reg::Rdi, 0);
        a.jcc_label(crate::Cond::Ne, elze);
        a.mov_reg_imm32(Reg::Rax, 0);
        a.jmp_label(done);
        a.bind(elze).unwrap();
        a.mov_reg_imm32(Reg::Rax, 1);
        a.bind(done).unwrap();
        a.syscall();
        a.mov_reg_imm32(Reg::Rax, 60);
        a.syscall();
        let t = run(a, 0x1000);
        let ids: Vec<u64> = t.syscalls.iter().map(|&(_, id)| id).collect();
        assert_eq!(
            ids,
            vec![0, 60],
            "rdi starts at 0 → taken branch is the je side"
        );
    }

    #[test]
    fn value_through_stack_reaches_rax() {
        // The Fig. 1 C shape: store imm on the stack, load into rax, syscall.
        let mut a = Assembler::new(0x1000);
        a.sub_reg_imm32(Reg::Rsp, 0x20);
        a.mov_mem_imm32(Mem::base_disp(Reg::Rsp, 0x8), 39); // getpid
        a.mov_reg_mem(Reg::Rax, Mem::base_disp(Reg::Rsp, 0x8));
        a.syscall();
        a.mov_reg_imm32(Reg::Rax, 60);
        a.syscall();
        let t = run(a, 0x1000);
        assert_eq!(t.syscalls[0].1, 39);
    }

    #[test]
    fn indirect_call_through_register() {
        let mut a = Assembler::new(0x1000);
        let f = a.new_label();
        a.lea_riplabel(Reg::Rbx, f);
        a.call_reg(Reg::Rbx);
        a.mov_reg_imm32(Reg::Rax, 60);
        a.syscall();
        a.bind(f).unwrap();
        a.mov_reg_imm32(Reg::Rax, 39);
        a.syscall();
        a.ret();
        let t = run(a, 0x1000);
        let ids: Vec<u64> = t.syscalls.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![39, 60]);
    }

    #[test]
    fn entry_return_ends_run() {
        let mut a = Assembler::new(0x1000);
        a.nop();
        a.ret();
        let t = run(a, 0x1000);
        assert_eq!(t.exit, ExitReason::ReturnedFromEntry);
        assert!(t.syscalls.is_empty());
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut a = Assembler::new(0x1000);
        let top = a.new_label();
        a.bind(top).unwrap();
        a.jmp_label(top);
        let code = a.finish().unwrap();
        let mut image = Image::new();
        image.add_region(0x1000, code);
        let t = execute(
            &image,
            0x1000,
            &ExecConfig {
                max_steps: 100,
                ..Default::default()
            },
        );
        assert_eq!(t.exit, ExitReason::StepLimit);
        assert_eq!(t.steps, 100);
    }

    #[test]
    fn unmapped_fetch_faults() {
        let image = Image::new();
        let t = execute(&image, 0x1000, &ExecConfig::default());
        assert_eq!(t.exit, ExitReason::Fault { addr: 0x1000 });
    }

    #[test]
    fn syscall_clobbers_follow_abi() {
        // After a non-exit syscall, rax = 0 (result) and rcx = return rip.
        let mut a = Assembler::new(0x1000);
        a.mov_reg_imm32(Reg::Rax, 39);
        a.syscall(); // ends at 0x1009
                     // If rax == 0, do syscall 2; else 3.
        let other = a.new_label();
        let done = a.new_label();
        a.cmp_reg_imm32(Reg::Rax, 0);
        a.jcc_label(crate::Cond::Ne, other);
        a.mov_reg_imm32(Reg::Rax, 2);
        a.jmp_label(done);
        a.bind(other).unwrap();
        a.mov_reg_imm32(Reg::Rax, 3);
        a.bind(done).unwrap();
        a.syscall();
        a.mov_reg_imm32(Reg::Rax, 60);
        a.syscall();
        let t = run(a, 0x1000);
        let ids: Vec<u64> = t.syscalls.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![39, 2, 60]);
    }
}
