//! General-purpose register file.

use std::fmt;

/// A 64-bit general-purpose register.
///
/// The discriminant is the hardware encoding (the 4-bit register number
/// used in ModRM/SIB bytes, with the high bit carried by REX).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Reg {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

serde::impl_serde_unit_enum!(Reg {
    Rax,
    Rcx,
    Rdx,
    Rbx,
    Rsp,
    Rbp,
    Rsi,
    Rdi,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
});

impl Reg {
    /// All sixteen registers, in encoding order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rsp,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// The System V AMD64 integer argument registers, in order.
    pub const ARGS: [Reg; 6] = [Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::Rcx, Reg::R8, Reg::R9];

    /// The hardware encoding (0–15).
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Builds a register from its hardware encoding.
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    pub fn from_number(n: u8) -> Reg {
        Reg::ALL[n as usize]
    }

    /// The low 3 bits of the encoding (the ModRM field value).
    pub(crate) fn low3(self) -> u8 {
        self.number() & 7
    }

    /// `true` for `R8`–`R15`, which need a REX extension bit.
    pub(crate) fn needs_rex(self) -> bool {
        self.number() >= 8
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Reg::Rax => "rax",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rbx => "rbx",
            Reg::Rsp => "rsp",
            Reg::Rbp => "rbp",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbering_round_trips() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_number(r.number()), r);
        }
    }

    #[test]
    fn rex_split() {
        assert!(!Reg::Rdi.needs_rex());
        assert!(Reg::R8.needs_rex());
        assert_eq!(Reg::R9.low3(), 1);
    }

    #[test]
    fn sysv_argument_order() {
        assert_eq!(Reg::ARGS[0], Reg::Rdi);
        assert_eq!(Reg::ARGS[5], Reg::R9);
    }
}
