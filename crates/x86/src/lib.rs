//! x86-64 machine-code model.
//!
//! B-Side's analyses operate on disassembled machine code (§4.3 of the
//! paper). This crate is the workspace's equivalent of the Capstone/angr
//! disassembly layer plus the assembler used by the synthetic-binary
//! generator:
//!
//! * [`Reg`], [`Mem`], [`Operand`], [`Op`], [`Instruction`] — the
//!   instruction IR shared by every analysis;
//! * [`decode`]/[`decode_all`] — a decoder for the instruction subset
//!   emitted by mainstream compilers (and by our own code generator);
//! * [`Assembler`] — an encoder with label/fixup support, used by
//!   `bside-gen` to produce test binaries; encoder output always decodes
//!   back to the same instruction (see the round-trip property tests);
//! * [`interp`] — a concrete interpreter that executes decoded code and
//!   records the system calls actually invoked. The evaluation uses it the
//!   way the paper uses `strace` over test suites: to establish a dynamic
//!   ground truth (§5.1).
//!
//! # Examples
//!
//! ```
//! use bside_x86::{Assembler, Reg, decode_all};
//!
//! let mut asm = Assembler::new(0x1000);
//! asm.mov_reg_imm32(Reg::Rax, 60); // exit
//! asm.syscall();
//! let code = asm.finish().unwrap();
//!
//! let insns = decode_all(&code, 0x1000);
//! assert_eq!(insns.len(), 2);
//! assert_eq!(insns[0].to_string(), "mov rax, 0x3c");
//! assert_eq!(insns[1].to_string(), "syscall");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decode;
mod encode;
mod insn;
pub mod interp;
mod reg;

pub use decode::{decode, decode_all, DecodeError};
pub use encode::{AsmError, Assembler, Label};
pub use insn::{Cond, Instruction, Mem, Op, Operand, Target};
pub use reg::Reg;
