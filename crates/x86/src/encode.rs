//! x86-64 encoder with label/fixup support.
//!
//! All data-moving instructions are emitted with 64-bit operand size
//! (REX.W), matching the canonical shapes compilers produce for the code
//! patterns the B-Side analyses care about. `mov reg, imm32` uses the
//! sign-extending `C7 /0` form, the shape used to load system call numbers.

use crate::insn::Mem;
use crate::Reg;
use std::collections::HashMap;
use std::fmt;

/// A code location that can be referenced before it is bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors reported by [`Assembler::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmError {
    /// A referenced label was never bound.
    UnboundLabel(Label),
    /// A relative displacement does not fit in 32 bits.
    RelOutOfRange {
        /// Where the reference is.
        at: u64,
        /// The address being referenced.
        target: u64,
    },
    /// A label was bound twice.
    DoubleBind(Label),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {l:?} was never bound"),
            AsmError::RelOutOfRange { at, target } => {
                write!(f, "target {target:#x} out of rel32 range from {at:#x}")
            }
            AsmError::DoubleBind(l) => write!(f, "label {l:?} bound twice"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy)]
struct Fixup {
    /// Offset of the 4 displacement bytes within the buffer.
    patch_at: usize,
    /// Displacement is relative to the end of this instruction.
    insn_end: usize,
    label: Label,
}

/// An x86-64 assembler.
///
/// Emission methods append one instruction each; control-flow and
/// address-forming methods take [`Label`]s which are patched during
/// [`Assembler::finish`].
///
/// # Examples
///
/// ```
/// use bside_x86::{Assembler, Reg};
///
/// let mut asm = Assembler::new(0x1000);
/// let skip = asm.new_label();
/// asm.xor_reg_reg(Reg::Rax, Reg::Rax);
/// asm.jmp_label(skip);
/// asm.mov_reg_imm32(Reg::Rax, 1); // skipped
/// asm.bind(skip).unwrap();
/// asm.ret();
/// let code = asm.finish().unwrap();
/// assert!(!code.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Assembler {
    base: u64,
    buf: Vec<u8>,
    labels: Vec<Option<u64>>, // absolute addresses once bound
    fixups: Vec<Fixup>,
    bound_names: HashMap<String, Label>,
}

impl Assembler {
    /// Creates an assembler whose first emitted byte lives at `base`.
    pub fn new(base: u64) -> Self {
        Assembler {
            base,
            buf: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            bound_names: HashMap::new(),
        }
    }

    /// The address of the next instruction to be emitted.
    pub fn cursor(&self) -> u64 {
        self.base + self.buf.len() as u64
    }

    /// Number of bytes emitted so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Creates or retrieves a label by name (convenient for codegen that
    /// works with symbolic function names).
    pub fn named_label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.bound_names.get(name) {
            return l;
        }
        let l = self.new_label();
        self.bound_names.insert(name.to_string(), l);
        l
    }

    /// Binds `label` to the current cursor.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DoubleBind`] if already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        self.bind_at(label, self.cursor())
    }

    /// Binds `label` to an arbitrary absolute address (e.g. a GOT slot or
    /// a `.rodata` object that lives outside the code being assembled).
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DoubleBind`] if already bound.
    pub fn bind_at(&mut self, label: Label, addr: u64) -> Result<(), AsmError> {
        let slot = &mut self.labels[label.0];
        if slot.is_some() {
            return Err(AsmError::DoubleBind(label));
        }
        *slot = Some(addr);
        Ok(())
    }

    /// Resolves fixups and returns the encoded bytes.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] if any referenced label is unbound or a
    /// displacement overflows.
    pub fn finish(mut self) -> Result<Vec<u8>, AsmError> {
        for fixup in &self.fixups {
            let target = self.labels[fixup.label.0].ok_or(AsmError::UnboundLabel(fixup.label))?;
            let from = self.base + fixup.insn_end as u64;
            let rel = target.wrapping_sub(from) as i64;
            let rel32 = i32::try_from(rel).map_err(|_| AsmError::RelOutOfRange {
                at: self.base + fixup.patch_at as u64,
                target,
            })?;
            self.buf[fixup.patch_at..fixup.patch_at + 4].copy_from_slice(&rel32.to_le_bytes());
        }
        Ok(self.buf)
    }

    // ---- raw emission helpers ------------------------------------------------

    fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    fn bytes(&mut self, bs: &[u8]) {
        self.buf.extend_from_slice(bs);
    }

    fn imm32(&mut self, v: i32) {
        self.bytes(&v.to_le_bytes());
    }

    /// REX prefix with W=1. `r` is the reg field register (or None), `b`
    /// the rm/base register, `x` the index register.
    fn rex_w(&mut self, r: Option<Reg>, x: Option<Reg>, b: Option<Reg>) {
        let mut rex = 0x48u8;
        if r.is_some_and(|r| r.needs_rex()) {
            rex |= 0x4;
        }
        if x.is_some_and(|x| x.needs_rex()) {
            rex |= 0x2;
        }
        if b.is_some_and(|b| b.needs_rex()) {
            rex |= 0x1;
        }
        self.byte(rex);
    }

    /// ModRM byte with two registers: `reg` field and `rm` field.
    fn modrm_rr(&mut self, reg_field: u8, rm: Reg) {
        self.byte(0xc0 | (reg_field & 7) << 3 | rm.low3());
    }

    /// ModRM (+SIB, +disp) for a memory operand. Returns the fixup slot
    /// offset if the operand is RIP-relative with a pending label.
    fn modrm_mem(&mut self, reg_field: u8, mem: Mem) {
        let reg_bits = (reg_field & 7) << 3;
        if mem.rip_relative {
            self.byte(reg_bits | 0b101); // mod=00, rm=101 → [rip+disp32]
            self.imm32(mem.disp);
            return;
        }
        match (mem.base, mem.index) {
            (None, None) => {
                // Absolute: mod=00, rm=100 (SIB), SIB base=101 index=100.
                self.byte(reg_bits | 0b100);
                self.byte(0x25);
                self.imm32(mem.disp);
            }
            (Some(base), None) => {
                let needs_sib = base.low3() == 0b100; // rsp/r12
                let force_disp8 = base.low3() == 0b101; // rbp/r13 need disp
                let (modbits, disp8) = if mem.disp == 0 && !force_disp8 {
                    (0x00u8, false)
                } else if i8::try_from(mem.disp).is_ok() {
                    (0x40, true)
                } else {
                    (0x80, false)
                };
                if needs_sib {
                    self.byte(modbits | reg_bits | 0b100);
                    self.byte(0x24); // SIB: scale=0 index=100(none) base=rsp
                } else {
                    self.byte(modbits | reg_bits | base.low3());
                }
                if modbits == 0x40 {
                    debug_assert!(disp8);
                    self.byte(mem.disp as i8 as u8);
                } else if modbits == 0x80 {
                    self.imm32(mem.disp);
                }
            }
            (base, Some((index, scale))) => {
                assert!(index != Reg::Rsp, "rsp cannot be an index register");
                let ss = match scale {
                    1 => 0u8,
                    2 => 1,
                    4 => 2,
                    8 => 3,
                    other => panic!("invalid scale {other}"),
                };
                let (modbits, base_bits) = match base {
                    Some(b) => {
                        let force_disp = b.low3() == 0b101;
                        let m = if mem.disp == 0 && !force_disp {
                            0x00u8
                        } else if i8::try_from(mem.disp).is_ok() {
                            0x40
                        } else {
                            0x80
                        };
                        (m, b.low3())
                    }
                    None => (0x00u8, 0b101), // disp32, no base
                };
                self.byte(modbits | reg_bits | 0b100);
                self.byte(ss << 6 | index.low3() << 3 | base_bits);
                match (modbits, base) {
                    (0x00, None) => self.imm32(mem.disp),
                    (0x40, _) => self.byte(mem.disp as i8 as u8),
                    (0x80, _) => self.imm32(mem.disp),
                    _ => {}
                }
            }
        }
    }

    fn mem_regs(mem: Mem) -> (Option<Reg>, Option<Reg>) {
        (mem.index.map(|(r, _)| r), mem.base)
    }

    /// Records a fixup for the previous 4 bytes (which must be a
    /// placeholder displacement) against `label`.
    fn fixup_last4(&mut self, label: Label) {
        self.fixups.push(Fixup {
            patch_at: self.buf.len() - 4,
            insn_end: self.buf.len(),
            label,
        });
    }

    // ---- data movement ---------------------------------------------------------

    /// `mov reg, imm32` (sign-extended, `REX.W C7 /0`). The canonical way
    /// a compiler loads a system call number.
    pub fn mov_reg_imm32(&mut self, dst: Reg, imm: i32) {
        self.rex_w(None, None, Some(dst));
        self.byte(0xc7);
        self.modrm_rr(0, dst);
        self.imm32(imm);
    }

    /// `movabs reg, imm64`.
    pub fn mov_reg_imm64(&mut self, dst: Reg, imm: u64) {
        self.rex_w(None, None, Some(dst));
        self.byte(0xb8 + dst.low3());
        self.bytes(&imm.to_le_bytes());
    }

    /// `mov dst, src` between registers.
    pub fn mov_reg_reg(&mut self, dst: Reg, src: Reg) {
        self.rex_w(Some(src), None, Some(dst));
        self.byte(0x89);
        self.modrm_rr(src.low3(), dst);
    }

    /// `mov dst, [mem]`.
    pub fn mov_reg_mem(&mut self, dst: Reg, mem: Mem) {
        let (x, b) = Self::mem_regs(mem);
        self.rex_w(Some(dst), x, b);
        self.byte(0x8b);
        self.modrm_mem(dst.low3(), mem);
    }

    /// `mov [mem], src`.
    pub fn mov_mem_reg(&mut self, mem: Mem, src: Reg) {
        let (x, b) = Self::mem_regs(mem);
        self.rex_w(Some(src), x, b);
        self.byte(0x89);
        self.modrm_mem(src.low3(), mem);
    }

    /// `mov qword [mem], imm32` (sign-extended).
    pub fn mov_mem_imm32(&mut self, mem: Mem, imm: i32) {
        let (x, b) = Self::mem_regs(mem);
        self.rex_w(None, x, b);
        self.byte(0xc7);
        self.modrm_mem(0, mem);
        self.imm32(imm);
    }

    /// `mov dst, [rip + label]` — PC-relative load from a labelled
    /// location.
    pub fn mov_reg_riplabel(&mut self, dst: Reg, label: Label) {
        self.rex_w(Some(dst), None, None);
        self.byte(0x8b);
        self.byte((dst.low3() << 3) | 0b101);
        self.imm32(0);
        self.fixup_last4(label);
    }

    /// `lea dst, [mem]`.
    pub fn lea(&mut self, dst: Reg, mem: Mem) {
        let (x, b) = Self::mem_regs(mem);
        self.rex_w(Some(dst), x, b);
        self.byte(0x8d);
        self.modrm_mem(dst.low3(), mem);
    }

    /// `lea dst, [rip + label]` — the *address taken* shape the CFG
    /// heuristic of §4.3 looks for.
    pub fn lea_riplabel(&mut self, dst: Reg, label: Label) {
        self.rex_w(Some(dst), None, None);
        self.byte(0x8d);
        self.byte((dst.low3() << 3) | 0b101);
        self.imm32(0);
        self.fixup_last4(label);
    }

    /// `push reg`.
    pub fn push_reg(&mut self, reg: Reg) {
        if reg.needs_rex() {
            self.byte(0x41);
        }
        self.byte(0x50 + reg.low3());
    }

    /// `push imm32`.
    pub fn push_imm32(&mut self, imm: i32) {
        self.byte(0x68);
        self.imm32(imm);
    }

    /// `pop reg`.
    pub fn pop_reg(&mut self, reg: Reg) {
        if reg.needs_rex() {
            self.byte(0x41);
        }
        self.byte(0x58 + reg.low3());
    }

    // ---- arithmetic / logic ------------------------------------------------------

    fn alu_reg_reg(&mut self, opcode: u8, dst: Reg, src: Reg) {
        self.rex_w(Some(src), None, Some(dst));
        self.byte(opcode);
        self.modrm_rr(src.low3(), dst);
    }

    fn alu_reg_imm32(&mut self, ext: u8, dst: Reg, imm: i32) {
        self.rex_w(None, None, Some(dst));
        self.byte(0x81);
        self.modrm_rr(ext, dst);
        self.imm32(imm);
    }

    /// `add dst, src`.
    pub fn add_reg_reg(&mut self, dst: Reg, src: Reg) {
        self.alu_reg_reg(0x01, dst, src);
    }

    /// `add dst, imm32`.
    pub fn add_reg_imm32(&mut self, dst: Reg, imm: i32) {
        self.alu_reg_imm32(0, dst, imm);
    }

    /// `sub dst, src`.
    pub fn sub_reg_reg(&mut self, dst: Reg, src: Reg) {
        self.alu_reg_reg(0x29, dst, src);
    }

    /// `sub dst, imm32`.
    pub fn sub_reg_imm32(&mut self, dst: Reg, imm: i32) {
        self.alu_reg_imm32(5, dst, imm);
    }

    /// `xor dst, src` (`xor r, r` is the canonical zeroing idiom, tracked
    /// by the Chestnut baseline).
    pub fn xor_reg_reg(&mut self, dst: Reg, src: Reg) {
        self.alu_reg_reg(0x31, dst, src);
    }

    /// `and dst, imm32`.
    pub fn and_reg_imm32(&mut self, dst: Reg, imm: i32) {
        self.alu_reg_imm32(4, dst, imm);
    }

    /// `or dst, src`.
    pub fn or_reg_reg(&mut self, dst: Reg, src: Reg) {
        self.alu_reg_reg(0x09, dst, src);
    }

    /// `cmp a, b` (registers).
    pub fn cmp_reg_reg(&mut self, a: Reg, b: Reg) {
        self.alu_reg_reg(0x39, a, b);
    }

    /// `cmp reg, imm32`.
    pub fn cmp_reg_imm32(&mut self, a: Reg, imm: i32) {
        self.alu_reg_imm32(7, a, imm);
    }

    /// `test a, b` (registers).
    pub fn test_reg_reg(&mut self, a: Reg, b: Reg) {
        self.rex_w(Some(b), None, Some(a));
        self.byte(0x85);
        self.modrm_rr(b.low3(), a);
    }

    // ---- control flow ---------------------------------------------------------------

    /// `call label` (rel32).
    pub fn call_label(&mut self, label: Label) {
        self.byte(0xe8);
        self.imm32(0);
        self.fixup_last4(label);
    }

    /// `call reg`.
    pub fn call_reg(&mut self, reg: Reg) {
        if reg.needs_rex() {
            self.byte(0x41);
        }
        self.byte(0xff);
        self.modrm_rr(2, reg);
    }

    /// `call [mem]`.
    pub fn call_mem(&mut self, mem: Mem) {
        let (x, b) = Self::mem_regs(mem);
        if x.is_some_and(|r| r.needs_rex()) || b.is_some_and(|r| r.needs_rex()) {
            let mut rex = 0x40u8;
            if x.is_some_and(|r| r.needs_rex()) {
                rex |= 2;
            }
            if b.is_some_and(|r| r.needs_rex()) {
                rex |= 1;
            }
            self.byte(rex);
        }
        self.byte(0xff);
        self.modrm_mem(2, mem);
    }

    /// `call [rip + label]` — the PLT-stub shape for imported functions.
    pub fn call_riplabel(&mut self, label: Label) {
        self.byte(0xff);
        self.byte((2 << 3) | 0b101);
        self.imm32(0);
        self.fixup_last4(label);
    }

    /// `jmp label` (rel32).
    pub fn jmp_label(&mut self, label: Label) {
        self.byte(0xe9);
        self.imm32(0);
        self.fixup_last4(label);
    }

    /// `jmp reg`.
    pub fn jmp_reg(&mut self, reg: Reg) {
        if reg.needs_rex() {
            self.byte(0x41);
        }
        self.byte(0xff);
        self.modrm_rr(4, reg);
    }

    /// `jmp [rip + label]` — the classic PLT stub (`jmpq *GOT(sym)`).
    pub fn jmp_riplabel(&mut self, label: Label) {
        self.byte(0xff);
        self.byte((4 << 3) | 0b101);
        self.imm32(0);
        self.fixup_last4(label);
    }

    /// `jcc label` (rel32 form, `0F 8x`).
    pub fn jcc_label(&mut self, cond: crate::Cond, label: Label) {
        self.byte(0x0f);
        self.byte(0x80 | cond.code());
        self.imm32(0);
        self.fixup_last4(label);
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.byte(0xc3);
    }

    /// `syscall`.
    pub fn syscall(&mut self) {
        self.bytes(&[0x0f, 0x05]);
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.byte(0x90);
    }

    /// `endbr64`.
    pub fn endbr64(&mut self) {
        self.bytes(&[0xf3, 0x0f, 0x1e, 0xfa]);
    }

    /// `int3`.
    pub fn int3(&mut self) {
        self.byte(0xcc);
    }

    /// `ud2`.
    pub fn ud2(&mut self) {
        self.bytes(&[0x0f, 0x0b]);
    }

    /// `hlt`.
    pub fn hlt(&mut self) {
        self.byte(0xf4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cond;

    #[test]
    fn mov_imm32_encoding_matches_gas() {
        // mov rax, 60  →  48 c7 c0 3c 00 00 00
        let mut a = Assembler::new(0);
        a.mov_reg_imm32(Reg::Rax, 60);
        assert_eq!(a.finish().unwrap(), vec![0x48, 0xc7, 0xc0, 0x3c, 0, 0, 0]);
    }

    #[test]
    fn syscall_encoding() {
        let mut a = Assembler::new(0);
        a.syscall();
        assert_eq!(a.finish().unwrap(), vec![0x0f, 0x05]);
    }

    #[test]
    fn labels_patch_forward_and_backward() {
        let mut a = Assembler::new(0x1000);
        let top = a.new_label();
        a.bind(top).unwrap();
        a.nop();
        let fwd = a.new_label();
        a.jmp_label(fwd); // at 0x1001, 5 bytes, ends 0x1006
        a.jmp_label(top); // at 0x1006, 5 bytes, ends 0x100b → rel = -0xb
        a.bind(fwd).unwrap(); // 0x100b
        a.ret();
        let code = a.finish().unwrap();
        // First jmp: target 0x100b - end 0x1006 = 5.
        assert_eq!(&code[1..6], &[0xe9, 5, 0, 0, 0]);
        // Second jmp: target 0x1000 - end 0x100b = -11.
        assert_eq!(&code[6..11], &[0xe9, 0xf5, 0xff, 0xff, 0xff]);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Assembler::new(0);
        let l = a.new_label();
        a.jmp_label(l);
        assert!(matches!(a.finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn double_bind_is_an_error() {
        let mut a = Assembler::new(0);
        let l = a.new_label();
        a.bind(l).unwrap();
        assert!(matches!(a.bind(l), Err(AsmError::DoubleBind(_))));
    }

    #[test]
    fn bind_at_external_address() {
        let mut a = Assembler::new(0x1000);
        let got = a.new_label();
        a.bind_at(got, 0x3000).unwrap();
        a.jmp_riplabel(got); // 6 bytes, ends 0x1006 → disp 0x1ffa
        let code = a.finish().unwrap();
        assert_eq!(code[..2], [0xff, 0x25]);
        assert_eq!(i32::from_le_bytes(code[2..6].try_into().unwrap()), 0x1ffa);
    }

    #[test]
    fn named_labels_are_interned() {
        let mut a = Assembler::new(0);
        let l1 = a.named_label("f");
        let l2 = a.named_label("f");
        assert_eq!(l1, l2);
        assert_ne!(a.named_label("g"), l1);
    }

    #[test]
    fn jcc_encodes_condition() {
        let mut a = Assembler::new(0);
        let l = a.new_label();
        a.jcc_label(Cond::Ne, l);
        a.bind(l).unwrap();
        let code = a.finish().unwrap();
        assert_eq!(code[..2], [0x0f, 0x85]);
    }
}
