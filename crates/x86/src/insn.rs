//! Instruction IR: operands, operations, and decoded instructions.

use crate::Reg;
use std::fmt;

/// A memory operand: `[base + index*scale + disp]` or `[rip + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register and scale (1/2/4/8), if any.
    pub index: Option<(Reg, u8)>,
    /// Signed displacement.
    pub disp: i32,
    /// `true` for RIP-relative addressing; `base`/`index` are then `None`.
    pub rip_relative: bool,
}

impl Mem {
    /// `[base + disp]`.
    pub fn base_disp(base: Reg, disp: i32) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            disp,
            rip_relative: false,
        }
    }

    /// `[rip + disp]` — the position-independent form compilers emit for
    /// globals and GOT slots.
    pub fn rip(disp: i32) -> Mem {
        Mem {
            base: None,
            index: None,
            disp,
            rip_relative: true,
        }
    }

    /// Absolute displacement with no registers: `[disp]`.
    pub fn absolute(disp: i32) -> Mem {
        Mem {
            base: None,
            index: None,
            disp,
            rip_relative: false,
        }
    }

    /// For a RIP-relative operand decoded at `addr` with length `len`,
    /// the absolute target address.
    pub fn rip_target(&self, insn_addr: u64, insn_len: u8) -> Option<u64> {
        self.rip_relative.then(|| {
            insn_addr
                .wrapping_add(insn_len as u64)
                .wrapping_add(self.disp as i64 as u64)
        })
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        let mut wrote = false;
        if self.rip_relative {
            f.write_str("rip")?;
            wrote = true;
        }
        if let Some(base) = self.base {
            write!(f, "{base}")?;
            wrote = true;
        }
        if let Some((index, scale)) = self.index {
            if wrote {
                f.write_str(" + ")?;
            }
            write!(f, "{index}*{scale}")?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                if self.disp >= 0 {
                    write!(f, " + {:#x}", self.disp)?;
                } else {
                    write!(f, " - {:#x}", -(self.disp as i64))?;
                }
            } else {
                write!(f, "{:#x}", self.disp)?;
            }
        }
        f.write_str("]")
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// A memory location.
    Mem(Mem),
    /// An immediate (sign-extended to 64 bits).
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Mem(m) => write!(f, "{m}"),
            Operand::Imm(i) => {
                if *i >= 0 {
                    write!(f, "{i:#x}")
                } else {
                    write!(f, "-{:#x}", -i)
                }
            }
        }
    }
}

/// A control-transfer target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Relative displacement from the end of the instruction.
    Rel(i32),
    /// Indirect through a register.
    Reg(Reg),
    /// Indirect through memory.
    Mem(Mem),
}

/// Condition codes for `jcc` (the subset compilers commonly emit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// ZF = 1 (`je`).
    E,
    /// ZF = 0 (`jne`).
    Ne,
    /// SF ≠ OF (`jl`).
    L,
    /// ZF = 1 or SF ≠ OF (`jle`).
    Le,
    /// ZF = 0 and SF = OF (`jg`).
    G,
    /// SF = OF (`jge`).
    Ge,
    /// CF = 1 (`jb`).
    B,
    /// CF = 1 or ZF = 1 (`jbe`).
    Be,
    /// CF = 0 (`jae`).
    Ae,
    /// CF = 0 and ZF = 0 (`ja`).
    A,
    /// SF = 1 (`js`).
    S,
    /// SF = 0 (`jns`).
    Ns,
}

impl Cond {
    /// The low nibble of the `0x0F 0x8x` / `0x7x` opcode.
    pub(crate) fn code(self) -> u8 {
        match self {
            Cond::E => 0x4,
            Cond::Ne => 0x5,
            Cond::L => 0xc,
            Cond::Le => 0xe,
            Cond::G => 0xf,
            Cond::Ge => 0xd,
            Cond::B => 0x2,
            Cond::Be => 0x6,
            Cond::Ae => 0x3,
            Cond::A => 0x7,
            Cond::S => 0x8,
            Cond::Ns => 0x9,
        }
    }

    /// Inverse mapping of [`Cond::code`].
    pub(crate) fn from_code(code: u8) -> Option<Cond> {
        Some(match code {
            0x4 => Cond::E,
            0x5 => Cond::Ne,
            0xc => Cond::L,
            0xe => Cond::Le,
            0xf => Cond::G,
            0xd => Cond::Ge,
            0x2 => Cond::B,
            0x6 => Cond::Be,
            0x3 => Cond::Ae,
            0x7 => Cond::A,
            0x8 => Cond::S,
            0x9 => Cond::Ns,
            _ => return None,
        })
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::L => "l",
            Cond::Le => "le",
            Cond::G => "g",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::Ae => "ae",
            Cond::A => "a",
            Cond::S => "s",
            Cond::Ns => "ns",
        };
        f.write_str(s)
    }
}

/// The operation performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `mov dst, src` (64-bit unless noted; `MovImm64` is `movabs`).
    Mov {
        /// Destination operand (register or memory).
        dst: Operand,
        /// Source operand.
        src: Operand,
    },
    /// `movabs reg, imm64`.
    MovImm64 {
        /// Destination register.
        dst: Reg,
        /// Full 64-bit immediate.
        imm: u64,
    },
    /// `lea dst, [addr]`.
    Lea {
        /// Destination register.
        dst: Reg,
        /// Effective-address expression.
        addr: Mem,
    },
    /// `push src`.
    Push(Operand),
    /// `pop dst`.
    Pop(Reg),
    /// `add dst, src`.
    Add {
        /// Destination operand.
        dst: Operand,
        /// Source operand.
        src: Operand,
    },
    /// `sub dst, src`.
    Sub {
        /// Destination operand.
        dst: Operand,
        /// Source operand.
        src: Operand,
    },
    /// `xor dst, src`.
    Xor {
        /// Destination operand.
        dst: Operand,
        /// Source operand.
        src: Operand,
    },
    /// `and dst, src`.
    And {
        /// Destination operand.
        dst: Operand,
        /// Source operand.
        src: Operand,
    },
    /// `or dst, src`.
    Or {
        /// Destination operand.
        dst: Operand,
        /// Source operand.
        src: Operand,
    },
    /// `cmp a, b` (sets flags, no write-back).
    Cmp {
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `test a, b` (flags from `a & b`).
    Test {
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `call target`.
    Call(Target),
    /// `jmp target`.
    Jmp(Target),
    /// `jcc rel32`.
    Jcc(Cond, i32),
    /// `ret`.
    Ret,
    /// `syscall` — the instruction every identification analysis anchors
    /// on (§2.4).
    Syscall,
    /// `nop` (any encoding length).
    Nop,
    /// `endbr64` (CET landing pad; a no-op for analysis).
    Endbr64,
    /// `int3` breakpoint / padding.
    Int3,
    /// `ud2` trap.
    Ud2,
    /// `hlt`.
    Hlt,
}

/// A decoded instruction: where it is, how long it is, and what it does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Virtual address of the first byte.
    pub addr: u64,
    /// Encoded length in bytes.
    pub len: u8,
    /// The decoded operation.
    pub op: Op,
}

impl Instruction {
    /// Address of the next sequential instruction.
    pub fn end(&self) -> u64 {
        self.addr + self.len as u64
    }

    /// For `call`/`jmp`/`jcc` with a relative target, the absolute
    /// destination address.
    pub fn branch_target(&self) -> Option<u64> {
        let rel = match self.op {
            Op::Call(Target::Rel(r)) | Op::Jmp(Target::Rel(r)) | Op::Jcc(_, r) => r,
            _ => return None,
        };
        Some(self.end().wrapping_add(rel as i64 as u64))
    }

    /// `true` if control cannot fall through to the next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(self.op, Op::Ret | Op::Jmp(_) | Op::Ud2 | Op::Hlt)
    }

    /// `true` for any control-flow instruction (including calls).
    pub fn is_control_flow(&self) -> bool {
        matches!(self.op, Op::Call(_) | Op::Jmp(_) | Op::Jcc(..) | Op::Ret)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.op {
            Op::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Op::MovImm64 { dst, imm } => write!(f, "movabs {dst}, {imm:#x}"),
            Op::Lea { dst, addr } => write!(f, "lea {dst}, {addr}"),
            Op::Push(src) => write!(f, "push {src}"),
            Op::Pop(dst) => write!(f, "pop {dst}"),
            Op::Add { dst, src } => write!(f, "add {dst}, {src}"),
            Op::Sub { dst, src } => write!(f, "sub {dst}, {src}"),
            Op::Xor { dst, src } => write!(f, "xor {dst}, {src}"),
            Op::And { dst, src } => write!(f, "and {dst}, {src}"),
            Op::Or { dst, src } => write!(f, "or {dst}, {src}"),
            Op::Cmp { a, b } => write!(f, "cmp {a}, {b}"),
            Op::Test { a, b } => write!(f, "test {a}, {b}"),
            Op::Call(Target::Rel(_)) => {
                write!(f, "call {:#x}", self.branch_target().expect("rel"))
            }
            Op::Call(Target::Reg(r)) => write!(f, "call {r}"),
            Op::Call(Target::Mem(m)) => write!(f, "call {m}"),
            Op::Jmp(Target::Rel(_)) => {
                write!(f, "jmp {:#x}", self.branch_target().expect("rel"))
            }
            Op::Jmp(Target::Reg(r)) => write!(f, "jmp {r}"),
            Op::Jmp(Target::Mem(m)) => write!(f, "jmp {m}"),
            Op::Jcc(cond, _) => {
                write!(f, "j{cond} {:#x}", self.branch_target().expect("rel"))
            }
            Op::Ret => f.write_str("ret"),
            Op::Syscall => f.write_str("syscall"),
            Op::Nop => f.write_str("nop"),
            Op::Endbr64 => f.write_str("endbr64"),
            Op::Int3 => f.write_str("int3"),
            Op::Ud2 => f.write_str("ud2"),
            Op::Hlt => f.write_str("hlt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_target_forward_and_backward() {
        let fwd = Instruction {
            addr: 0x1000,
            len: 5,
            op: Op::Call(Target::Rel(0x10)),
        };
        assert_eq!(fwd.branch_target(), Some(0x1015));
        let bwd = Instruction {
            addr: 0x1000,
            len: 2,
            op: Op::Jmp(Target::Rel(-4)),
        };
        assert_eq!(bwd.branch_target(), Some(0xffe));
    }

    #[test]
    fn non_branches_have_no_target() {
        let i = Instruction {
            addr: 0,
            len: 1,
            op: Op::Ret,
        };
        assert_eq!(i.branch_target(), None);
        let i = Instruction {
            addr: 0,
            len: 2,
            op: Op::Jmp(Target::Reg(Reg::Rax)),
        };
        assert_eq!(i.branch_target(), None, "indirect targets are unknown");
    }

    #[test]
    fn terminators() {
        for op in [Op::Ret, Op::Jmp(Target::Rel(0)), Op::Ud2, Op::Hlt] {
            assert!(Instruction {
                addr: 0,
                len: 1,
                op
            }
            .is_terminator());
        }
        for op in [Op::Syscall, Op::Call(Target::Rel(0)), Op::Jcc(Cond::E, 0)] {
            assert!(!Instruction {
                addr: 0,
                len: 1,
                op
            }
            .is_terminator());
        }
    }

    #[test]
    fn rip_target_resolution() {
        let m = Mem::rip(0x200);
        assert_eq!(m.rip_target(0x1000, 7), Some(0x1207));
        assert_eq!(Mem::base_disp(Reg::Rax, 0).rip_target(0x1000, 7), None);
    }

    #[test]
    fn display_formats() {
        let i = Instruction {
            addr: 0x10,
            len: 4,
            op: Op::Mov {
                dst: Operand::Reg(Reg::Rax),
                src: Operand::Mem(Mem::base_disp(Reg::Rsp, 8)),
            },
        };
        assert_eq!(i.to_string(), "mov rax, [rsp + 0x8]");
        let i = Instruction {
            addr: 0x10,
            len: 7,
            op: Op::Mov {
                dst: Operand::Reg(Reg::Rbx),
                src: Operand::Mem(Mem::base_disp(Reg::Rbp, -16)),
            },
        };
        assert_eq!(i.to_string(), "mov rbx, [rbp - 0x10]");
    }

    #[test]
    fn cond_code_round_trip() {
        for cond in [
            Cond::E,
            Cond::Ne,
            Cond::L,
            Cond::Le,
            Cond::G,
            Cond::Ge,
            Cond::B,
            Cond::Be,
            Cond::Ae,
            Cond::A,
            Cond::S,
            Cond::Ns,
        ] {
            assert_eq!(Cond::from_code(cond.code()), Some(cond));
        }
    }
}
