//! x86-64 decoder for the compiler-emitted instruction subset.
//!
//! Covers everything [`crate::Assembler`] can produce, plus the common
//! variants real compilers emit for the same operations (e.g. the
//! `B8+r imm32` form of loading a system call number, `83 /n imm8`
//! arithmetic, rel8 jumps, multi-byte NOPs).

use crate::insn::{Cond, Instruction, Mem, Op, Operand, Target};
use crate::Reg;
use std::fmt;

/// Errors produced by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The byte stream ended mid-instruction.
    Truncated {
        /// Address of the instruction being decoded.
        addr: u64,
    },
    /// The opcode byte is outside the supported subset.
    UnknownOpcode {
        /// Address of the instruction.
        addr: u64,
        /// The offending opcode byte.
        opcode: u8,
    },
    /// A ModRM/extension combination outside the supported subset.
    UnsupportedForm {
        /// Address of the instruction.
        addr: u64,
        /// The opcode byte.
        opcode: u8,
        /// The ModRM byte.
        modrm: u8,
    },
}

impl DecodeError {
    /// The address at which decoding failed.
    pub fn addr(&self) -> u64 {
        match *self {
            DecodeError::Truncated { addr }
            | DecodeError::UnknownOpcode { addr, .. }
            | DecodeError::UnsupportedForm { addr, .. } => addr,
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { addr } => write!(f, "truncated instruction at {addr:#x}"),
            DecodeError::UnknownOpcode { addr, opcode } => {
                write!(f, "unknown opcode {opcode:#04x} at {addr:#x}")
            }
            DecodeError::UnsupportedForm {
                addr,
                opcode,
                modrm,
            } => write!(
                f,
                "unsupported form opcode={opcode:#04x} modrm={modrm:#04x} at {addr:#x}"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    addr: u64,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(DecodeError::Truncated { addr: self.addr })?;
        self.pos += 1;
        Ok(b)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn i8(&mut self) -> Result<i8, DecodeError> {
        Ok(self.u8()? as i8)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let mut v = [0u8; 4];
        for b in &mut v {
            *b = self.u8()?;
        }
        Ok(i32::from_le_bytes(v))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut v = [0u8; 8];
        for b in &mut v {
            *b = self.u8()?;
        }
        Ok(u64::from_le_bytes(v))
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Rex {
    w: bool,
    r: bool,
    x: bool,
    b: bool,
}

/// Decoded ModRM: the `reg` field value and the r/m operand.
struct ModRm {
    reg_field: u8,
    rm: Operand,
    raw: u8,
}

fn decode_modrm(cur: &mut Cursor<'_>, rex: Rex) -> Result<ModRm, DecodeError> {
    let modrm = cur.u8()?;
    let mode = modrm >> 6;
    let reg_field = ((modrm >> 3) & 7) | if rex.r { 8 } else { 0 };
    let rm_bits = modrm & 7;

    if mode == 0b11 {
        let reg = Reg::from_number(rm_bits | if rex.b { 8 } else { 0 });
        return Ok(ModRm {
            reg_field,
            rm: Operand::Reg(reg),
            raw: modrm,
        });
    }

    // Memory forms.
    let mut mem = Mem {
        base: None,
        index: None,
        disp: 0,
        rip_relative: false,
    };
    if rm_bits == 0b100 {
        // SIB byte.
        let sib = cur.u8()?;
        let scale = 1u8 << (sib >> 6);
        let index_bits = ((sib >> 3) & 7) | if rex.x { 8 } else { 0 };
        let base_bits = (sib & 7) | if rex.b { 8 } else { 0 };
        if index_bits != 0b100 {
            mem.index = Some((Reg::from_number(index_bits), scale));
        }
        if (sib & 7) == 0b101 && mode == 0b00 {
            // disp32, no base.
            mem.disp = cur.i32()?;
            return Ok(ModRm {
                reg_field,
                rm: Operand::Mem(mem),
                raw: modrm,
            });
        }
        mem.base = Some(Reg::from_number(base_bits));
    } else if rm_bits == 0b101 && mode == 0b00 {
        // RIP-relative.
        mem.rip_relative = true;
        mem.disp = cur.i32()?;
        return Ok(ModRm {
            reg_field,
            rm: Operand::Mem(mem),
            raw: modrm,
        });
    } else {
        mem.base = Some(Reg::from_number(rm_bits | if rex.b { 8 } else { 0 }));
    }

    match mode {
        0b00 => {}
        0b01 => mem.disp = cur.i8()? as i32,
        0b10 => mem.disp = cur.i32()?,
        _ => unreachable!(),
    }
    Ok(ModRm {
        reg_field,
        rm: Operand::Mem(mem),
        raw: modrm,
    })
}

/// Decodes a single instruction at `addr` from `bytes` (which must start
/// at the instruction's first byte).
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation or bytes outside the supported
/// subset — the analyses treat such addresses as opaque (§4.1 assumes a
/// robust disassembler; our corpus is fully in-subset by construction).
pub fn decode(bytes: &[u8], addr: u64) -> Result<Instruction, DecodeError> {
    let mut cur = Cursor {
        bytes,
        pos: 0,
        addr,
    };
    let mut rex = Rex::default();
    let mut f3 = false;

    // Prefixes.
    loop {
        match cur.peek() {
            Some(0xf3) => {
                f3 = true;
                cur.u8()?;
            }
            Some(b) if (0x40..=0x4f).contains(&b) => {
                cur.u8()?;
                rex = Rex {
                    w: b & 8 != 0,
                    r: b & 4 != 0,
                    x: b & 2 != 0,
                    b: b & 1 != 0,
                };
            }
            _ => break,
        }
    }

    let opcode = cur.u8()?;
    let op = match opcode {
        0x0f => {
            let op2 = cur.u8()?;
            match op2 {
                0x05 => Op::Syscall,
                0x0b => Op::Ud2,
                0x1e if f3 => {
                    let tail = cur.u8()?;
                    if tail == 0xfa {
                        Op::Endbr64
                    } else {
                        return Err(DecodeError::UnsupportedForm {
                            addr,
                            opcode,
                            modrm: tail,
                        });
                    }
                }
                0x1f => {
                    // Multi-byte NOP: 0F 1F /0.
                    let _ = decode_modrm(&mut cur, rex)?;
                    Op::Nop
                }
                0x80..=0x8f => {
                    let cond = Cond::from_code(op2 & 0xf).ok_or(DecodeError::UnsupportedForm {
                        addr,
                        opcode,
                        modrm: op2,
                    })?;
                    let rel = cur.i32()?;
                    Op::Jcc(cond, rel)
                }
                _ => return Err(DecodeError::UnknownOpcode { addr, opcode: op2 }),
            }
        }
        0x50..=0x57 => Op::Push(Operand::Reg(Reg::from_number(
            (opcode - 0x50) | if rex.b { 8 } else { 0 },
        ))),
        0x58..=0x5f => Op::Pop(Reg::from_number(
            (opcode - 0x58) | if rex.b { 8 } else { 0 },
        )),
        0x68 => Op::Push(Operand::Imm(cur.i32()? as i64)),
        0x6a => Op::Push(Operand::Imm(cur.i8()? as i64)),
        0x70..=0x7f => {
            let cond =
                Cond::from_code(opcode & 0xf).ok_or(DecodeError::UnknownOpcode { addr, opcode })?;
            let rel = cur.i8()? as i32;
            Op::Jcc(cond, rel)
        }
        // ALU r/m, r  (store direction)
        0x01 | 0x09 | 0x21 | 0x29 | 0x31 | 0x39 | 0x89 => {
            let m = decode_modrm(&mut cur, rex)?;
            let src = Operand::Reg(Reg::from_number(m.reg_field));
            let dst = m.rm;
            match opcode {
                0x01 => Op::Add { dst, src },
                0x09 => Op::Or { dst, src },
                0x21 => Op::And { dst, src },
                0x29 => Op::Sub { dst, src },
                0x31 => Op::Xor { dst, src },
                0x39 => Op::Cmp { a: dst, b: src },
                0x89 => Op::Mov { dst, src },
                _ => unreachable!(),
            }
        }
        // ALU r, r/m  (load direction)
        0x03 | 0x0b | 0x23 | 0x2b | 0x33 | 0x3b | 0x8b => {
            let m = decode_modrm(&mut cur, rex)?;
            let dst = Operand::Reg(Reg::from_number(m.reg_field));
            let src = m.rm;
            match opcode {
                0x03 => Op::Add { dst, src },
                0x0b => Op::Or { dst, src },
                0x23 => Op::And { dst, src },
                0x2b => Op::Sub { dst, src },
                0x33 => Op::Xor { dst, src },
                0x3b => Op::Cmp { a: dst, b: src },
                0x8b => Op::Mov { dst, src },
                _ => unreachable!(),
            }
        }
        0x85 => {
            let m = decode_modrm(&mut cur, rex)?;
            Op::Test {
                a: m.rm,
                b: Operand::Reg(Reg::from_number(m.reg_field)),
            }
        }
        0x81 | 0x83 => {
            let m = decode_modrm(&mut cur, rex)?;
            let imm = if opcode == 0x81 {
                cur.i32()? as i64
            } else {
                cur.i8()? as i64
            };
            let dst = m.rm;
            let src = Operand::Imm(imm);
            match m.reg_field & 7 {
                0 => Op::Add { dst, src },
                1 => Op::Or { dst, src },
                4 => Op::And { dst, src },
                5 => Op::Sub { dst, src },
                6 => Op::Xor { dst, src },
                7 => Op::Cmp { a: dst, b: src },
                _ => {
                    return Err(DecodeError::UnsupportedForm {
                        addr,
                        opcode,
                        modrm: m.raw,
                    })
                }
            }
        }
        0x8d => {
            let m = decode_modrm(&mut cur, rex)?;
            match m.rm {
                Operand::Mem(mem) => Op::Lea {
                    dst: Reg::from_number(m.reg_field),
                    addr: mem,
                },
                _ => {
                    return Err(DecodeError::UnsupportedForm {
                        addr,
                        opcode,
                        modrm: m.raw,
                    })
                }
            }
        }
        0xb8..=0xbf => {
            let dst = Reg::from_number((opcode - 0xb8) | if rex.b { 8 } else { 0 });
            if rex.w {
                Op::MovImm64 {
                    dst,
                    imm: cur.u64()?,
                }
            } else {
                // mov r32, imm32 zero-extends.
                let imm = cur.i32()? as u32 as i64;
                Op::Mov {
                    dst: Operand::Reg(dst),
                    src: Operand::Imm(imm),
                }
            }
        }
        0xc7 => {
            let m = decode_modrm(&mut cur, rex)?;
            if m.reg_field & 7 != 0 {
                return Err(DecodeError::UnsupportedForm {
                    addr,
                    opcode,
                    modrm: m.raw,
                });
            }
            let imm = cur.i32()? as i64;
            Op::Mov {
                dst: m.rm,
                src: Operand::Imm(imm),
            }
        }
        0xc3 => Op::Ret,
        0xc2 => {
            let _ = cur.u8()?;
            let _ = cur.u8()?;
            Op::Ret
        }
        0xe8 => Op::Call(Target::Rel(cur.i32()?)),
        0xe9 => Op::Jmp(Target::Rel(cur.i32()?)),
        0xeb => Op::Jmp(Target::Rel(cur.i8()? as i32)),
        0xff => {
            let m = decode_modrm(&mut cur, rex)?;
            let target = match m.rm {
                Operand::Reg(r) => Target::Reg(r),
                Operand::Mem(mem) => Target::Mem(mem),
                Operand::Imm(_) => unreachable!("modrm never yields imm"),
            };
            match m.reg_field & 7 {
                2 => Op::Call(target),
                4 => Op::Jmp(target),
                6 => Op::Push(m.rm),
                _ => {
                    return Err(DecodeError::UnsupportedForm {
                        addr,
                        opcode,
                        modrm: m.raw,
                    })
                }
            }
        }
        0x90 => Op::Nop,
        0xcc => Op::Int3,
        0xf4 => Op::Hlt,
        _ => return Err(DecodeError::UnknownOpcode { addr, opcode }),
    };

    Ok(Instruction {
        addr,
        len: cur.pos as u8,
        op,
    })
}

/// Decodes instructions linearly from `base` until the buffer is exhausted
/// or an undecodable byte is reached (remaining bytes are ignored).
pub fn decode_all(bytes: &[u8], base: u64) -> Vec<Instruction> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match decode(&bytes[pos..], base + pos as u64) {
            Ok(insn) => {
                pos += insn.len as usize;
                out.push(insn);
            }
            Err(_) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(bytes: &[u8]) -> Instruction {
        decode(bytes, 0x1000).expect("decodes")
    }

    #[test]
    fn decodes_syscall() {
        assert_eq!(one(&[0x0f, 0x05]).op, Op::Syscall);
    }

    #[test]
    fn decodes_gcc_style_mov_eax_imm() {
        // mov eax, 1  →  b8 01 00 00 00 (no REX) — how GCC loads syscall ids.
        let i = one(&[0xb8, 1, 0, 0, 0]);
        assert_eq!(
            i.op,
            Op::Mov {
                dst: Operand::Reg(Reg::Rax),
                src: Operand::Imm(1)
            }
        );
        assert_eq!(i.len, 5);
    }

    #[test]
    fn decodes_movabs() {
        let i = one(&[0x48, 0xb8, 0xef, 0xbe, 0xad, 0xde, 0, 0, 0, 0]);
        assert_eq!(
            i.op,
            Op::MovImm64 {
                dst: Reg::Rax,
                imm: 0xdeadbeef
            }
        );
        assert_eq!(i.len, 10);
    }

    #[test]
    fn decodes_mov_through_stack() {
        // mov qword [rsp+0x10], 2  →  48 c7 44 24 10 02 00 00 00
        let i = one(&[0x48, 0xc7, 0x44, 0x24, 0x10, 2, 0, 0, 0]);
        assert_eq!(
            i.op,
            Op::Mov {
                dst: Operand::Mem(Mem::base_disp(Reg::Rsp, 0x10)),
                src: Operand::Imm(2)
            }
        );
        // mov rax, [rsp+0x10]  →  48 8b 44 24 10
        let i = one(&[0x48, 0x8b, 0x44, 0x24, 0x10]);
        assert_eq!(
            i.op,
            Op::Mov {
                dst: Operand::Reg(Reg::Rax),
                src: Operand::Mem(Mem::base_disp(Reg::Rsp, 0x10))
            }
        );
    }

    #[test]
    fn decodes_rip_relative_lea() {
        // lea rdi, [rip+0x200]  →  48 8d 3d 00 02 00 00
        let i = one(&[0x48, 0x8d, 0x3d, 0, 2, 0, 0]);
        assert_eq!(
            i.op,
            Op::Lea {
                dst: Reg::Rdi,
                addr: Mem::rip(0x200)
            }
        );
        if let Op::Lea { addr, .. } = i.op {
            assert_eq!(addr.rip_target(i.addr, i.len), Some(0x1207));
        }
    }

    #[test]
    fn decodes_extended_registers() {
        // mov r10, r9  →  4d 89 ca
        let i = one(&[0x4d, 0x89, 0xca]);
        assert_eq!(
            i.op,
            Op::Mov {
                dst: Operand::Reg(Reg::R10),
                src: Operand::Reg(Reg::R9)
            }
        );
        // push r12 → 41 54
        let i = one(&[0x41, 0x54]);
        assert_eq!(i.op, Op::Push(Operand::Reg(Reg::R12)));
    }

    #[test]
    fn decodes_rel8_and_rel32_jumps() {
        let i = one(&[0xeb, 0x10]);
        assert_eq!(i.op, Op::Jmp(Target::Rel(0x10)));
        assert_eq!(i.branch_target(), Some(0x1012));
        let i = one(&[0x74, 0xfe]); // je -2 (self loop)
        assert_eq!(i.op, Op::Jcc(Cond::E, -2));
        assert_eq!(i.branch_target(), Some(0x1000));
        let i = one(&[0x0f, 0x85, 4, 0, 0, 0]); // jne +4
        assert_eq!(i.op, Op::Jcc(Cond::Ne, 4));
    }

    #[test]
    fn decodes_indirect_call_and_jmp() {
        // call rax → ff d0
        assert_eq!(one(&[0xff, 0xd0]).op, Op::Call(Target::Reg(Reg::Rax)));
        // jmp [rip+8] → ff 25 08 00 00 00 (PLT stub shape)
        assert_eq!(
            one(&[0xff, 0x25, 8, 0, 0, 0]).op,
            Op::Jmp(Target::Mem(Mem::rip(8)))
        );
        // call [rax+0x18] → ff 50 18
        assert_eq!(
            one(&[0xff, 0x50, 0x18]).op,
            Op::Call(Target::Mem(Mem::base_disp(Reg::Rax, 0x18)))
        );
    }

    #[test]
    fn decodes_alu_imm8_forms() {
        // sub rsp, 0x20 → 48 83 ec 20
        let i = one(&[0x48, 0x83, 0xec, 0x20]);
        assert_eq!(
            i.op,
            Op::Sub {
                dst: Operand::Reg(Reg::Rsp),
                src: Operand::Imm(0x20)
            }
        );
        // cmp rax, -1 → 48 83 f8 ff
        let i = one(&[0x48, 0x83, 0xf8, 0xff]);
        assert_eq!(
            i.op,
            Op::Cmp {
                a: Operand::Reg(Reg::Rax),
                b: Operand::Imm(-1)
            }
        );
    }

    #[test]
    fn decodes_multibyte_nop() {
        // nopw [rax+rax*1] style: 0f 1f 44 00 00
        let i = one(&[0x0f, 0x1f, 0x44, 0x00, 0x00]);
        assert_eq!(i.op, Op::Nop);
        assert_eq!(i.len, 5);
    }

    #[test]
    fn decodes_endbr64() {
        let i = one(&[0xf3, 0x0f, 0x1e, 0xfa]);
        assert_eq!(i.op, Op::Endbr64);
        assert_eq!(i.len, 4);
    }

    #[test]
    fn sib_with_index_round_trip() {
        // mov rax, [rbx + rcx*4 + 8] → 48 8b 44 8b 08
        let i = one(&[0x48, 0x8b, 0x44, 0x8b, 0x08]);
        assert_eq!(
            i.op,
            Op::Mov {
                dst: Operand::Reg(Reg::Rax),
                src: Operand::Mem(Mem {
                    base: Some(Reg::Rbx),
                    index: Some((Reg::Rcx, 4)),
                    disp: 8,
                    rip_relative: false
                })
            }
        );
    }

    #[test]
    fn truncated_input_errors() {
        assert!(matches!(
            decode(&[0x48], 0),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            decode(&[0xe8, 1, 2], 0),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(decode(&[], 0), Err(DecodeError::Truncated { .. })));
    }

    #[test]
    fn unknown_opcode_errors() {
        assert!(matches!(
            decode(&[0x06], 0x42),
            Err(DecodeError::UnknownOpcode {
                addr: 0x42,
                opcode: 0x06
            })
        ));
    }

    #[test]
    fn decode_all_stops_at_garbage() {
        let mut code = vec![0x90, 0x0f, 0x05]; // nop; syscall
        code.push(0x06); // invalid
        code.push(0x90);
        let insns = decode_all(&code, 0);
        assert_eq!(insns.len(), 2);
    }
}
