//! The workspace's telemetry spine.
//!
//! Every layer of the pipeline — the serve daemon, the fleet
//! coordinator and its agents, the dist workers, the core analysis
//! phases — reports through this one crate instead of growing its own
//! counter struct. Three pieces:
//!
//! 1. **Metrics** ([`Registry`]): monotonic [`Counter`]s, [`Gauge`]s,
//!    and fixed-bucket log-linear latency [`Histogram`]s. Registration
//!    takes a lock once; the handles it returns are plain atomics, so
//!    the hot path costs one `fetch_add`. Snapshots merge
//!    associatively, and the whole registry renders to Prometheus text
//!    exposition format ([`Registry::render_prometheus`]).
//!
//! 2. **Spans** ([`span`], [`SpanGuard`]): wall-clock intervals with
//!    explicit parent ids, recorded into a per-thread ring buffer and
//!    drained to Chrome trace-event JSON ([`chrome_trace_json`]) —
//!    load the file in `chrome://tracing` or Perfetto. A thread-local
//!    context stack nests spans automatically; [`set_context`] grafts
//!    a subtree under a parent that lives in another process.
//!
//! 3. **Cross-machine trace context** ([`TraceContext`]): the
//!    run-id/unit-id/span-id triple the fleet and dist protocols carry
//!    in their NDJSON frames, so a unit's coordinator-side dispatch
//!    span, agent-side analysis span, and serve-side offload span
//!    stitch into one tree. Remote spans re-enter the local rings via
//!    [`record_remote`].
//!
//! The build environment is offline, so the crate is dependency-free
//! by construction — the JSON and Prometheus renderings are hand
//! rolled, same discipline as the serde/rand shims.
//!
//! # Cost when you don't look
//!
//! [`set_enabled`]`(false)` turns every span and histogram record site
//! into a relaxed load and a predictable branch; the `off` cargo
//! feature makes that branch a compile-time constant. Counters and
//! gauges stay live in both modes: the serve daemon's `stats` reply is
//! *derived* from them, so disabling them would change answers, not
//! just overhead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, HISTOGRAM_BUCKETS};
pub use trace::{
    chrome_trace_json, collect, current_context, drain_trace, new_run_id, record_remote,
    set_context, span, span_root, ContextGuard, SpanGuard, SpanRecord, TraceContext,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// `true` when span and histogram recording is on (the default). With
/// the `off` feature the answer is a compile-time `false` and the
/// recording paths fold away entirely.
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "off") {
        return false;
    }
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span and histogram recording on or off at runtime — the
/// process-wide kill switch the overhead bench flips to measure what
/// telemetry costs. Counters and gauges are unaffected (see the crate
/// docs for why).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-global registry — what `bside serve`, `bside agent` and
/// `bside corpus` export. Library embedders (and tests, which share a
/// process) construct their own [`Registry`] instead so concurrent
/// instances can't bleed counts into each other.
pub fn global() -> Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new())).clone()
}

/// The enabled flag is process-global, so the one test that flips it
/// takes this lock for writing while every test that records takes it
/// for reading.
#[cfg(test)]
pub(crate) fn test_enabled_lock() -> &'static std::sync::RwLock<()> {
    static LOCK: OnceLock<std::sync::RwLock<()>> = OnceLock::new();
    LOCK.get_or_init(|| std::sync::RwLock::new(()))
}
