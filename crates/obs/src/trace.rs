//! Spans, the per-thread ring buffers they land in, and the Chrome
//! trace-event rendering.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The cross-machine correlation triple carried in fleet and dist
/// NDJSON frames: which run, which unit, and which sender-side span
/// should parent the receiver's spans. All-zero means "no context" —
/// the receiver records orphan spans, which is the mandated
/// degradation when the triple is absent or corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Identifies one corpus run across every machine involved.
    pub run_id: u64,
    /// The unit's corpus-wide id (position in input order).
    pub unit_id: u64,
    /// The sender-side span the receiver's spans should hang under.
    pub span_id: u64,
}

/// One finished span: a named wall-clock interval with an explicit
/// parent id. `parent == 0` is a root (or orphan) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (a phase, an endpoint, a lifecycle step).
    pub name: String,
    /// Unique id — unique across processes, not just threads, so
    /// remote spans can graft in without collisions.
    pub id: u64,
    /// Parent span id, 0 for none.
    pub parent: u64,
    /// Run correlation id, 0 for none.
    pub run_id: u64,
    /// Unit correlation id (meaningful only under a run).
    pub unit_id: u64,
    /// Start time in microseconds since the recording process's trace
    /// epoch (first telemetry use). Cross-process clocks are not
    /// aligned; Chrome/Perfetto renders each track on its own line.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Recording thread id (trace-local, not the OS tid).
    pub tid: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Ctx {
    run_id: u64,
    unit_id: u64,
    parent: u64,
}

const RING_CAP: usize = 8192;

#[derive(Default)]
struct Ring {
    spans: VecDeque<SpanRecord>,
    dropped: u64,
}

fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn next_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static CUR: Cell<Ctx> = const { Cell::new(Ctx { run_id: 0, unit_id: 0, parent: 0 }) };
    static COLLECTOR: RefCell<Option<Vec<SpanRecord>>> = const { RefCell::new(None) };
    static THREAD_RING: RefCell<Option<(u64, Arc<Mutex<Ring>>)>> = const { RefCell::new(None) };
}

/// Allocates a span id unique across concurrently tracing processes:
/// a per-process random high word (so two agents' ids can't collide
/// when their spans merge into one trace) over a counter low word
/// (never zero).
fn next_span_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let seed = *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x5eed)
            ^ std::process::id() as u64;
        // splitmix64 finalizer so near-identical inputs decorrelate.
        let mut s = nanos.wrapping_add(0x9E37_79B9_7F4A_7C15);
        s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        s ^ (s >> 31)
    });
    (seed << 32) | (NEXT.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF)
}

fn sink(record: SpanRecord) {
    let collected = COLLECTOR.with(|c| {
        if let Some(vec) = c.borrow_mut().as_mut() {
            vec.push(record.clone());
            true
        } else {
            false
        }
    });
    if collected {
        return;
    }
    THREAD_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let (_, ring) = slot.get_or_insert_with(|| {
            let ring = Arc::new(Mutex::new(Ring::default()));
            rings().lock().expect("ring registry").push(ring.clone());
            (next_tid(), ring)
        });
        let mut ring = ring.lock().expect("thread ring");
        if ring.spans.len() >= RING_CAP {
            ring.spans.pop_front();
            ring.dropped += 1;
        }
        ring.spans.push_back(record);
    });
}

fn current_tid() -> u64 {
    THREAD_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let (tid, _) = slot.get_or_insert_with(|| {
            let ring = Arc::new(Mutex::new(Ring::default()));
            rings().lock().expect("ring registry").push(ring.clone());
            (next_tid(), ring)
        });
        *tid
    })
}

/// An in-flight span. Ends (and records itself) on [`finish`] or on
/// drop; while alive, spans started on the same thread nest under it.
///
/// [`finish`]: SpanGuard::finish
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    id: u64,
    run_id: u64,
    unit_id: u64,
    parent: u64,
    prev: Ctx,
    start: Instant,
    start_us: u64,
    finished: bool,
}

impl SpanGuard {
    fn begin(name: &'static str, ctx: Ctx) -> SpanGuard {
        let id = next_span_id();
        let prev = CUR.with(|c| {
            let prev = c.get();
            c.set(Ctx {
                run_id: ctx.run_id,
                unit_id: ctx.unit_id,
                parent: id,
            });
            prev
        });
        let start = Instant::now();
        SpanGuard {
            name,
            id,
            run_id: ctx.run_id,
            unit_id: ctx.unit_id,
            parent: ctx.parent,
            prev,
            start,
            start_us: start.duration_since(epoch()).as_micros() as u64,
            finished: false,
        }
    }

    /// This span's id — what goes on the wire as
    /// [`TraceContext::span_id`] so remote spans parent here.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The context to stamp on outbound frames: remote spans recorded
    /// under it become this span's children.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            run_id: self.run_id,
            unit_id: self.unit_id,
            span_id: self.id,
        }
    }

    /// Ends the span, records it, and returns its wall-clock duration
    /// — the *one* measurement, which `core` also uses to fill
    /// `PhaseTimings` so phase wall-times are never taken twice. The
    /// duration is measured even when telemetry is off; only the
    /// recording is skipped.
    pub fn finish(mut self) -> Duration {
        self.complete()
    }

    fn complete(&mut self) -> Duration {
        if self.finished {
            return Duration::ZERO;
        }
        self.finished = true;
        let dur = self.start.elapsed();
        CUR.with(|c| c.set(self.prev));
        if crate::enabled() {
            sink(SpanRecord {
                name: self.name.to_string(),
                id: self.id,
                parent: self.parent,
                run_id: self.run_id,
                unit_id: self.unit_id,
                start_us: self.start_us,
                dur_us: dur.as_micros() as u64,
                tid: current_tid(),
            });
        }
        dur
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.complete();
    }
}

/// A fresh process-unique id for correlating one corpus run across
/// machines — drawn from the span-id sequence, so run ids can't
/// collide with each other or with span ids.
pub fn new_run_id() -> u64 {
    next_span_id()
}

/// Starts a span under the thread's current context: its parent is the
/// innermost live span on this thread (or the context installed by
/// [`set_context`]), and it inherits the run/unit ids.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::begin(name, CUR.with(|c| c.get()))
}

/// Starts a root span for a new run: no parent, fresh run/unit ids.
/// Spans started on this thread while it lives nest beneath it.
pub fn span_root(name: &'static str, run_id: u64, unit_id: u64) -> SpanGuard {
    SpanGuard::begin(
        name,
        Ctx {
            run_id,
            unit_id,
            parent: 0,
        },
    )
}

/// Restores the previous thread-local context on drop.
#[derive(Debug)]
pub struct ContextGuard {
    prev: Ctx,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CUR.with(|c| c.set(self.prev));
    }
}

/// Installs a trace context received from another process (or thread)
/// as this thread's current context: spans started while the guard
/// lives parent under `ctx.span_id` and carry its run/unit ids. An
/// all-zero context installs "no context" — subsequent spans are
/// orphans, never errors.
pub fn set_context(ctx: TraceContext) -> ContextGuard {
    let prev = CUR.with(|c| {
        let prev = c.get();
        c.set(Ctx {
            run_id: ctx.run_id,
            unit_id: ctx.unit_id,
            parent: ctx.span_id,
        });
        prev
    });
    ContextGuard { prev }
}

/// The thread's current context, if any: what a frame about to leave
/// this thread should carry so the receiver's spans stitch under the
/// innermost live span.
pub fn current_context() -> Option<TraceContext> {
    let ctx = CUR.with(|c| c.get());
    if ctx.run_id == 0 && ctx.unit_id == 0 && ctx.parent == 0 {
        None
    } else {
        Some(TraceContext {
            run_id: ctx.run_id,
            unit_id: ctx.unit_id,
            span_id: ctx.parent,
        })
    }
}

/// Runs `f` with this thread's span output redirected into a local
/// collector and returns what was recorded — how an agent gathers the
/// spans of one unit to ship back in the result frame (they are *not*
/// also recorded locally, so an in-process agent can't double-count).
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, Vec<SpanRecord>) {
    let prev = COLLECTOR.with(|c| c.borrow_mut().replace(Vec::new()));
    let result = f();
    let spans = COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        let spans = slot.take().unwrap_or_default();
        *slot = prev;
        spans
    });
    (result, spans)
}

/// Records spans that arrived from another process (an agent's result
/// frame) into this thread's ring, so one drain yields the stitched
/// cross-machine trace.
pub fn record_remote(spans: Vec<SpanRecord>) {
    if !crate::enabled() {
        return;
    }
    for span in spans {
        sink(span);
    }
}

/// Drains every thread's ring buffer and returns the accumulated
/// spans, ordered by start time. Process-wide and destructive: the
/// caller owns writing them out (`bside corpus --trace-out`).
pub fn drain_trace() -> Vec<SpanRecord> {
    let rings = rings().lock().expect("ring registry");
    let mut all = Vec::new();
    for ring in rings.iter() {
        let mut ring = ring.lock().expect("thread ring");
        all.extend(ring.spans.drain(..));
    }
    all.sort_by_key(|s| s.start_us);
    all
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders spans as a Chrome trace-event JSON document (complete `"X"`
/// events) — load it in `chrome://tracing` or
/// <https://ui.perfetto.dev>. Span/parent/run ids ride in each event's
/// `args` as decimal strings (64-bit ids don't survive a JS number),
/// which is also what the trace-stitching tests parse.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        escape_json(&s.name, &mut out);
        out.push_str(&format!(
            "\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"span_id\":\"{}\",\"parent_id\":\"{}\",\"run_id\":\"{}\",\"unit_id\":{}}}}}",
            s.start_us, s.dur_us, s.tid, s.id, s.parent, s.run_id, s.unit_id
        ));
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_guard() -> std::sync::RwLockReadGuard<'static, ()> {
        crate::test_enabled_lock()
            .read()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn spans_nest_under_the_innermost_live_span() {
        let _on = read_guard();
        let ((), spans) = collect(|| {
            let outer = span_root("outer", 42, 0);
            let inner = span("inner");
            let leaf = span("leaf");
            leaf.finish();
            inner.finish();
            let sibling = span("sibling");
            drop(sibling);
            outer.finish();
        });
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).expect(n);
        let outer = by_name("outer");
        let inner = by_name("inner");
        let leaf = by_name("leaf");
        let sibling = by_name("sibling");
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(leaf.parent, inner.id);
        assert_eq!(sibling.parent, outer.id, "drop finishes like finish()");
        assert!(spans.iter().all(|s| s.run_id == 42), "run id inherited");
        // Finish order: leaf landed first, outer last.
        assert_eq!(spans.first().map(|s| s.name.as_str()), Some("leaf"));
        assert_eq!(spans.last().map(|s| s.name.as_str()), Some("outer"));
    }

    #[test]
    fn remote_context_grafts_and_restores() {
        let _on = read_guard();
        let ((), spans) = collect(|| {
            let ctx = TraceContext {
                run_id: 7,
                unit_id: 3,
                span_id: 999,
            };
            {
                let _g = set_context(ctx);
                assert_eq!(current_context(), Some(ctx));
                span("analyze").finish();
            }
            assert_eq!(current_context(), None, "guard restores");
            span("orphan").finish();
        });
        let analyze = spans.iter().find(|s| s.name == "analyze").expect("analyze");
        assert_eq!(analyze.parent, 999);
        assert_eq!((analyze.run_id, analyze.unit_id), (7, 3));
        let orphan = spans.iter().find(|s| s.name == "orphan").expect("orphan");
        assert_eq!(orphan.parent, 0, "no context, orphan — never an error");
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let _on = read_guard();
        let (ids, spans) = collect(|| {
            (0..256)
                .map(|_| span("s").finish())
                .collect::<Vec<Duration>>()
        });
        assert_eq!(spans.len(), ids.len());
        let mut seen: Vec<u64> = spans.iter().map(|s| s.id).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 256, "ids must not collide");
        assert!(spans.iter().all(|s| s.id != 0));
    }

    #[test]
    fn disabled_spans_still_measure_but_record_nothing() {
        // The switch is process-global: hold the write lock so no
        // sibling test records (or fails to) while it is off.
        let _off = crate::test_enabled_lock()
            .write()
            .unwrap_or_else(|p| p.into_inner());
        crate::set_enabled(false);
        let (dur, spans) = collect(|| {
            let s = span("ghost");
            std::thread::sleep(Duration::from_millis(2));
            s.finish()
        });
        crate::set_enabled(true);
        assert!(spans.is_empty(), "nothing recorded while off");
        assert!(
            dur >= Duration::from_millis(2),
            "duration still measured: {dur:?}"
        );
    }

    #[test]
    fn rings_drain_across_threads_and_remote_spans_join() {
        let _on = read_guard();
        let run_id = next_span_id(); // unique enough to filter by
        let handle = std::thread::spawn(move || {
            let s = span_root("worker_side", run_id, 1);
            s.finish();
        });
        handle.join().expect("worker thread");
        record_remote(vec![SpanRecord {
            name: "remote_side".to_string(),
            id: 12345,
            parent: 678,
            run_id,
            unit_id: 2,
            start_us: 10,
            dur_us: 5,
            tid: 0,
        }]);
        let drained = drain_trace();
        let mine: Vec<&SpanRecord> = drained.iter().filter(|s| s.run_id == run_id).collect();
        assert_eq!(mine.len(), 2, "one local (other thread), one remote");
        assert!(mine.iter().any(|s| s.name == "worker_side"));
        assert!(mine
            .iter()
            .any(|s| s.name == "remote_side" && s.id == 12345));
        // A second drain must not yield them again.
        let again = drain_trace();
        assert!(!again.iter().any(|s| s.run_id == run_id));
    }

    #[test]
    fn chrome_trace_json_is_parseable_shape() {
        let spans = vec![SpanRecord {
            name: "phase \"cfg\"\n".to_string(),
            id: 0xDEAD_BEEF_0000_0001,
            parent: 7,
            run_id: 9,
            unit_id: 4,
            start_us: 100,
            dur_us: 50,
            tid: 3,
        }];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\\\"cfg\\\"\\n"), "name escaped: {json}");
        assert!(
            json.contains(&format!("\"span_id\":\"{}\"", 0xDEAD_BEEF_0000_0001u64)),
            "ids as decimal strings"
        );
        assert!(json.contains("\"parent_id\":\"7\""));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
