//! Counters, gauges, log-linear histograms, and the registry that
//! names them.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. One relaxed `fetch_add` per
/// event; the handle is shared, so callers register once and clone the
/// `Arc` into their hot paths.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (queue depth, breaker
/// state, store generation).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count of the fixed log-linear layout: values 0–15 get
/// width-1 buckets, values up to `2^32 - 1` get 8 linear sub-buckets
/// per power of two (≤ 12.5 % relative error), and everything above
/// lands in one overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 16 + 28 * 8 + 1;

const OVERFLOW: usize = HISTOGRAM_BUCKETS - 1;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    if msb >= 32 {
        return OVERFLOW;
    }
    let sub = ((v >> (msb - 3)) & 7) as usize;
    16 + (msb - 4) * 8 + sub
}

/// The smallest value that lands in bucket `idx`.
fn bucket_lower(idx: usize) -> u64 {
    if idx < 16 {
        idx as u64
    } else if idx >= OVERFLOW {
        1 << 32
    } else {
        let o = (idx - 16) / 8;
        let s = (idx - 16) % 8;
        (8 + s as u64) << (o + 1)
    }
}

/// The largest value that lands in bucket `idx` (inclusive — this is
/// the Prometheus `le` boundary).
fn bucket_upper(idx: usize) -> u64 {
    if idx >= OVERFLOW {
        u64::MAX
    } else {
        bucket_lower(idx + 1) - 1
    }
}

/// A fixed-bucket log-linear histogram. Recording is one relaxed
/// `fetch_add` into the value's bucket plus two for count and sum —
/// no lock, no allocation — and is gated on [`crate::enabled`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation (a latency in microseconds, by the
    /// workspace convention). A no-op when telemetry is off.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts, mergeable with other
    /// snapshots (e.g. the same histogram from several agents).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot — the identity element of [`merge`].
    ///
    /// [`merge`]: HistogramSnapshot::merge
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Folds another snapshot into this one. Bucket-wise addition, so
    /// the operation is associative and commutative — merging per-agent
    /// snapshots in any order yields the same fleet-wide histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The inclusive upper bound of bucket `idx`.
    pub fn bucket_upper(idx: usize) -> u64 {
        bucket_upper(idx)
    }

    /// The inclusive lower bound of bucket `idx`.
    pub fn bucket_lower(idx: usize) -> u64 {
        bucket_lower(idx)
    }

    /// An estimate of the `q`-quantile (`0.0 ..= 1.0`): the upper bound
    /// of the bucket holding the rank-`⌈q·count⌉` observation, so the
    /// estimate never under-reports and is within the bucket's relative
    /// width (≤ 12.5 % above the linear range) of the exact value.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return bucket_upper(idx);
            }
        }
        bucket_upper(OVERFLOW)
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

fn key_of(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    MetricKey {
        name: name.to_string(),
        labels: labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Vec<(MetricKey, Arc<Counter>)>,
    gauges: Vec<(MetricKey, Arc<Gauge>)>,
    histograms: Vec<(MetricKey, Arc<Histogram>)>,
}

/// Names metrics and renders them. Registration (`counter`, `gauge`,
/// `histogram`) takes the registry lock; the returned handles don't —
/// callers register once at startup and hammer the atomics after.
///
/// Each subsystem instance (a serve daemon, a fleet coordinator) owns
/// its own registry so tests sharing a process stay isolated; the
/// binaries pass [`crate::global`] everywhere so one snapshot covers
/// the whole process.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name` with no labels, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// The counter named `name` with the given label pairs.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = key_of(name, labels);
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some((_, c)) = inner.counters.iter().find(|(k, _)| *k == key) {
            return c.clone();
        }
        let c = Arc::new(Counter::default());
        inner.counters.push((key, c.clone()));
        c
    }

    /// The gauge named `name` with no labels, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// The gauge named `name` with the given label pairs.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = key_of(name, labels);
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some((_, g)) = inner.gauges.iter().find(|(k, _)| *k == key) {
            return g.clone();
        }
        let g = Arc::new(Gauge::default());
        inner.gauges.push((key, g.clone()));
        g
    }

    /// The histogram named `name` with no labels, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// The histogram named `name` with the given label pairs.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = key_of(name, labels);
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some((_, h)) = inner.histograms.iter().find(|(k, _)| *k == key) {
            return h.clone();
        }
        let h = Arc::new(Histogram::default());
        inner.histograms.push((key, h.clone()));
        h
    }

    /// The current value of a counter, when it exists — the test hook
    /// the stats-vs-metrics drift suite reads both sides through.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = key_of(name, labels);
        let inner = self.inner.lock().expect("registry lock");
        inner
            .counters
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, c)| c.get())
    }

    /// The current value of a gauge, when it exists.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = key_of(name, labels);
        let inner = self.inner.lock().expect("registry lock");
        inner
            .gauges
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, g)| g.get())
    }

    /// A snapshot of a histogram, when it exists.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        let key = key_of(name, labels);
        let inner = self.inner.lock().expect("registry lock");
        inner
            .histograms
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, h)| h.snapshot())
    }

    /// Every histogram label set registered under `name`, with a
    /// snapshot of each — how the work-stealing scheduler is meant to
    /// read the per-agent latency distributions.
    pub fn histogram_family(&self, name: &str) -> Vec<(Vec<(String, String)>, HistogramSnapshot)> {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .histograms
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(k, h)| (k.labels.clone(), h.snapshot()))
            .collect()
    }

    /// Renders every metric in Prometheus text exposition format,
    /// families sorted by name (then label set) so the output is
    /// deterministic. Histogram buckets are emitted cumulatively with
    /// `le` upper bounds, trailing empty buckets elided, `+Inf` always
    /// present.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("registry lock");
        let mut out = String::new();

        let mut counters: Vec<(&MetricKey, u64)> =
            inner.counters.iter().map(|(k, c)| (k, c.get())).collect();
        counters.sort_by(|a, b| a.0.cmp(b.0));
        let mut last_family = "";
        for (key, value) in counters {
            if key.name != last_family {
                let _ = writeln!(out, "# TYPE {} counter", key.name);
                last_family = &key.name;
            }
            let _ = writeln!(out, "{}{} {}", key.name, render_labels(&key.labels), value);
        }

        let mut gauges: Vec<(&MetricKey, u64)> =
            inner.gauges.iter().map(|(k, g)| (k, g.get())).collect();
        gauges.sort_by(|a, b| a.0.cmp(b.0));
        let mut last_family = "";
        for (key, value) in gauges {
            if key.name != last_family {
                let _ = writeln!(out, "# TYPE {} gauge", key.name);
                last_family = &key.name;
            }
            let _ = writeln!(out, "{}{} {}", key.name, render_labels(&key.labels), value);
        }

        let mut histograms: Vec<(&MetricKey, HistogramSnapshot)> = inner
            .histograms
            .iter()
            .map(|(k, h)| (k, h.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(b.0));
        let mut last_family = "";
        for (key, snap) in histograms {
            if key.name != last_family {
                let _ = writeln!(out, "# TYPE {} histogram", key.name);
                last_family = &key.name;
            }
            let last_used = snap
                .buckets
                .iter()
                .rposition(|&n| n > 0)
                .map_or(0, |i| i + 1)
                .min(OVERFLOW);
            let mut cum = 0u64;
            for (idx, &n) in snap.buckets.iter().enumerate().take(last_used) {
                cum += n;
                let mut labels = key.labels.clone();
                labels.push(("le".to_string(), bucket_upper(idx).to_string()));
                let _ = writeln!(out, "{}_bucket{} {}", key.name, render_labels(&labels), cum);
            }
            let mut labels = key.labels.clone();
            labels.push(("le".to_string(), "+Inf".to_string()));
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                key.name,
                render_labels(&labels),
                snap.count
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                key.name,
                render_labels(&key.labels),
                snap.sum
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                key.name,
                render_labels(&key.labels),
                snap.count
            );
        }
        out
    }
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_agree_everywhere() {
        // Every bucket's bounds map back to the bucket, and the layout
        // tiles u64 without gaps: upper(i) + 1 == lower(i + 1).
        for idx in 0..HISTOGRAM_BUCKETS {
            let lo = bucket_lower(idx);
            let hi = bucket_upper(idx);
            assert!(lo <= hi, "bucket {idx}: {lo} > {hi}");
            assert_eq!(bucket_index(lo), idx, "lower bound of {idx}");
            assert_eq!(bucket_index(hi), idx, "upper bound of {idx}");
            if idx + 1 < HISTOGRAM_BUCKETS {
                assert_eq!(hi + 1, bucket_lower(idx + 1), "gap after bucket {idx}");
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16, "first log-linear bucket");
        assert_eq!(bucket_index(u64::MAX), OVERFLOW);
    }

    #[test]
    fn relative_error_is_bounded_by_an_eighth() {
        // Above the linear range each octave has 8 sub-buckets, so a
        // bucket is at most 1/8th of its lower bound wide.
        for idx in 16..OVERFLOW {
            let lo = bucket_lower(idx);
            let width = bucket_upper(idx) - lo + 1;
            assert!(width * 8 <= lo, "bucket {idx}: width {width} vs lower {lo}");
        }
    }

    /// A tiny xorshift so the seeded-data suites need no rand dep.
    fn seeded_values(seed: u64, n: usize, spread_bits: u32) -> Vec<u64> {
        let mut x = seed.max(1);
        (0..n)
            .map(|_| {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> (64 - spread_bits)
            })
            .collect()
    }

    fn record_all(values: &[u64]) -> HistogramSnapshot {
        let _on = crate::test_enabled_lock()
            .read()
            .unwrap_or_else(|p| p.into_inner());
        let h = Histogram::default();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn merge_is_associative_and_has_an_identity() {
        let a = record_all(&seeded_values(7, 500, 20));
        let b = record_all(&seeded_values(8, 300, 12));
        let c = record_all(&seeded_values(9, 700, 28));

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        assert_eq!(ab_c, a_bc, "(a+b)+c == a+(b+c)");

        let mut with_empty = a.clone();
        with_empty.merge(&HistogramSnapshot::empty());
        assert_eq!(with_empty, a, "empty is the identity");

        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "commutes too");
    }

    #[test]
    fn quantile_estimates_track_exact_values_on_seeded_data() {
        for (seed, spread) in [(3u64, 10u32), (11, 20), (42, 30)] {
            let mut values = seeded_values(seed, 4096, spread);
            let snap = record_all(&values);
            values.sort_unstable();
            for q in [0.05, 0.25, 0.50, 0.90, 0.99] {
                let est = snap.quantile(q);
                let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len()) - 1;
                let exact = values[rank];
                assert!(
                    est >= exact,
                    "seed {seed} q{q}: estimate {est} under-reports exact {exact}"
                );
                // The estimate is the bucket's upper bound: within one
                // sub-bucket (≤ 12.5 % relative, +1 for integer edges).
                assert!(
                    est <= exact + exact / 8 + 1,
                    "seed {seed} q{q}: estimate {est} too far above exact {exact}"
                );
            }
        }
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), 0, "empty is 0");
        let one = record_all(&[300]);
        let est = one.quantile(0.99);
        assert!((300..=300 + 300 / 8 + 1).contains(&est), "got {est}");
    }

    #[test]
    fn registry_hands_back_the_same_handle_for_the_same_key() {
        let reg = Registry::new();
        let a = reg.counter_with("requests_total", &[("endpoint", "policy")]);
        let b = reg.counter_with("requests_total", &[("endpoint", "policy")]);
        let other = reg.counter_with("requests_total", &[("endpoint", "stats")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same key, same counter");
        assert_eq!(other.get(), 0, "different labels, different counter");
        assert_eq!(
            reg.counter_value("requests_total", &[("endpoint", "policy")]),
            Some(3)
        );
        assert_eq!(reg.counter_value("requests_total", &[]), None);
    }

    #[test]
    fn gauge_moves_both_ways_and_saturates() {
        let g = Gauge::default();
        g.set(5);
        g.add(2);
        g.sub(4);
        assert_eq!(g.get(), 3);
        g.sub(100);
        assert_eq!(g.get(), 0, "saturating, never wraps");
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_well_formed() {
        let _on = crate::test_enabled_lock()
            .read()
            .unwrap_or_else(|p| p.into_inner());
        let reg = Registry::new();
        reg.counter_with("z_total", &[]).add(4);
        reg.counter_with("a_total", &[("who", "b")]).add(1);
        reg.counter_with("a_total", &[("who", "a")]).add(2);
        reg.gauge("depth").set(7);
        reg.histogram("lat_us").record(10);
        reg.histogram("lat_us").record(100);
        let text = reg.render_prometheus();
        let again = reg.render_prometheus();
        assert_eq!(text, again, "rendering must be deterministic");
        // Families sorted, labels sorted within a family.
        let a_pos = text.find("a_total{who=\"a\"} 2").expect("a_total a");
        let b_pos = text.find("a_total{who=\"b\"} 1").expect("a_total b");
        let z_pos = text.find("z_total 4").expect("z_total");
        assert!(a_pos < b_pos && b_pos < z_pos);
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth 7"));
        assert!(text.contains("# TYPE lat_us histogram"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_us_sum 110"));
        assert!(text.contains("lat_us_count 2"));
        // Cumulative buckets: the bucket holding 100 counts both.
        assert!(text.contains("lat_us_bucket{le=\"10\"} 1"));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter_with("c_total", &[("path", "a\"b\\c")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains("c_total{path=\"a\\\"b\\\\c\"} 1"), "{text}");
    }
}
