//! # B-Side: binary-level static system call identification
//!
//! A complete Rust implementation of
//! *B-Side: Binary-Level Static System Call Identification*
//! (Thévenon et al., MIDDLEWARE 2024): a static binary-analysis framework
//! that identifies a precise superset of the system calls an x86-64 ELF
//! executable can invoke — with no access to source code — and derives
//! seccomp-style (optionally phase-based) filtering policies from it.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`syscalls`] | `bside-syscalls` | syscall table, [`SyscallSet`], CVE database |
//! | [`elf`] | `bside-elf` | ELF64 reader/writer |
//! | [`x86`] | `bside-x86` | decoder, assembler, concrete interpreter |
//! | [`mod@cfg`] | `bside-cfg` | CFG recovery, active address-taken heuristic |
//! | [`symex`] | `bside-symex` | backward-BFS + directed symbolic execution |
//! | [`core`] | `bside-core` | the analysis pipeline, wrappers, shared interfaces, phases |
//! | [`dist`] | `bside-dist` | multi-process distributed corpus analysis + result cache |
//! | [`fleet`] | `bside-fleet` | multi-machine analysis fleet over TCP: agents, heartbeat scheduling, serve offload |
//! | [`serve`] | `bside-serve` | policy-distribution daemon, content-addressed policy store, client |
//! | [`baselines`] | `bside-baselines` | Chestnut / SysFilter reimplementations |
//! | [`gen`] | `bside-gen` | synthetic ground-truth corpus generator |
//! | [`filter`] | `bside-filter` | policies, metrics, replay, CVE evaluation |
//!
//! # Quickstart
//!
//! ```
//! use bside::{Analyzer, AnalyzerOptions, FilterPolicy};
//!
//! // Generate a demo binary (in real use: read any x86-64 ELF from disk).
//! let program = bside::gen::profiles::lighttpd().program;
//!
//! // Identify its system calls.
//! let analysis = Analyzer::new(AnalyzerOptions::default())
//!     .analyze_static(&program.elf)?;
//!
//! // Derive a seccomp-style allow-list.
//! let policy = FilterPolicy::allow_only("lighttpd", analysis.syscalls);
//! assert!(policy.permits(bside::syscalls::well_known::READ));
//! assert!(!policy.permits(bside::syscalls::well_known::EXECVE));
//! # Ok::<(), bside::core::AnalysisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use bside_baselines as baselines;
pub use bside_cfg as cfg;
pub use bside_core as core;
pub use bside_dist as dist;
pub use bside_elf as elf;
pub use bside_filter as filter;
pub use bside_fleet as fleet;
pub use bside_gen as gen;
pub use bside_serve as serve;
pub use bside_symex as symex;
pub use bside_syscalls as syscalls;
pub use bside_x86 as x86;

pub use bside_core::{Analyzer, AnalyzerOptions, BinaryAnalysis, LibraryStore, SharedInterface};
pub use bside_filter::{FilterPolicy, PhasePolicy};
pub use bside_syscalls::{SyscallSet, Sysno};

/// Parses a positive worker count from an environment variable; `None`
/// when the variable is unset, empty, non-numeric, or zero.
fn positive_env(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Default analyzer options honoring the `BSIDE_PARALLELISM` worker-count
/// override — the one code path every CLI subcommand (and any embedder
/// wanting CLI-compatible behavior) goes through. Identical results at
/// any value: worker count is unobservable by the engine's determinism
/// contract.
pub fn analyzer_options_from_env() -> AnalyzerOptions {
    let mut options = AnalyzerOptions::default();
    if let Some(n) = positive_env("BSIDE_PARALLELISM") {
        options.parallelism = n;
    }
    options
}

/// The default worker-process count for `bside corpus`:
/// `BSIDE_PARALLELISM` when set, otherwise all cores.
pub fn default_worker_count() -> usize {
    positive_env("BSIDE_PARALLELISM").unwrap_or_else(bside_core::default_parallelism)
}
