//! # B-Side: binary-level static system call identification
//!
//! A complete Rust implementation of
//! *B-Side: Binary-Level Static System Call Identification*
//! (Thévenon et al., MIDDLEWARE 2024): a static binary-analysis framework
//! that identifies a precise superset of the system calls an x86-64 ELF
//! executable can invoke — with no access to source code — and derives
//! seccomp-style (optionally phase-based) filtering policies from it.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`syscalls`] | `bside-syscalls` | syscall table, [`SyscallSet`], CVE database |
//! | [`elf`] | `bside-elf` | ELF64 reader/writer |
//! | [`x86`] | `bside-x86` | decoder, assembler, concrete interpreter |
//! | [`mod@cfg`] | `bside-cfg` | CFG recovery, active address-taken heuristic |
//! | [`symex`] | `bside-symex` | backward-BFS + directed symbolic execution |
//! | [`core`] | `bside-core` | the analysis pipeline, wrappers, shared interfaces, phases |
//! | [`baselines`] | `bside-baselines` | Chestnut / SysFilter reimplementations |
//! | [`gen`] | `bside-gen` | synthetic ground-truth corpus generator |
//! | [`filter`] | `bside-filter` | policies, metrics, replay, CVE evaluation |
//!
//! # Quickstart
//!
//! ```
//! use bside::{Analyzer, AnalyzerOptions, FilterPolicy};
//!
//! // Generate a demo binary (in real use: read any x86-64 ELF from disk).
//! let program = bside::gen::profiles::lighttpd().program;
//!
//! // Identify its system calls.
//! let analysis = Analyzer::new(AnalyzerOptions::default())
//!     .analyze_static(&program.elf)?;
//!
//! // Derive a seccomp-style allow-list.
//! let policy = FilterPolicy::allow_only("lighttpd", analysis.syscalls);
//! assert!(policy.permits(bside::syscalls::well_known::READ));
//! assert!(!policy.permits(bside::syscalls::well_known::EXECVE));
//! # Ok::<(), bside::core::AnalysisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bside_baselines as baselines;
pub use bside_cfg as cfg;
pub use bside_core as core;
pub use bside_elf as elf;
pub use bside_filter as filter;
pub use bside_gen as gen;
pub use bside_symex as symex;
pub use bside_syscalls as syscalls;
pub use bside_x86 as x86;

pub use bside_core::{Analyzer, AnalyzerOptions, BinaryAnalysis, LibraryStore, SharedInterface};
pub use bside_filter::{FilterPolicy, PhasePolicy};
pub use bside_syscalls::{SyscallSet, Sysno};
