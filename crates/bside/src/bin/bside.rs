//! The `bside` command-line tool: analyze x86-64 ELF binaries, emit
//! policies and shared interfaces, detect execution phases.
//!
//! ```text
//! bside analyze <elf> [--lib NAME=PATH]... [--store DIR] [--policy] [--bpf] [--sites]
//! bside interface <lib.so> [--name NAME]
//! bside phases <elf> [--back-propagate]
//! bside corpus <dir> [--workers N] [--cache DIR] [--timeout SECS] [--in-process] [--report]
//! bside gen-corpus <out-dir> [--static N] [--seed N]
//! bside demo <out-dir>
//! ```

use bside::analyzer_options_from_env;
use bside::core::phase::{detect_phases, PhaseOptions};
use bside::core::{Analyzer, LibraryStore};
use bside::filter::FilterPolicy;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("interface") => cmd_interface(&args[1..]),
        Some("phases") => cmd_phases(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("gen-corpus") => cmd_gen_corpus(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        _ => {
            eprintln!("usage:");
            eprintln!("  bside analyze <elf> [--lib NAME=PATH]... [--store DIR] [--policy] [--bpf] [--sites]");
            eprintln!("  bside interface <lib.so> [--name NAME]");
            eprintln!("  bside phases <elf> [--back-propagate]");
            eprintln!("  bside corpus <dir> [--workers N] [--cache DIR] [--timeout SECS] [--in-process] [--report]");
            eprintln!("  bside gen-corpus <out-dir> [--static N] [--seed N]");
            eprintln!("  bside demo <out-dir>");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CmdResult = Result<(), Box<dyn std::error::Error>>;

fn load_elf(path: &str) -> Result<bside::elf::Elf, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(bside::elf::Elf::parse(&bytes).map_err(|e| format!("parsing {path}: {e}"))?)
}

fn cmd_analyze(args: &[String]) -> CmdResult {
    let mut path = None;
    let mut libs: Vec<(String, String)> = Vec::new();
    let mut store_dir: Option<String> = None;
    let mut want_policy = false;
    let mut want_bpf = false;
    let mut want_sites = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--lib" => {
                let spec = it.next().ok_or("--lib needs NAME=PATH")?;
                let (name, libpath) = spec
                    .split_once('=')
                    .ok_or("--lib argument must be NAME=PATH")?;
                libs.push((name.to_string(), libpath.to_string()));
            }
            "--store" => store_dir = Some(it.next().ok_or("--store needs DIR")?.clone()),
            "--policy" => want_policy = true,
            "--bpf" => want_bpf = true,
            "--sites" => want_sites = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let path = path.ok_or("missing <elf> argument")?;
    let elf = load_elf(&path)?;

    let analyzer = Analyzer::new(analyzer_options_from_env());
    let analysis = if elf.needed_libraries().is_empty() {
        analyzer.analyze_static(&elf)?
    } else {
        // Load cached interfaces (the §4.5 once-per-library phase) and
        // analyze whatever is still missing.
        let mut store = match &store_dir {
            Some(dir) if std::path::Path::new(dir).exists() => {
                LibraryStore::load_from_dir(std::path::Path::new(dir))?
            }
            _ => LibraryStore::new(),
        };
        for (name, libpath) in &libs {
            if !store.contains(name) {
                let lib_elf = load_elf(libpath)?;
                store.insert(analyzer.analyze_library(&lib_elf, name, None)?);
            }
        }
        if let Some(dir) = &store_dir {
            store.save_to_dir(std::path::Path::new(dir))?;
        }
        analyzer.analyze_dynamic(&elf, &store, &[])?
    };

    eprintln!(
        "# {} syscall(s), {} site(s), {} wrapper(s), precise: {}",
        analysis.syscalls.len(),
        analysis.sites.len(),
        analysis.wrappers.len(),
        analysis.precise
    );
    if want_sites {
        for site in &analysis.sites {
            println!(
                "site {:#x} ({}) [{:?}]: {}",
                site.site,
                site.function.as_deref().unwrap_or("?"),
                site.outcome,
                site.syscalls
            );
        }
    }
    if want_bpf {
        let policy = FilterPolicy::allow_only(path.clone(), analysis.syscalls);
        print!(
            "{}",
            bside::filter::bpf::BpfProgram::from_policy(&policy).listing()
        );
    } else if want_policy {
        let policy = FilterPolicy::allow_only(path, analysis.syscalls);
        println!("{}", policy.to_json());
    } else {
        for sysno in &analysis.syscalls {
            println!("{:>3} {}", sysno.raw(), sysno);
        }
    }
    Ok(())
}

fn cmd_interface(args: &[String]) -> CmdResult {
    let mut path = None;
    let mut name = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--name" => name = Some(it.next().ok_or("--name needs a value")?.clone()),
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let path = path.ok_or("missing <lib.so> argument")?;
    let elf = load_elf(&path)?;
    let lib_name = name.unwrap_or_else(|| {
        std::path::Path::new(&path)
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or(path.clone())
    });
    let analyzer = Analyzer::new(analyzer_options_from_env());
    let interface = analyzer.analyze_library(&elf, &lib_name, None)?;
    println!("{}", interface.to_json());
    Ok(())
}

fn cmd_phases(args: &[String]) -> CmdResult {
    let mut path = None;
    let mut back_propagate = false;
    for arg in args {
        match arg.as_str() {
            "--back-propagate" => back_propagate = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let path = path.ok_or("missing <elf> argument")?;
    let elf = load_elf(&path)?;
    let analyzer = Analyzer::new(analyzer_options_from_env());
    let analysis = analyzer.analyze_static(&elf)?;
    let site_sets: HashMap<u64, bside::SyscallSet> = analysis
        .sites
        .iter()
        .map(|s| (s.site, s.syscalls))
        .collect();
    let mut automaton = detect_phases(&analysis.cfg, &site_sets, &PhaseOptions::default());
    if back_propagate {
        automaton.back_propagate();
    }
    eprintln!(
        "# {} phases from {} DFA states; whole-program set: {} syscalls; gain {:.1}%",
        automaton.phases.len(),
        automaton.dfa_states,
        analysis.syscalls.len(),
        100.0 * automaton.strictness_gain(&analysis.syscalls)
    );
    for phase in &automaton.phases {
        println!(
            "phase {:>3}: {:>3} syscalls, {:>6} bytes, {} transition target(s)",
            phase.id,
            phase.allowed().len(),
            phase.code_bytes,
            phase.transitions.len()
        );
    }
    Ok(())
}

/// The ordered `(name, path)` unit list of a corpus directory: every
/// regular file, sorted by file name. `gen-corpus` prefixes names with
/// the corpus index, so lexicographic order is generation order.
fn corpus_units(
    dir: &str,
) -> Result<Vec<(String, std::path::PathBuf)>, Box<dyn std::error::Error>> {
    let mut units = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| format!("reading {dir}: {e}"))? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            let path = entry.path();
            // Unit paths cross the worker protocol as JSON strings, so a
            // non-UTF-8 name cannot round-trip; reject it up front rather
            // than failing the unit with a misleading read error.
            if path.to_str().is_none() {
                return Err(format!(
                    "corpus file {} has a non-UTF-8 name, which the worker protocol cannot carry",
                    path.display()
                )
                .into());
            }
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| entry.file_name().to_string_lossy().into_owned());
            units.push((name, path));
        }
    }
    units.sort();
    if units.is_empty() {
        return Err(format!("{dir} contains no corpus binaries").into());
    }
    Ok(units)
}

fn cmd_corpus(args: &[String]) -> CmdResult {
    let mut dir = None;
    let mut workers: Option<usize> = None;
    let mut cache_dir: Option<String> = None;
    let mut timeout_secs: Option<u64> = None;
    let mut in_process = false;
    let mut want_report = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                let n: usize = it
                    .next()
                    .ok_or("--workers needs N")?
                    .parse()
                    .map_err(|_| "--workers needs a positive integer")?;
                if n == 0 {
                    return Err("--workers needs a positive integer".into());
                }
                workers = Some(n);
            }
            "--cache" => cache_dir = Some(it.next().ok_or("--cache needs DIR")?.clone()),
            "--timeout" => {
                let secs: u64 = it
                    .next()
                    .ok_or("--timeout needs SECS")?
                    .parse()
                    .map_err(|_| "--timeout needs a positive integer")?;
                if secs == 0 {
                    return Err("--timeout needs a positive integer".into());
                }
                timeout_secs = Some(secs);
            }
            "--in-process" => in_process = true,
            "--report" => want_report = true,
            other if dir.is_none() => dir = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let dir = dir.ok_or("missing <dir> argument")?;
    let units = corpus_units(&dir)?;

    if in_process {
        let ignored: Vec<&str> = [
            cache_dir.as_ref().map(|_| "--cache"),
            workers.map(|_| "--workers"),
            timeout_secs.map(|_| "--timeout"),
        ]
        .into_iter()
        .flatten()
        .collect();
        if !ignored.is_empty() {
            eprintln!(
                "# note: {} only apply to distributed runs; ignored with --in-process",
                ignored.join("/")
            );
        }
        // The single-address-space reference path: same report renderer
        // and same per-unit degradation as the distributed engine (an
        // unreadable or non-ELF file fails that unit, with the same
        // message a worker would produce, instead of aborting the run),
        // so `--report` output is byte-comparable against a distributed
        // run even over degraded corpora.
        let mut rows: Vec<Option<Result<bside::BinaryAnalysis, String>>> = Vec::new();
        rows.resize_with(units.len(), || None);
        let mut images: Vec<(usize, String, Vec<u8>)> = Vec::new();
        for (i, (name, path)) in units.iter().enumerate() {
            let display = path.to_string_lossy();
            match std::fs::read(path) {
                Ok(bytes) => images.push((i, name.clone(), bytes)),
                Err(e) => {
                    rows[i] = Some(Err(bside::dist::worker::read_error_message(&display, &e)))
                }
            }
        }
        let mut elfs: Vec<(usize, String, bside::elf::Elf)> = Vec::new();
        for (i, name, bytes) in &images {
            match bside::elf::Elf::parse(bytes) {
                Ok(elf) => elfs.push((*i, name.clone(), elf)),
                Err(e) => {
                    let display = units[*i].1.to_string_lossy();
                    rows[*i] = Some(Err(bside::dist::worker::parse_error_message(&display, &e)));
                }
            }
        }
        let refs: Vec<(&str, &bside::elf::Elf)> =
            elfs.iter().map(|(_, n, e)| (n.as_str(), e)).collect();
        let results = Analyzer::new(analyzer_options_from_env()).analyze_corpus(&refs);
        for ((i, _, _), (_, result)) in elfs.iter().zip(results) {
            rows[*i] = Some(result.map_err(|e| e.to_string()));
        }
        let rows: Vec<(String, Result<bside::BinaryAnalysis, String>)> = units
            .iter()
            .zip(rows)
            .map(|((name, _), row)| (name.clone(), row.expect("every unit classified")))
            .collect();
        if want_report {
            print!(
                "{}",
                bside::dist::report::render_units(
                    rows.iter()
                        .map(|(name, r)| (name.as_str(), r.as_ref().map_err(Clone::clone)))
                )
            );
        } else {
            for (name, result) in &rows {
                match result {
                    Ok(a) => println!(
                        "{name}: {} syscall(s), precise: {}",
                        a.syscalls.len(),
                        a.precise
                    ),
                    Err(e) => println!("{name}: error: {e}"),
                }
            }
        }
        let failed = rows.iter().filter(|(_, r)| r.is_err()).count();
        eprintln!("# in-process: {} binarie(s), {} failed", rows.len(), failed);
        if failed > 0 {
            return Err(format!("{failed} corpus unit(s) failed").into());
        }
        return Ok(());
    }

    let run = bside::dist::analyze_corpus_dist(
        &units,
        &bside::dist::DistOptions {
            workers: workers.unwrap_or_else(bside::default_worker_count),
            analyzer: analyzer_options_from_env(),
            unit_timeout: std::time::Duration::from_secs(timeout_secs.unwrap_or(60)),
            cache_dir: cache_dir.map(std::path::PathBuf::from),
            ..bside::dist::DistOptions::default()
        },
    )?;
    if want_report {
        print!("{}", bside::dist::report_of_run(&run));
    } else {
        for unit in &run.results {
            let provenance = if unit.from_cache {
                " (cached)"
            } else if unit.attempts > 1 {
                " (retried)"
            } else {
                ""
            };
            match &unit.result {
                Ok(a) => println!(
                    "{}: {} syscall(s), precise: {}{provenance}",
                    unit.name,
                    a.syscalls.len(),
                    a.precise
                ),
                Err(f) => println!("{}: error [{}]: {}", unit.name, f.kind, f.message),
            }
        }
    }
    let s = run.stats;
    eprintln!(
        "# distributed: {} unit(s) over {} worker(s): {} cached, {} retried, {} crash(es), {} timeout(s), {} failure(s)",
        s.units, s.workers, s.cache_hits, s.retries, s.worker_crashes, s.timeouts, s.failures
    );
    if s.failures > 0 {
        return Err(format!("{} corpus unit(s) failed", s.failures).into());
    }
    Ok(())
}

fn cmd_gen_corpus(args: &[String]) -> CmdResult {
    let mut dir = None;
    let mut n_static: usize = 16;
    let mut seed: u64 = bside::gen::corpus::DEFAULT_SEED;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--static" => {
                n_static = it
                    .next()
                    .ok_or("--static needs N")?
                    .parse()
                    .map_err(|_| "--static needs a positive integer")?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs N")?
                    .parse()
                    .map_err(|_| "--seed needs an integer")?;
            }
            other if dir.is_none() => dir = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let dir = dir.ok_or("missing <out-dir> argument")?;
    let corpus = bside::gen::corpus::corpus_with_size(seed, n_static, 0, 0);
    let units = corpus.materialize_static(std::path::Path::new(&dir))?;
    eprintln!("wrote {} corpus binarie(s) to {dir}", units.len());
    Ok(())
}

fn cmd_demo(args: &[String]) -> CmdResult {
    let out = args.first().ok_or("missing <out-dir> argument")?;
    std::fs::create_dir_all(out)?;
    for profile in bside::gen::profiles::all_profiles() {
        let path = format!("{out}/{}", profile.name);
        std::fs::write(&path, &profile.program.image)?;
        eprintln!("wrote {path} ({} bytes)", profile.program.image.len());
    }
    // A small shared object as a target for `bside interface`.
    let lib = bside::gen::generate_library(&bside::gen::LibrarySpec {
        name: "libdemo.so".into(),
        exports: vec![
            bside::gen::ExportSpec {
                name: "demo_read".into(),
                syscalls: vec![0],
                calls: vec![],
            },
            bside::gen::ExportSpec {
                name: "demo_write_close".into(),
                syscalls: vec![1, 3],
                calls: vec!["demo_read".into()],
            },
        ],
        wrapper_style: bside::gen::WrapperStyle::Register,
        base: 0x7000_0000,
        libs: vec![],
    });
    let path = format!("{out}/libdemo.so");
    std::fs::write(&path, &lib.image)?;
    eprintln!("wrote {path} ({} bytes)", lib.image.len());
    Ok(())
}
