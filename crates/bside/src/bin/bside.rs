//! The `bside` command-line tool: analyze x86-64 ELF binaries, emit
//! policies and shared interfaces, detect execution phases, run the
//! distributed corpus engine, and serve policies as a daemon.
//!
//! The subcommand set — dispatch and usage listing alike — is generated
//! from the single table in [`bside::cli::SUBCOMMANDS`]; run with no
//! arguments for the listing.

use std::process::ExitCode;

fn main() -> ExitCode {
    // Chaos opt-in (BSIDE_NET_FAULT_PLAN) happens here in main, never
    // lazily in the codec: a malformed plan refuses to start.
    if let Err(e) = bside_dist::fault::init_from_env() {
        eprintln!("bside: {e}");
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    bside::cli::run(&args)
}
