//! The `bside` command-line tool: analyze x86-64 ELF binaries, emit
//! policies and shared interfaces, detect execution phases.
//!
//! ```text
//! bside analyze <elf> [--lib NAME=PATH]... [--store DIR] [--policy] [--bpf] [--sites]
//! bside interface <lib.so> [--name NAME]
//! bside phases <elf> [--back-propagate]
//! bside demo <out-dir>
//! ```

use bside::core::phase::{detect_phases, PhaseOptions};
use bside::core::{Analyzer, AnalyzerOptions, LibraryStore};
use bside::filter::FilterPolicy;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("interface") => cmd_interface(&args[1..]),
        Some("phases") => cmd_phases(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        _ => {
            eprintln!("usage:");
            eprintln!("  bside analyze <elf> [--lib NAME=PATH]... [--store DIR] [--policy] [--bpf] [--sites]");
            eprintln!("  bside interface <lib.so> [--name NAME]");
            eprintln!("  bside phases <elf> [--back-propagate]");
            eprintln!("  bside demo <out-dir>");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CmdResult = Result<(), Box<dyn std::error::Error>>;

fn load_elf(path: &str) -> Result<bside::elf::Elf, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(bside::elf::Elf::parse(&bytes).map_err(|e| format!("parsing {path}: {e}"))?)
}

/// Default analyzer options, honoring a `BSIDE_PARALLELISM` worker-count
/// override (identical results at any value; see the determinism test).
fn analyzer_options() -> AnalyzerOptions {
    let mut options = AnalyzerOptions::default();
    if let Some(n) = std::env::var("BSIDE_PARALLELISM")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        options.parallelism = n;
    }
    options
}

fn cmd_analyze(args: &[String]) -> CmdResult {
    let mut path = None;
    let mut libs: Vec<(String, String)> = Vec::new();
    let mut store_dir: Option<String> = None;
    let mut want_policy = false;
    let mut want_bpf = false;
    let mut want_sites = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--lib" => {
                let spec = it.next().ok_or("--lib needs NAME=PATH")?;
                let (name, libpath) = spec
                    .split_once('=')
                    .ok_or("--lib argument must be NAME=PATH")?;
                libs.push((name.to_string(), libpath.to_string()));
            }
            "--store" => store_dir = Some(it.next().ok_or("--store needs DIR")?.clone()),
            "--policy" => want_policy = true,
            "--bpf" => want_bpf = true,
            "--sites" => want_sites = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let path = path.ok_or("missing <elf> argument")?;
    let elf = load_elf(&path)?;

    let analyzer = Analyzer::new(analyzer_options());
    let analysis = if elf.needed_libraries().is_empty() {
        analyzer.analyze_static(&elf)?
    } else {
        // Load cached interfaces (the §4.5 once-per-library phase) and
        // analyze whatever is still missing.
        let mut store = match &store_dir {
            Some(dir) if std::path::Path::new(dir).exists() => {
                LibraryStore::load_from_dir(std::path::Path::new(dir))?
            }
            _ => LibraryStore::new(),
        };
        for (name, libpath) in &libs {
            if !store.contains(name) {
                let lib_elf = load_elf(libpath)?;
                store.insert(analyzer.analyze_library(&lib_elf, name, None)?);
            }
        }
        if let Some(dir) = &store_dir {
            store.save_to_dir(std::path::Path::new(dir))?;
        }
        analyzer.analyze_dynamic(&elf, &store, &[])?
    };

    eprintln!(
        "# {} syscall(s), {} site(s), {} wrapper(s), precise: {}",
        analysis.syscalls.len(),
        analysis.sites.len(),
        analysis.wrappers.len(),
        analysis.precise
    );
    if want_sites {
        for site in &analysis.sites {
            println!(
                "site {:#x} ({}) [{:?}]: {}",
                site.site,
                site.function.as_deref().unwrap_or("?"),
                site.outcome,
                site.syscalls
            );
        }
    }
    if want_bpf {
        let policy = FilterPolicy::allow_only(path.clone(), analysis.syscalls);
        print!(
            "{}",
            bside::filter::bpf::BpfProgram::from_policy(&policy).listing()
        );
    } else if want_policy {
        let policy = FilterPolicy::allow_only(path, analysis.syscalls);
        println!("{}", policy.to_json());
    } else {
        for sysno in &analysis.syscalls {
            println!("{:>3} {}", sysno.raw(), sysno);
        }
    }
    Ok(())
}

fn cmd_interface(args: &[String]) -> CmdResult {
    let mut path = None;
    let mut name = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--name" => name = Some(it.next().ok_or("--name needs a value")?.clone()),
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let path = path.ok_or("missing <lib.so> argument")?;
    let elf = load_elf(&path)?;
    let lib_name = name.unwrap_or_else(|| {
        std::path::Path::new(&path)
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or(path.clone())
    });
    let analyzer = Analyzer::new(analyzer_options());
    let interface = analyzer.analyze_library(&elf, &lib_name, None)?;
    println!("{}", interface.to_json());
    Ok(())
}

fn cmd_phases(args: &[String]) -> CmdResult {
    let mut path = None;
    let mut back_propagate = false;
    for arg in args {
        match arg.as_str() {
            "--back-propagate" => back_propagate = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let path = path.ok_or("missing <elf> argument")?;
    let elf = load_elf(&path)?;
    let analyzer = Analyzer::new(analyzer_options());
    let analysis = analyzer.analyze_static(&elf)?;
    let site_sets: HashMap<u64, bside::SyscallSet> = analysis
        .sites
        .iter()
        .map(|s| (s.site, s.syscalls))
        .collect();
    let mut automaton = detect_phases(&analysis.cfg, &site_sets, &PhaseOptions::default());
    if back_propagate {
        automaton.back_propagate();
    }
    eprintln!(
        "# {} phases from {} DFA states; whole-program set: {} syscalls; gain {:.1}%",
        automaton.phases.len(),
        automaton.dfa_states,
        analysis.syscalls.len(),
        100.0 * automaton.strictness_gain(&analysis.syscalls)
    );
    for phase in &automaton.phases {
        println!(
            "phase {:>3}: {:>3} syscalls, {:>6} bytes, {} transition target(s)",
            phase.id,
            phase.allowed().len(),
            phase.code_bytes,
            phase.transitions.len()
        );
    }
    Ok(())
}

fn cmd_demo(args: &[String]) -> CmdResult {
    let out = args.first().ok_or("missing <out-dir> argument")?;
    std::fs::create_dir_all(out)?;
    for profile in bside::gen::profiles::all_profiles() {
        let path = format!("{out}/{}", profile.name);
        std::fs::write(&path, &profile.program.image)?;
        eprintln!("wrote {path} ({} bytes)", profile.program.image.len());
    }
    // A small shared object as a target for `bside interface`.
    let lib = bside::gen::generate_library(&bside::gen::LibrarySpec {
        name: "libdemo.so".into(),
        exports: vec![
            bside::gen::ExportSpec {
                name: "demo_read".into(),
                syscalls: vec![0],
                calls: vec![],
            },
            bside::gen::ExportSpec {
                name: "demo_write_close".into(),
                syscalls: vec![1, 3],
                calls: vec!["demo_read".into()],
            },
        ],
        wrapper_style: bside::gen::WrapperStyle::Register,
        base: 0x7000_0000,
        libs: vec![],
    });
    let path = format!("{out}/libdemo.so");
    std::fs::write(&path, &lib.image)?;
    eprintln!("wrote {path} ({} bytes)", lib.image.len());
    Ok(())
}
