//! The `bside` command-line interface.
//!
//! Every subcommand lives in [`SUBCOMMANDS`] — one table owning the
//! name, the usage line, and the handler — and both dispatch and the
//! usage listing are generated from it. That makes "a subcommand exists
//! but the usage listing doesn't mention it" unrepresentable (PR 2 had
//! to restore a hand-maintained `demo` line that had drifted away);
//! a test below walks the table to keep it that way.

use crate::analyzer_options_from_env;
use bside_core::phase::{detect_phases, PhaseOptions};
use bside_core::{Analyzer, LibraryStore};
use bside_filter::FilterPolicy;
use bside_obs as obs;
use bside_serve::{Endpoint, PolicyClient, PolicyServer, ServeOptions};
use std::collections::HashMap;
use std::process::ExitCode;

/// The result a subcommand handler returns.
pub type CmdResult = Result<(), Box<dyn std::error::Error>>;

/// One entry of the CLI: its name, its argument synopsis, its handler.
pub struct Subcommand {
    /// The first CLI argument selecting this subcommand.
    pub name: &'static str,
    /// The argument synopsis shown in the usage listing.
    pub synopsis: &'static str,
    /// The handler, given the arguments after the subcommand name.
    pub run: fn(&[String]) -> CmdResult,
}

/// The single source of truth for dispatch *and* the usage listing.
pub const SUBCOMMANDS: &[Subcommand] = &[
    Subcommand {
        name: "analyze",
        synopsis: "<elf> [--lib NAME=PATH]... [--store DIR] [--policy] [--bpf] [--sites]",
        run: cmd_analyze,
    },
    Subcommand {
        name: "interface",
        synopsis: "<lib.so> [--name NAME]",
        run: cmd_interface,
    },
    Subcommand {
        name: "phases",
        synopsis: "<elf> [--back-propagate]",
        run: cmd_phases,
    },
    Subcommand {
        name: "corpus",
        synopsis: "<dir> [--workers N] [--fleet LISTEN_ADDR] [--fleet-secret SECRET] \
                   [--heartbeat-secs SECS] [--unit-timeout-secs SECS] [--max-attempts N] \
                   [--cache DIR] [--timeout SECS] [--in-process] [--report] \
                   [--trace-out FILE] [--metrics-dump]",
        run: cmd_corpus,
    },
    Subcommand {
        name: "gen-corpus",
        synopsis: "<out-dir> [--static N] [--dynamic N] [--libs N] [--seed N]",
        run: cmd_gen_corpus,
    },
    Subcommand {
        name: "serve",
        synopsis: "(--socket PATH | --tcp ADDR) [--store DIR] [--lib-dir DIR] [--threads N] \
                   [--fleet LISTEN_ADDR] [--fleet-secret SECRET]",
        run: cmd_serve,
    },
    Subcommand {
        name: "agent",
        synopsis: "--connect HOST:PORT [--slots N] [--dial-timeout SECS] \
                   [--fleet-secret SECRET] [--heartbeat-secs SECS] [--no-reconnect] \
                   [--metrics-dump]",
        run: cmd_agent,
    },
    Subcommand {
        name: "policy",
        synopsis: "(<elf> [--json|--bpf|--disasm] | --invalidate KEY | --watch [KEY] | --stats | \
                   --metrics | --ping | --shutdown) (--socket PATH | --tcp ADDR)",
        run: cmd_policy,
    },
    Subcommand {
        name: "replay",
        synopsis: "<elf> [--events N] [--seed N] [--repeats N] [--trace FILE] [--phased] \
                   [--json] [--check] [--metrics-dump]",
        run: cmd_replay,
    },
    Subcommand {
        name: "demo",
        synopsis: "<out-dir>",
        run: cmd_demo,
    },
];

/// The usage listing, generated from [`SUBCOMMANDS`].
pub fn usage() -> String {
    let mut out = String::from("usage:\n");
    for sc in SUBCOMMANDS {
        out.push_str("  bside ");
        out.push_str(sc.name);
        if !sc.synopsis.is_empty() {
            out.push(' ');
            out.push_str(sc.synopsis);
        }
        out.push('\n');
    }
    out
}

/// Dispatches `args` (everything after the program name) through the
/// table. Unknown or missing subcommands print the usage listing.
pub fn run(args: &[String]) -> ExitCode {
    let subcommand = args
        .first()
        .and_then(|name| SUBCOMMANDS.iter().find(|sc| sc.name == name));
    let Some(subcommand) = subcommand else {
        eprint!("{}", usage());
        return ExitCode::from(2);
    };
    match (subcommand.run)(&args[1..]) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load_elf(path: &str) -> Result<bside_elf::Elf, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(bside_elf::Elf::parse(&bytes).map_err(|e| format!("parsing {path}: {e}"))?)
}

fn cmd_analyze(args: &[String]) -> CmdResult {
    let mut path = None;
    let mut libs: Vec<(String, String)> = Vec::new();
    let mut store_dir: Option<String> = None;
    let mut want_policy = false;
    let mut want_bpf = false;
    let mut want_sites = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--lib" => {
                let spec = it.next().ok_or("--lib needs NAME=PATH")?;
                let (name, libpath) = spec
                    .split_once('=')
                    .ok_or("--lib argument must be NAME=PATH")?;
                libs.push((name.to_string(), libpath.to_string()));
            }
            "--store" => store_dir = Some(it.next().ok_or("--store needs DIR")?.clone()),
            "--policy" => want_policy = true,
            "--bpf" => want_bpf = true,
            "--sites" => want_sites = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let path = path.ok_or("missing <elf> argument")?;
    let elf = load_elf(&path)?;

    let analyzer = Analyzer::new(analyzer_options_from_env());
    let analysis = if elf.needed_libraries().is_empty() {
        analyzer.analyze_static(&elf)?
    } else {
        // Load cached interfaces (the §4.5 once-per-library phase) and
        // analyze whatever is still missing.
        let mut store = match &store_dir {
            Some(dir) if std::path::Path::new(dir).exists() => {
                LibraryStore::load_from_dir(std::path::Path::new(dir))?
            }
            _ => LibraryStore::new(),
        };
        for (name, libpath) in &libs {
            if !store.contains(name) {
                let lib_elf = load_elf(libpath)?;
                store.insert(analyzer.analyze_library(&lib_elf, name, None)?);
            }
        }
        if let Some(dir) = &store_dir {
            store.save_to_dir(std::path::Path::new(dir))?;
        }
        analyzer.analyze_dynamic(&elf, &store, &[])?
    };

    eprintln!(
        "# {} syscall(s), {} site(s), {} wrapper(s), precise: {}",
        analysis.syscalls.len(),
        analysis.sites.len(),
        analysis.wrappers.len(),
        analysis.precise
    );
    if want_sites {
        for site in &analysis.sites {
            println!(
                "site {:#x} ({}) [{:?}]: {}",
                site.site,
                site.function.as_deref().unwrap_or("?"),
                site.outcome,
                site.syscalls
            );
        }
    }
    if want_bpf {
        let policy = FilterPolicy::allow_only(path.clone(), analysis.syscalls);
        print!(
            "{}",
            bside_filter::bpf::BpfProgram::from_policy(&policy).listing()
        );
    } else if want_policy {
        let policy = FilterPolicy::allow_only(path, analysis.syscalls);
        println!("{}", serde_json::to_string_pretty(&policy)?);
    } else {
        for sysno in &analysis.syscalls {
            println!("{:>3} {}", sysno.raw(), sysno);
        }
    }
    Ok(())
}

fn cmd_interface(args: &[String]) -> CmdResult {
    let mut path = None;
    let mut name = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--name" => name = Some(it.next().ok_or("--name needs a value")?.clone()),
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let path = path.ok_or("missing <lib.so> argument")?;
    let elf = load_elf(&path)?;
    let lib_name = name.unwrap_or_else(|| {
        std::path::Path::new(&path)
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or(path.clone())
    });
    let analyzer = Analyzer::new(analyzer_options_from_env());
    let interface = analyzer.analyze_library(&elf, &lib_name, None)?;
    println!("{}", interface.to_json());
    Ok(())
}

fn cmd_phases(args: &[String]) -> CmdResult {
    let mut path = None;
    let mut back_propagate = false;
    for arg in args {
        match arg.as_str() {
            "--back-propagate" => back_propagate = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let path = path.ok_or("missing <elf> argument")?;
    let elf = load_elf(&path)?;
    let analyzer = Analyzer::new(analyzer_options_from_env());
    let analysis = analyzer.analyze_static(&elf)?;
    let site_sets: HashMap<u64, bside_syscalls::SyscallSet> = analysis
        .sites
        .iter()
        .map(|s| (s.site, s.syscalls))
        .collect();
    let mut automaton = detect_phases(&analysis.cfg, &site_sets, &PhaseOptions::default());
    if back_propagate {
        automaton.back_propagate();
    }
    eprintln!(
        "# {} phases from {} DFA states; whole-program set: {} syscalls; gain {:.1}%",
        automaton.phases.len(),
        automaton.dfa_states,
        analysis.syscalls.len(),
        100.0 * automaton.strictness_gain(&analysis.syscalls)
    );
    for phase in &automaton.phases {
        println!(
            "phase {:>3}: {:>3} syscalls, {:>6} bytes, {} transition target(s)",
            phase.id,
            phase.allowed().len(),
            phase.code_bytes,
            phase.transitions.len()
        );
    }
    Ok(())
}

/// The ordered `(name, path)` unit list of a corpus directory: every
/// regular file, sorted by file name. `gen-corpus` prefixes names with
/// the corpus index, so lexicographic order is generation order.
fn corpus_units(
    dir: &str,
) -> Result<Vec<(String, std::path::PathBuf)>, Box<dyn std::error::Error>> {
    let mut units = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| format!("reading {dir}: {e}"))? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            let path = entry.path();
            // Unit paths cross the worker protocol as JSON strings, so a
            // non-UTF-8 name cannot round-trip; reject it up front rather
            // than failing the unit with a misleading read error.
            if path.to_str().is_none() {
                return Err(format!(
                    "corpus file {} has a non-UTF-8 name, which the worker protocol cannot carry",
                    path.display()
                )
                .into());
            }
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| entry.file_name().to_string_lossy().into_owned());
            units.push((name, path));
        }
    }
    units.sort();
    if units.is_empty() {
        return Err(format!("{dir} contains no corpus binaries").into());
    }
    Ok(units)
}

fn cmd_corpus(args: &[String]) -> CmdResult {
    let mut dir = None;
    let mut workers: Option<usize> = None;
    let mut fleet_listen: Option<String> = None;
    let mut fleet_secret: Option<String> = None;
    let mut heartbeat_secs: Option<u64> = None;
    let mut unit_timeout_secs: Option<u64> = None;
    let mut max_attempts: Option<u32> = None;
    let mut cache_dir: Option<String> = None;
    let mut timeout_secs: Option<u64> = None;
    let mut in_process = false;
    let mut want_report = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_dump = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fleet" => {
                fleet_listen = Some(it.next().ok_or("--fleet needs LISTEN_ADDR")?.clone());
            }
            "--fleet-secret" => {
                fleet_secret = Some(it.next().ok_or("--fleet-secret needs SECRET")?.clone());
            }
            "--heartbeat-secs" => {
                let secs: u64 = it
                    .next()
                    .ok_or("--heartbeat-secs needs SECS")?
                    .parse()
                    .map_err(|_| "--heartbeat-secs needs a positive integer")?;
                if secs == 0 {
                    return Err("--heartbeat-secs needs a positive integer".into());
                }
                heartbeat_secs = Some(secs);
            }
            "--unit-timeout-secs" => {
                let secs: u64 = it
                    .next()
                    .ok_or("--unit-timeout-secs needs SECS")?
                    .parse()
                    .map_err(|_| "--unit-timeout-secs needs a positive integer")?;
                if secs == 0 {
                    return Err("--unit-timeout-secs needs a positive integer".into());
                }
                unit_timeout_secs = Some(secs);
            }
            "--max-attempts" => {
                let n: u32 = it
                    .next()
                    .ok_or("--max-attempts needs N")?
                    .parse()
                    .map_err(|_| "--max-attempts needs a positive integer")?;
                if n == 0 {
                    return Err("--max-attempts needs a positive integer".into());
                }
                max_attempts = Some(n);
            }
            "--workers" => {
                let n: usize = it
                    .next()
                    .ok_or("--workers needs N")?
                    .parse()
                    .map_err(|_| "--workers needs a positive integer")?;
                if n == 0 {
                    return Err("--workers needs a positive integer".into());
                }
                workers = Some(n);
            }
            "--cache" => cache_dir = Some(it.next().ok_or("--cache needs DIR")?.clone()),
            "--timeout" => {
                let secs: u64 = it
                    .next()
                    .ok_or("--timeout needs SECS")?
                    .parse()
                    .map_err(|_| "--timeout needs a positive integer")?;
                if secs == 0 {
                    return Err("--timeout needs a positive integer".into());
                }
                timeout_secs = Some(secs);
            }
            "--in-process" => in_process = true,
            "--report" => want_report = true,
            "--trace-out" => trace_out = Some(it.next().ok_or("--trace-out needs FILE")?.clone()),
            "--metrics-dump" => metrics_dump = true,
            other if dir.is_none() => dir = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let dir = dir.ok_or("missing <dir> argument")?;
    let units = corpus_units(&dir)?;
    if in_process && fleet_listen.is_some() {
        return Err("--in-process and --fleet are mutually exclusive".into());
    }
    if fleet_listen.is_none() {
        let fleet_only: Vec<&str> = [
            fleet_secret.as_ref().map(|_| "--fleet-secret"),
            heartbeat_secs.map(|_| "--heartbeat-secs"),
            unit_timeout_secs.map(|_| "--unit-timeout-secs"),
            max_attempts.map(|_| "--max-attempts"),
        ]
        .into_iter()
        .flatten()
        .collect();
        if !fleet_only.is_empty() {
            return Err(format!("{} require(s) --fleet LISTEN_ADDR", fleet_only.join("/")).into());
        }
    }
    if unit_timeout_secs.is_some() && timeout_secs.is_some() {
        return Err("--unit-timeout-secs and --timeout set the same deadline; pick one".into());
    }

    if in_process {
        let ignored: Vec<&str> = [
            cache_dir.as_ref().map(|_| "--cache"),
            workers.map(|_| "--workers"),
            timeout_secs.map(|_| "--timeout"),
        ]
        .into_iter()
        .flatten()
        .collect();
        if !ignored.is_empty() {
            eprintln!(
                "# note: {} only apply to distributed runs; ignored with --in-process",
                ignored.join("/")
            );
        }
        // The single-address-space reference path: same report renderer
        // and same per-unit degradation as the distributed engine (an
        // unreadable or non-ELF file fails that unit, with the same
        // message a worker would produce, instead of aborting the run),
        // so `--report` output is byte-comparable against a distributed
        // run even over degraded corpora.
        let mut rows: Vec<Option<Result<bside_core::BinaryAnalysis, String>>> = Vec::new();
        rows.resize_with(units.len(), || None);
        let mut images: Vec<(usize, String, Vec<u8>)> = Vec::new();
        for (i, (name, path)) in units.iter().enumerate() {
            let display = path.to_string_lossy();
            match std::fs::read(path) {
                Ok(bytes) => images.push((i, name.clone(), bytes)),
                Err(e) => rows[i] = Some(Err(bside_dist::worker::read_error_message(&display, &e))),
            }
        }
        let mut elfs: Vec<(usize, String, bside_elf::Elf)> = Vec::new();
        for (i, name, bytes) in &images {
            match bside_elf::Elf::parse(bytes) {
                Ok(elf) => elfs.push((*i, name.clone(), elf)),
                Err(e) => {
                    let display = units[*i].1.to_string_lossy();
                    rows[*i] = Some(Err(bside_dist::worker::parse_error_message(&display, &e)));
                }
            }
        }
        let refs: Vec<(&str, &bside_elf::Elf)> =
            elfs.iter().map(|(_, n, e)| (n.as_str(), e)).collect();
        let results = Analyzer::new(analyzer_options_from_env()).analyze_corpus(&refs);
        for ((i, _, _), (_, result)) in elfs.iter().zip(results) {
            rows[*i] = Some(result.map_err(|e| e.to_string()));
        }
        let rows: Vec<(String, Result<bside_core::BinaryAnalysis, String>)> = units
            .iter()
            .zip(rows)
            .map(|((name, _), row)| (name.clone(), row.expect("every unit classified")))
            .collect();
        if want_report {
            print!(
                "{}",
                bside_dist::report::render_units(
                    rows.iter()
                        .map(|(name, r)| (name.as_str(), r.as_ref().map_err(Clone::clone)))
                )
            );
        } else {
            for (name, result) in &rows {
                match result {
                    Ok(a) => println!(
                        "{name}: {} syscall(s), precise: {}",
                        a.syscalls.len(),
                        a.precise
                    ),
                    Err(e) => println!("{name}: error: {e}"),
                }
            }
        }
        let failed = rows.iter().filter(|(_, r)| r.is_err()).count();
        eprintln!("# in-process: {} binarie(s), {} failed", rows.len(), failed);
        dump_telemetry(trace_out.as_deref(), metrics_dump)?;
        if failed > 0 {
            return Err(format!("{failed} corpus unit(s) failed").into());
        }
        return Ok(());
    }

    let run = if let Some(listen) = &fleet_listen {
        // Machines mode: listen for remote agents and ship binaries in
        // band — no worker processes are spawned here.
        if let Some(n) = workers {
            eprintln!(
                "# note: --workers {n} is the local-process knob; agents bring their own slots"
            );
        }
        let endpoint = bside_fleet::connect_endpoint(listen);
        let defaults = bside_fleet::FleetOptions::default();
        // --heartbeat-secs moves both the announced interval and the
        // reaper deadline, preserving the default 5x interval/timeout
        // ratio so a slower heartbeat doesn't shrink the grace window.
        let heartbeat_interval = heartbeat_secs
            .map(std::time::Duration::from_secs)
            .unwrap_or(defaults.heartbeat_interval);
        let secret = bside_fleet::auth::resolve_secret(fleet_secret);
        let sealed = secret.is_some();
        let handle = bside_fleet::FleetCoordinator::bind(
            &endpoint,
            bside_fleet::FleetOptions {
                analyzer: analyzer_options_from_env(),
                unit_timeout: std::time::Duration::from_secs(
                    unit_timeout_secs.or(timeout_secs).unwrap_or(60),
                ),
                heartbeat_interval,
                heartbeat_timeout: heartbeat_interval * 5,
                max_attempts: max_attempts.unwrap_or(defaults.max_attempts),
                cache_dir: cache_dir.map(std::path::PathBuf::from),
                secret,
                registry: Some(obs::global()),
            },
        )?;
        eprintln!(
            "bside corpus --fleet: coordinating on {}{}; waiting for agents \
             (`bside agent --connect {listen}` on any machine)",
            handle.endpoint(),
            if sealed { " [authenticated]" } else { "" }
        );
        while !handle.wait_for_agents(1, std::time::Duration::from_secs(1)) {}
        let run = bside_fleet::analyze_corpus_fleet(&units, &handle)?;
        let f = handle.stats();
        handle.shutdown();
        eprintln!(
            "# fleet: {} agent(s) joined, {} lost, {} rejected, {} unit(s) dispatched, \
             {} retried, {} timeout(s)",
            f.agents_joined, f.agents_lost, f.agents_rejected, f.dispatched, f.retries, f.timeouts
        );
        run
    } else {
        bside_dist::analyze_corpus_dist(
            &units,
            &bside_dist::DistOptions {
                workers: workers.unwrap_or_else(crate::default_worker_count),
                analyzer: analyzer_options_from_env(),
                unit_timeout: std::time::Duration::from_secs(timeout_secs.unwrap_or(60)),
                cache_dir: cache_dir.map(std::path::PathBuf::from),
                ..bside_dist::DistOptions::default()
            },
        )?
    };
    if want_report {
        print!("{}", bside_dist::report_of_run(&run));
    } else {
        for unit in &run.results {
            let provenance = if unit.from_cache {
                " (cached)"
            } else if unit.attempts > 1 {
                " (retried)"
            } else {
                ""
            };
            match &unit.result {
                Ok(a) => println!(
                    "{}: {} syscall(s), precise: {}{provenance}",
                    unit.name,
                    a.syscalls.len(),
                    a.precise
                ),
                Err(f) => println!("{}: error [{}]: {}", unit.name, f.kind, f.message),
            }
        }
    }
    let s = run.stats;
    let mode = if fleet_listen.is_some() {
        ("fleet", "agent(s)")
    } else {
        ("distributed", "worker(s)")
    };
    eprintln!(
        "# {}: {} unit(s) over {} {}: {} cached, {} retried, {} crash(es), {} timeout(s), {} failure(s)",
        mode.0, s.units, s.workers, mode.1, s.cache_hits, s.retries, s.worker_crashes, s.timeouts, s.failures
    );
    dump_telemetry(trace_out.as_deref(), metrics_dump)?;
    if s.failures > 0 {
        return Err(format!("{} corpus unit(s) failed", s.failures).into());
    }
    Ok(())
}

fn cmd_agent(args: &[String]) -> CmdResult {
    let mut connect: Option<String> = None;
    let mut slots: Option<usize> = None;
    let mut dial_timeout: u64 = 10;
    let mut fleet_secret: Option<String> = None;
    let mut heartbeat_cap: Option<u64> = None;
    let mut reconnect = true;
    let mut metrics_dump = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => connect = Some(it.next().ok_or("--connect needs HOST:PORT")?.clone()),
            "--slots" => {
                let n: usize = it
                    .next()
                    .ok_or("--slots needs N")?
                    .parse()
                    .map_err(|_| "--slots needs a positive integer")?;
                if n == 0 {
                    return Err("--slots needs a positive integer".into());
                }
                slots = Some(n);
            }
            "--dial-timeout" => {
                dial_timeout = it
                    .next()
                    .ok_or("--dial-timeout needs SECS")?
                    .parse()
                    .map_err(|_| "--dial-timeout needs a non-negative integer")?;
            }
            "--fleet-secret" => {
                fleet_secret = Some(it.next().ok_or("--fleet-secret needs SECRET")?.clone());
            }
            "--heartbeat-secs" => {
                let secs: u64 = it
                    .next()
                    .ok_or("--heartbeat-secs needs SECS")?
                    .parse()
                    .map_err(|_| "--heartbeat-secs needs a positive integer")?;
                if secs == 0 {
                    return Err("--heartbeat-secs needs a positive integer".into());
                }
                heartbeat_cap = Some(secs);
            }
            "--no-reconnect" => reconnect = false,
            "--metrics-dump" => metrics_dump = true,
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let connect = connect.ok_or("missing --connect HOST:PORT")?;
    let endpoint = bside_fleet::connect_endpoint(&connect);
    let slots = slots.unwrap_or_else(crate::default_worker_count);
    let options = bside_fleet::AgentOptions {
        slots,
        dial_timeout: Some(std::time::Duration::from_secs(dial_timeout)),
        secret: bside_fleet::auth::resolve_secret(fleet_secret),
        heartbeat_cap: heartbeat_cap.map(std::time::Duration::from_secs),
        ..bside_fleet::AgentOptions::default()
    };
    eprintln!(
        "bside agent: dialing {endpoint} with {slots} slot(s){}",
        if options.secret.is_some() {
            " (authenticated)"
        } else {
            ""
        }
    );
    let report = if reconnect {
        bside_fleet::run_agent_loop(&endpoint, &options)?
    } else {
        bside_fleet::run_agent(&endpoint, &options)?
    };
    eprintln!(
        "bside agent: coordinator said goodbye after {} unit(s) over {} session(s); exiting",
        report.units, report.sessions
    );
    dump_telemetry(None, metrics_dump)?;
    Ok(())
}

fn cmd_gen_corpus(args: &[String]) -> CmdResult {
    let mut dir = None;
    let mut n_static: usize = 16;
    let mut n_dynamic: usize = 0;
    let mut n_libs: usize = 0;
    let mut seed: u64 = bside_gen::corpus::DEFAULT_SEED;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--static" => {
                n_static = it
                    .next()
                    .ok_or("--static needs N")?
                    .parse()
                    .map_err(|_| "--static needs a positive integer")?;
            }
            "--dynamic" => {
                n_dynamic = it
                    .next()
                    .ok_or("--dynamic needs N")?
                    .parse()
                    .map_err(|_| "--dynamic needs a positive integer")?;
            }
            "--libs" => {
                n_libs = it
                    .next()
                    .ok_or("--libs needs N")?
                    .parse()
                    .map_err(|_| "--libs needs a positive integer")?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs N")?
                    .parse()
                    .map_err(|_| "--seed needs an integer")?;
            }
            other if dir.is_none() => dir = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let dir = dir.ok_or("missing <out-dir> argument")?;
    if n_dynamic > 0 && n_libs == 0 {
        return Err("--dynamic needs a library pool; pass --libs N too".into());
    }
    let corpus = bside_gen::corpus::corpus_with_size(seed, n_static, n_dynamic, n_libs);
    if n_dynamic == 0 && n_libs == 0 {
        let units = corpus.materialize_static(std::path::Path::new(&dir))?;
        eprintln!("wrote {} corpus binarie(s) to {dir}", units.len());
    } else {
        let (units, libs) = corpus.materialize(std::path::Path::new(&dir))?;
        eprintln!(
            "wrote {} corpus binarie(s) ({n_dynamic} dynamic) to {dir} and {} librarie(s) to {dir}/libs",
            units.len(),
            libs.len()
        );
    }
    Ok(())
}

/// The export tail `--trace-out` / `--metrics-dump` share: drains every
/// span ring into one Chrome trace-event JSON file (load it in
/// `chrome://tracing` or Perfetto) and prints the process-global
/// registry in Prometheus text exposition format — the same rendering
/// the serve daemon's `metrics` request returns.
fn dump_telemetry(trace_out: Option<&str>, metrics_dump: bool) -> CmdResult {
    if let Some(path) = trace_out {
        let spans = obs::drain_trace();
        std::fs::write(path, obs::chrome_trace_json(&spans))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("# trace: {} span(s) written to {path}", spans.len());
    }
    if metrics_dump {
        print!("{}", obs::global().render_prometheus());
    }
    Ok(())
}

/// Parses the endpoint half of `serve`/`policy` argument lists:
/// `--socket PATH` or `--tcp ADDR`.
fn endpoint_arg(
    it: &mut std::slice::Iter<'_, String>,
    arg: &str,
) -> Result<Option<Endpoint>, Box<dyn std::error::Error>> {
    match arg {
        "--socket" => {
            let path = it.next().ok_or("--socket needs PATH")?;
            Ok(Some(Endpoint::Unix(std::path::PathBuf::from(path))))
        }
        "--tcp" => {
            let addr = it.next().ok_or("--tcp needs ADDR")?;
            Ok(Some(Endpoint::Tcp(addr.clone())))
        }
        _ => Ok(None),
    }
}

fn cmd_serve(args: &[String]) -> CmdResult {
    let mut endpoint: Option<Endpoint> = None;
    let mut store_dir: Option<String> = None;
    let mut lib_dir: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut fleet_listen: Option<String> = None;
    let mut fleet_secret: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(ep) = endpoint_arg(&mut it, arg)? {
            endpoint = Some(ep);
            continue;
        }
        match arg.as_str() {
            "--store" => store_dir = Some(it.next().ok_or("--store needs DIR")?.clone()),
            "--lib-dir" => lib_dir = Some(it.next().ok_or("--lib-dir needs DIR")?.clone()),
            "--fleet" => {
                fleet_listen = Some(it.next().ok_or("--fleet needs LISTEN_ADDR")?.clone());
            }
            "--fleet-secret" => {
                fleet_secret = Some(it.next().ok_or("--fleet-secret needs SECRET")?.clone());
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .ok_or("--threads needs N")?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer")?;
                if n == 0 {
                    return Err("--threads needs a positive integer".into());
                }
                threads = Some(n);
            }
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let endpoint = endpoint.ok_or("missing --socket PATH or --tcp ADDR")?;
    // Test/CI hook: widen the single-flight race window so concurrent
    // cold fetches coalesce deterministically in smoke scripts.
    let analysis_delay = std::env::var("BSIDE_SERVE_ANALYSIS_DELAY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(std::time::Duration::from_millis);
    let mut options = ServeOptions {
        store_dir: store_dir.map(std::path::PathBuf::from),
        library_dir: lib_dir.map(std::path::PathBuf::from),
        threads: threads.unwrap_or_else(crate::default_worker_count),
        analyzer: analyzer_options_from_env(),
        analysis_delay,
        registry: Some(obs::global()),
        ..ServeOptions::default()
    };
    if fleet_listen.is_none() && fleet_secret.is_some() {
        return Err("--fleet-secret requires --fleet LISTEN_ADDR".into());
    }
    // Fleet offload: spawn a coordinator (same analyzer options — store
    // keys fingerprint them) and route analyze-on-miss leaders to it.
    let fleet = match &fleet_listen {
        Some(listen) => {
            let fleet_endpoint = bside_fleet::connect_endpoint(listen);
            let secret = bside_fleet::auth::resolve_secret(fleet_secret);
            let sealed = secret.is_some();
            let handle = bside_fleet::FleetCoordinator::bind(
                &fleet_endpoint,
                bside_fleet::FleetOptions {
                    analyzer: options.analyzer.clone(),
                    secret,
                    registry: Some(obs::global()),
                    ..bside_fleet::FleetOptions::default()
                },
            )?;
            eprintln!(
                "bside-serve: fleet coordinator on {}{}; analyze-on-miss is offloaded \
                 (`bside agent --connect {listen}` on any machine)",
                handle.endpoint(),
                if sealed { " [authenticated]" } else { "" }
            );
            // A bounded offload wait keeps a daemon with zero (or saturated)
            // agents serving: past the budget the leader answers in band
            // and the client may retry. The env hook exists so smoke tests
            // can shrink the budget and exercise the degraded path quickly.
            let budget = std::env::var("BSIDE_SERVE_OFFLOAD_BUDGET_SECS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&secs| secs > 0)
                .unwrap_or(600);
            options.remote_analyzer = Some(bside_fleet::serve_offload(
                handle.submitter(),
                std::time::Duration::from_secs(budget),
            ));
            Some(handle)
        }
        None => None,
    };
    let threads = options.threads;
    let handle = PolicyServer::spawn(&endpoint, options)?;
    eprintln!(
        "bside-serve: listening on {} ({} thread(s)); send a `shutdown` request (`bside policy --shutdown`) to stop",
        handle.endpoint(),
        threads
    );
    handle.join();
    if let Some(fleet) = fleet {
        fleet.shutdown();
    }
    eprintln!("bside-serve: shut down cleanly");
    Ok(())
}

fn cmd_policy(args: &[String]) -> CmdResult {
    let mut elf: Option<String> = None;
    let mut endpoint: Option<Endpoint> = None;
    let mut want_json = false;
    let mut want_bpf = false;
    let mut want_disasm = false;
    let mut invalidate_key: Option<String> = None;
    let mut watch_key: Option<String> = None;
    let mut mode: Option<&'static str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(ep) = endpoint_arg(&mut it, arg)? {
            endpoint = Some(ep);
            continue;
        }
        match arg.as_str() {
            "--json" => want_json = true,
            "--bpf" => want_bpf = true,
            "--disasm" => want_disasm = true,
            "--invalidate" => {
                invalidate_key = Some(it.next().ok_or("--invalidate needs KEY")?.clone());
                mode = Some("invalidate");
            }
            "--watch" => {
                mode = Some("watch");
                // The KEY is optional; it is recognized by shape (the
                // canonical 64-hex store key) so `--watch --socket …`
                // still parses as a keyless watch.
                let next_is_key = it.clone().next().is_some_and(|a| {
                    a.len() == 64 && a.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f'))
                });
                if next_is_key {
                    watch_key = it.next().cloned();
                }
            }
            "--stats" => mode = Some("stats"),
            "--metrics" => mode = Some("metrics"),
            "--ping" => mode = Some("ping"),
            "--shutdown" => mode = Some("shutdown"),
            other if elf.is_none() => elf = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let endpoint = endpoint.ok_or("missing --socket PATH or --tcp ADDR")?;
    // Control requests are cheap, so a hang (saturated or wedged daemon)
    // should surface as an error; a policy fetch may legitimately wait
    // behind a cold analysis, and a watch blocks by design, so those
    // connections carry no read timeout.
    let mut client = match mode {
        Some("stats") | Some("metrics") | Some("ping") | Some("shutdown") | Some("invalidate") => {
            PolicyClient::connect_with(&endpoint, Some(std::time::Duration::from_secs(30)))?
        }
        _ => PolicyClient::connect(&endpoint)?,
    };
    match mode {
        Some("stats") => {
            let stats = client.stats()?;
            println!("{}", serde_json::to_string_pretty(&stats)?);
            return Ok(());
        }
        Some("metrics") => {
            print!("{}", client.metrics()?);
            return Ok(());
        }
        Some("ping") => {
            client.ping()?;
            println!("pong");
            return Ok(());
        }
        Some("shutdown") => {
            client.shutdown_server()?;
            eprintln!("# server acknowledged shutdown");
            return Ok(());
        }
        Some("invalidate") => {
            let key = invalidate_key.expect("mode implies key");
            let (removed, generation) = client.invalidate(&key)?;
            println!(
                "{} (generation {generation})",
                if removed {
                    "invalidated"
                } else {
                    "unknown key"
                }
            );
            return Ok(());
        }
        Some("watch") => {
            // Anchor on the hello's generation and block until the store
            // mutates — the push channel for enforcement agents. With a
            // KEY, only mutations of that entry fire the watch (v5).
            let seen = client.generation_at_connect();
            let generation = match watch_key.as_deref() {
                Some(key) => {
                    eprintln!("# watching key {key} from generation {seen}");
                    client.wait_for_key(key, seen)?
                }
                None => {
                    eprintln!("# watching from generation {seen}");
                    client.wait_for_generation(seen)?
                }
            };
            println!("generation {generation}");
            return Ok(());
        }
        _ => {}
    }
    let elf = elf.ok_or(
        "missing <elf> argument (or --invalidate/--watch/--stats/--metrics/--ping/--shutdown)",
    )?;
    // The daemon resolves the path on *its* filesystem; hand it an
    // absolute path so client and daemon working directories need not
    // agree.
    let absolute = std::fs::canonicalize(&elf).map_err(|e| format!("resolving {elf}: {e}"))?;
    let path = absolute
        .to_str()
        .ok_or("non-UTF-8 paths cannot cross the protocol")?;
    let fetch = client.fetch_path(path)?;
    eprintln!(
        "# {}: source: {}, key: {}, generation: {}, {} syscall(s) allowed, {} phase(s)",
        fetch.bundle.binary,
        match fetch.source {
            bside_serve::Source::Store => "store",
            bside_serve::Source::Analyzed => "analyzed",
            bside_serve::Source::Coalesced => "coalesced",
        },
        fetch.key,
        fetch.generation,
        fetch.bundle.policy.allowed.len(),
        fetch.bundle.phases.phases.len(),
    );
    if want_disasm {
        // The stored program is the compile-gated (optimized) lowering;
        // the naive one is recomputed locally from the same policy so the
        // two columns are guaranteed to describe the same allow-set.
        let naive = bside_filter::bpf::BpfProgram::from_policy(&fetch.bundle.policy);
        print!(
            "{}",
            side_by_side(
                &format!("naive ({} insns)", naive.insns.len()),
                &naive.listing(),
                &format!("stored/optimized ({} insns)", fetch.bundle.bpf.insns.len()),
                &fetch.bundle.bpf.listing(),
            )
        );
    } else if want_bpf {
        print!("{}", fetch.bundle.bpf.listing());
    } else if want_json {
        println!("{}", serde_json::to_string_pretty(&fetch.bundle.policy)?);
    } else {
        for sysno in &fetch.bundle.policy.allowed {
            println!("{:>3} {}", sysno.raw(), sysno);
        }
    }
    Ok(())
}

/// Renders two instruction listings in aligned columns — the
/// `policy --disasm` output format.
fn side_by_side(left_title: &str, left: &str, right_title: &str, right: &str) -> String {
    let l: Vec<&str> = left.lines().collect();
    let r: Vec<&str> = right.lines().collect();
    let width = l
        .iter()
        .map(|s| s.len())
        .chain([left_title.len()])
        .max()
        .unwrap_or(0)
        + 2;
    let mut out = format!("{left_title:<width$}| {right_title}\n");
    for i in 0..l.len().max(r.len()) {
        let lv = l.get(i).copied().unwrap_or("");
        let rv = r.get(i).copied().unwrap_or("");
        out.push_str(&format!("{lv:<width$}| {rv}\n"));
    }
    out
}

/// Parses a recorded trace file: whitespace-separated syscall numbers
/// or names (`0 read openat 60`).
fn parse_trace(path: &str) -> Result<Vec<bside_syscalls::Sysno>, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    text.split_whitespace()
        .map(|tok| {
            if let Ok(nr) = tok.parse::<u32>() {
                bside_syscalls::Sysno::new(nr)
                    .ok_or_else(|| format!("{path}: syscall number {nr} out of range").into())
            } else {
                bside_syscalls::Sysno::from_name(tok)
                    .ok_or_else(|| format!("{path}: unknown syscall name `{tok}`").into())
            }
        })
        .collect()
}

fn cmd_replay(args: &[String]) -> CmdResult {
    use bside_filter::{bpf::BpfProgram, compile, replay};

    let mut elf: Option<String> = None;
    let mut events = 1_000_000usize;
    let mut seed: u64 = 0xB51DE;
    let mut repeats = 3usize;
    let mut trace_file: Option<String> = None;
    let mut phased = false;
    let mut want_json = false;
    let mut check = false;
    let mut metrics_dump = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--events" => events = it.next().ok_or("--events needs N")?.parse()?,
            "--seed" => seed = it.next().ok_or("--seed needs N")?.parse()?,
            "--repeats" => repeats = it.next().ok_or("--repeats needs N")?.parse()?,
            "--trace" => trace_file = Some(it.next().ok_or("--trace needs FILE")?.clone()),
            "--phased" => phased = true,
            "--json" => want_json = true,
            "--check" => check = true,
            "--metrics-dump" => metrics_dump = true,
            other if elf.is_none() => elf = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}").into()),
        }
    }
    let path = elf.ok_or("missing <elf> argument")?;
    let bytes = std::fs::read(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let name = bside_serve::binary_name(std::path::Path::new(&path));
    let bundle = bside_serve::derive_bundle(&name, &bytes, &analyzer_options_from_env(), None)
        .map_err(|e| format!("deriving policy: {e}"))?;

    // The flat leg: naive lowering vs the gate-checked compiler output.
    let naive = BpfProgram::from_policy(&bundle.policy);
    let compiled = compile::compile(&bundle.policy);
    let trace = match &trace_file {
        Some(file) => parse_trace(file)?,
        None => replay::synthesize_flat_trace(&bundle.policy, events, seed),
    };
    if trace.is_empty() {
        return Err("empty trace: the policy permits no system calls".into());
    }
    // Recorded traces may contain violations; synthesized ones cannot.
    let violations = replay::replay_flat(&bundle.policy, &trace).len();
    let flat = replay::measure_throughput(&naive, &compiled.program, &trace, repeats)
        .map_err(|e| format!("flat replay: {e}"))?;
    replay::record_throughput(&obs::global(), &flat);

    let phased_report = if phased {
        if bundle.phases.phases.is_empty() {
            return Err("--phased: the binary's phase automaton is empty".into());
        }
        let r = replay::measure_phased_throughput(&bundle.phases, events, seed, repeats)
            .map_err(|e| format!("phased replay: {e}"))?;
        Some(r)
    } else {
        None
    };

    let report = &compiled.report;
    if want_json {
        let gate = match (&report.proof, &report.fallback) {
            (Some(p), _) => format!(
                "{{\"passed\":true,\"points\":{},\"arch_candidates\":{},\"nr_candidates\":{}}}",
                p.points, p.arch_candidates, p.nr_candidates
            ),
            (None, Some(why)) => format!("{{\"passed\":false,\"fallback\":{why:?}}}"),
            (None, None) => "{\"passed\":false}".to_string(),
        };
        let leg = |tag: &str, r: &replay::ThroughputReport| {
            format!(
                "\"{tag}\":{{\"events\":{},\"repeats\":{},\"naive_len\":{},\"optimized_len\":{},\
                 \"naive_ns_per_eval\":{:.2},\"optimized_ns_per_eval\":{:.2},\"speedup\":{:.3}}}",
                r.events,
                r.repeats,
                r.naive_len,
                r.optimized_len,
                r.naive_ns_per_eval,
                r.optimized_ns_per_eval,
                r.speedup()
            )
        };
        let mut legs = leg("flat", &flat);
        if let Some(p) = &phased_report {
            legs.push(',');
            legs.push_str(&leg("phased", p));
        }
        println!(
            "{{\"binary\":{:?},\"used_optimized\":{},\"gate\":{gate},\
             \"violations\":{violations},{legs}}}",
            name, report.used_optimized
        );
    } else {
        let leg = |tag: &str, r: &replay::ThroughputReport| {
            println!(
                "{tag}: naive {} insns @ {:.1} ns/eval | optimized {} insns @ {:.1} ns/eval | \
                 speedup {:.2}x ({} events, best of {})",
                r.naive_len,
                r.naive_ns_per_eval,
                r.optimized_len,
                r.optimized_ns_per_eval,
                r.speedup(),
                r.events,
                r.repeats
            );
        };
        eprintln!(
            "# {name}: {} syscall(s) allowed, gate {}, {violations} violation(s) in trace",
            bundle.policy.allowed.len(),
            match (&report.proof, &report.fallback) {
                (Some(p), _) => format!("passed ({} points)", p.points),
                (None, Some(why)) => format!("FELL BACK ({why})"),
                (None, None) => "not run".to_string(),
            }
        );
        leg("flat", &flat);
        if let Some(p) = &phased_report {
            leg("phased", p);
        }
    }

    if check {
        // The CI contract: the optimized program must win on both axes
        // and the equivalence gate must actually have selected it.
        if !report.used_optimized {
            return Err(format!(
                "--check: equivalence gate fell back to naive: {}",
                report.fallback.as_deref().unwrap_or("unknown")
            )
            .into());
        }
        for (tag, r) in
            std::iter::once(("flat", &flat)).chain(phased_report.iter().map(|p| ("phased", p)))
        {
            if r.optimized_len > r.naive_len {
                return Err(format!(
                    "--check: {tag} optimized program is larger than naive \
                     ({} > {} insns)",
                    r.optimized_len, r.naive_len
                )
                .into());
            }
            if r.optimized_ns_per_eval > r.naive_ns_per_eval {
                return Err(format!(
                    "--check: {tag} optimized program is slower than naive \
                     ({:.1} > {:.1} ns/eval)",
                    r.optimized_ns_per_eval, r.naive_ns_per_eval
                )
                .into());
            }
        }
    }
    dump_telemetry(None, metrics_dump)
}

fn cmd_demo(args: &[String]) -> CmdResult {
    let out = args.first().ok_or("missing <out-dir> argument")?;
    std::fs::create_dir_all(out)?;
    for profile in bside_gen::profiles::all_profiles() {
        let path = format!("{out}/{}", profile.name);
        std::fs::write(&path, &profile.program.image)?;
        eprintln!("wrote {path} ({} bytes)", profile.program.image.len());
    }
    // A small shared object as a target for `bside interface`.
    let lib = bside_gen::generate_library(&bside_gen::LibrarySpec {
        name: "libdemo.so".into(),
        exports: vec![
            bside_gen::ExportSpec {
                name: "demo_read".into(),
                syscalls: vec![0],
                calls: vec![],
            },
            bside_gen::ExportSpec {
                name: "demo_write_close".into(),
                syscalls: vec![1, 3],
                calls: vec!["demo_read".into()],
            },
        ],
        wrapper_style: bside_gen::WrapperStyle::Register,
        base: 0x7000_0000,
        libs: vec![],
    });
    let path = format!("{out}/libdemo.so");
    std::fs::write(&path, &lib.image)?;
    eprintln!("wrote {path} ({} bytes)", lib.image.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The anti-drift contract: the usage listing is generated from the
    /// same table dispatch walks, so every dispatchable subcommand
    /// appears in it — including its synopsis.
    #[test]
    fn every_dispatch_arm_appears_in_usage() {
        let usage = usage();
        for sc in SUBCOMMANDS {
            let line = format!("  bside {} {}", sc.name, sc.synopsis);
            assert!(
                usage.contains(&line),
                "subcommand `{}` missing from usage:\n{usage}",
                sc.name
            );
        }
    }

    #[test]
    fn subcommand_names_are_unique() {
        for (i, a) in SUBCOMMANDS.iter().enumerate() {
            for b in &SUBCOMMANDS[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate subcommand");
            }
        }
    }

    /// `ExitCode` has no `PartialEq`; its `Debug` rendering is the
    /// comparable surface.
    fn code(c: ExitCode) -> String {
        format!("{c:?}")
    }

    /// `run()` really routes through the table: a known subcommand
    /// reaches its handler (observable as the handler's own argument
    /// error, not the usage exit), an unknown or missing one exits 2.
    #[test]
    fn run_dispatches_through_the_table() {
        assert_eq!(
            code(run(&["no-such-subcommand".to_string()])),
            code(ExitCode::from(2)),
            "unknown subcommand falls through to usage"
        );
        assert_eq!(code(run(&[])), code(ExitCode::from(2)), "no subcommand");
        // Every table entry's handler rejects an empty argument list
        // with its own missing-argument error — cheap, and distinct
        // from the usage exit code, so reaching it proves dispatch.
        for sc in SUBCOMMANDS {
            assert_eq!(
                code(run(&[sc.name.to_string()])),
                code(ExitCode::FAILURE),
                "`{}` with no arguments must reach its handler and \
                 fail there (missing-argument error), not print usage",
                sc.name
            );
        }
    }

    /// The satellite regression: `demo` (the line PR 2 had to restore by
    /// hand) can no longer drift out of the listing.
    #[test]
    fn demo_is_listed() {
        assert!(usage().contains("bside demo <out-dir>"));
    }
}
