//! Shared-secret link authentication: HMAC-SHA256 (RFC 2104) over the
//! hand-rolled SHA-256 already powering the content-addressed result
//! cache (`bside_dist::cache`).
//!
//! The fleet trusts any LAN peer that can speak the hello — which is
//! fine on a closed rack and fatal anywhere else, because an admitted
//! agent's results land in the shared result cache. Authentication is
//! woven into the existing capability handshake rather than bolted on
//! as a separate round trip:
//!
//! 1. the coordinator opens every connection with a `challenge` frame
//!    carrying a fresh random nonce (sent whether or not a secret is
//!    configured, so the handshake shape never depends on deployment);
//! 2. the agent's `hello` carries `auth = HMAC(secret, nonce ‖ version
//!    ‖ slots ‖ cache_format)` — binding the MAC to the hello fields
//!    means a relay cannot splice a genuine MAC onto a different
//!    capability claim;
//! 3. both sides derive a per-session key from `(secret, nonce)` and the
//!    agent **seals** every subsequent frame: `mac = HMAC(session_key,
//!    seq ‖ body)` with a strictly increasing sequence number, so a
//!    mid-session injector can neither forge a result frame nor replay a
//!    stale one into the cache.
//!
//! The secret is a shared string (`--fleet-secret` /
//! `BSIDE_FLEET_SECRET`); no key exchange, no PKI — the deployment model
//! is "one secret per fleet", matching the single shared result cache.

use bside_dist::sha256_hex;

/// SHA-256's internal block size in bytes — the HMAC key pad width.
const BLOCK: usize = 64;

/// Decodes the lowercase-hex digest `sha256_hex` renders back into its
/// 32 raw bytes. Digests are produced locally, so malformed input is a
/// programming error.
fn hex_digest_bytes(hex: &str) -> [u8; 32] {
    debug_assert_eq!(hex.len(), 64, "SHA-256 hex digest is 64 chars");
    let mut out = [0u8; 32];
    let bytes = hex.as_bytes();
    for (i, slot) in out.iter_mut().enumerate() {
        let hi = (bytes[2 * i] as char).to_digit(16).expect("hex digest");
        let lo = (bytes[2 * i + 1] as char).to_digit(16).expect("hex digest");
        *slot = ((hi << 4) | lo) as u8;
    }
    out
}

/// HMAC-SHA256 (RFC 2104) over the concatenation of `chunks`, as
/// lowercase hex. Keys longer than the block size are hashed first;
/// shorter keys are zero-padded, exactly per the RFC.
pub fn hmac_sha256_hex(key: &[u8], chunks: &[&[u8]]) -> String {
    let shortened;
    let key = if key.len() > BLOCK {
        shortened = hex_digest_bytes(&sha256_hex(&[key]));
        &shortened[..]
    } else {
        key
    };
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for (i, &b) in key.iter().enumerate() {
        ipad[i] ^= b;
        opad[i] ^= b;
    }
    let mut inner_input: Vec<&[u8]> = Vec::with_capacity(chunks.len() + 1);
    inner_input.push(&ipad);
    inner_input.extend_from_slice(chunks);
    let inner = hex_digest_bytes(&sha256_hex(&inner_input));
    sha256_hex(&[&opad, &inner])
}

/// A fresh per-connection challenge nonce: 64 hex chars of SHA-256 over
/// process identity, wall-clock nanoseconds, and a process-wide counter.
/// Unpredictability (not just uniqueness) is not load-bearing here — the
/// MAC covers the hello fields and the per-frame sequence numbers, so
/// the nonce only has to never repeat for the same secret.
pub fn fresh_nonce() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    sha256_hex(&[
        &std::process::id().to_le_bytes(),
        &nanos.to_le_bytes(),
        &count.to_le_bytes(),
    ])
}

/// The hello MAC: binds the challenge nonce to the hello's capability
/// fields, so an authenticated agent cannot have its announced version,
/// slot count, or cache format altered in flight.
pub fn hello_mac(
    secret: &str,
    nonce: &str,
    version: u32,
    slots: usize,
    cache_format: u32,
) -> String {
    let fields = format!("{version}|{slots}|{cache_format}");
    hmac_sha256_hex(
        secret.as_bytes(),
        &[
            b"bside-fleet-hello|",
            nonce.as_bytes(),
            b"|",
            fields.as_bytes(),
        ],
    )
}

/// Derives the per-session sealing key from the shared secret and the
/// connection's challenge nonce. Returned as the 32 raw digest bytes —
/// the HMAC key for [`frame_mac`].
pub fn session_key(secret: &str, nonce: &str) -> [u8; 32] {
    hex_digest_bytes(&hmac_sha256_hex(
        secret.as_bytes(),
        &[b"bside-fleet-session|", nonce.as_bytes()],
    ))
}

/// The per-frame MAC sealing `body` (a serialized agent frame) under the
/// session key at sequence number `seq`. Covering `seq` is what turns
/// the MAC into replay protection: a duplicated or reordered sealed
/// frame fails the strictly-increasing sequence check without its MAC
/// ever verifying against a different number.
pub fn frame_mac(session_key: &[u8], seq: u64, body: &str) -> String {
    let seq = seq.to_string();
    hmac_sha256_hex(
        session_key,
        &[b"bside-fleet-frame|", seq.as_bytes(), b"|", body.as_bytes()],
    )
}

/// Resolves the fleet secret from an explicit flag value or the
/// `BSIDE_FLEET_SECRET` environment variable (flag wins). An empty
/// string from either source means "no secret".
pub fn resolve_secret(flag: Option<String>) -> Option<String> {
    flag.or_else(|| std::env::var("BSIDE_FLEET_SECRET").ok())
        .filter(|s| !s.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 4231 test case 1: 20 bytes of 0x0b, "Hi There".
    #[test]
    fn hmac_matches_rfc_4231_case_1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hmac_sha256_hex(&key, &[b"Hi There"]),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2: key "Jefe", a key shorter than the block.
    #[test]
    fn hmac_matches_rfc_4231_case_2() {
        assert_eq!(
            hmac_sha256_hex(b"Jefe", &[b"what do ya want for nothing?"]),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 6: a 131-byte key exercises the hash-the-key
    /// path (key longer than one SHA-256 block).
    #[test]
    fn hmac_hashes_oversized_keys_per_rfc_4231_case_6() {
        let key = [0xaau8; 131];
        assert_eq!(
            hmac_sha256_hex(
                &key,
                &[b"Test Using Larger Than Block-Size Key - Hash Key First"]
            ),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    /// Chunked input hashes identically to the concatenation — the
    /// property every multi-field MAC in this module leans on.
    #[test]
    fn hmac_is_chunking_invariant() {
        assert_eq!(
            hmac_sha256_hex(b"k", &[b"hello world"]),
            hmac_sha256_hex(b"k", &[b"hello", b" ", b"world"]),
        );
    }

    #[test]
    fn nonces_are_distinct_and_well_formed() {
        let a = fresh_nonce();
        let b = fresh_nonce();
        assert_ne!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.bytes().all(|c| c.is_ascii_hexdigit()));
    }

    /// Every bound field changes the hello MAC — a spliced capability
    /// claim cannot reuse a genuine MAC.
    #[test]
    fn hello_mac_binds_every_field() {
        let base = hello_mac("s3cret", "nonce", 2, 4, 1);
        assert_ne!(base, hello_mac("other", "nonce", 2, 4, 1), "secret");
        assert_ne!(base, hello_mac("s3cret", "econon", 2, 4, 1), "nonce");
        assert_ne!(base, hello_mac("s3cret", "nonce", 3, 4, 1), "version");
        assert_ne!(base, hello_mac("s3cret", "nonce", 2, 5, 1), "slots");
        assert_ne!(base, hello_mac("s3cret", "nonce", 2, 4, 2), "cache format");
        assert_eq!(base, hello_mac("s3cret", "nonce", 2, 4, 1), "deterministic");
    }

    /// Frame MACs bind the sequence number, so a replayed frame cannot
    /// verify under a fresh sequence number.
    #[test]
    fn frame_mac_binds_sequence_and_body() {
        let key = session_key("s3cret", "nonce");
        let base = frame_mac(&key, 7, "{\"type\":\"heartbeat\"}");
        assert_ne!(base, frame_mac(&key, 8, "{\"type\":\"heartbeat\"}"), "seq");
        assert_ne!(base, frame_mac(&key, 7, "{\"type\":\"hello\"}"), "body");
        let other_key = session_key("s3cret", "other-nonce");
        assert_ne!(base, frame_mac(&other_key, 7, "{\"type\":\"heartbeat\"}"));
    }

    /// Field separators are unambiguous: moving a byte across the `|`
    /// boundary changes the MAC (no length-extension-style gluing).
    #[test]
    fn hello_mac_separates_nonce_from_fields() {
        assert_ne!(hello_mac("s", "ab", 2, 4, 1), hello_mac("s", "a", 2, 4, 1));
    }
}
