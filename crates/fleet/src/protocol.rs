//! The coordinator ↔ agent wire protocol.
//!
//! Newline-delimited JSON over a [`bside_serve::net::Conn`] (TCP between
//! machines, Unix sockets for same-host tests), one message per line,
//! each a single JSON object tagged by a `"type"` field — the exact
//! framing the dist and serve protocols use, through the same shared
//! codec ([`read_message_capped`]/[`write_message`] re-exported from
//! `bside_dist::protocol`), so framing errors and the line cap behave
//! identically in all three.
//!
//! ```text
//! coordinator → agent   {"type":"challenge","nonce":"9f2c…"}
//! agent → coordinator   {"type":"hello","version":2,"slots":2,"cache_format":1,
//!                        "auth":"b034…"}           (auth present only on secured fleets)
//! coordinator → agent   {"type":"welcome","version":2,"heartbeat_interval_ms":1000,
//!                        "sealed":true}            (sealed only on secured fleets)
//!                       {"type":"reject","message":"agent speaks protocol v3, expected v2"}
//! coordinator → agent   {"type":"unit","id":7,"name":"grep_3","path":"/corpus/0003_grep.elf",
//!                        "want":"Analysis","elf":"f0VMRg…","options":{…}}
//!                       {"type":"shutdown"}
//! agent → coordinator   {"type":"heartbeat"}
//!                       {"type":"result","id":7,"analysis":{…}}
//!                       {"type":"bundle","id":7,"bundle":{…}}
//!                       {"type":"error","id":7,"message":"analysis budget exhausted…"}
//!                       {"type":"sealed","seq":3,"mac":"5bdc…","body":"{\"type\":\"result\"…}"}
//! ```
//!
//! **The challenge opens every connection.** The coordinator's first
//! frame is a `challenge` carrying a fresh nonce, sent whether or not a
//! secret is configured — the handshake shape never depends on
//! deployment. On a secured fleet the agent's hello must carry
//! `auth = HMAC-SHA256(secret, nonce ‖ hello fields)` (see
//! [`crate::auth`]); a wrong or missing MAC is rejected in band.
//!
//! **The hello is the capability handshake.** An agent announces its
//! protocol version, its slot count (how many units it will analyze
//! concurrently — the coordinator never has more than that many
//! outstanding on the connection), and its [`CACHE_FORMAT_VERSION`]
//! (the result-semantics fingerprint every cache key folds in). The
//! coordinator rejects, in band, any agent whose version or cache format
//! differs: a heterogeneous fleet self-describes, and an agent built
//! from an older engine can never poison the content-addressed result
//! cache with semantically different analyses.
//!
//! **Sealed frames carry the session on secured fleets.** After an
//! authenticated hello, every agent frame travels wrapped in a `sealed`
//! envelope: the serialized inner frame as `body`, a strictly
//! increasing per-connection `seq`, and `mac = HMAC(session_key, seq ‖
//! body)` under a key derived from `(secret, nonce)`. The coordinator
//! severs on a bad MAC or an unsealed frame and silently drops
//! replayed/duplicated sequence numbers — a mid-session injector cannot
//! forge a result into the content-addressed cache, and a fault-injected
//! duplicate frame is absorbed without killing the link.
//!
//! **Binary payloads travel in band.** A unit carries the ELF bytes
//! themselves (base64 inside the JSON line), so agents need no shared
//! filesystem — the coordinator is the only process that ever touches
//! the corpus directory. The `path` field is display-only: it makes
//! agent-side error messages byte-identical to the in-process engine's.
//!
//! **Heartbeats are the liveness channel.** A dedicated agent thread
//! sends `heartbeat` at the cadence the `welcome` prescribes; the
//! coordinator reads with a socket timeout a few beats wide, so an agent
//! that goes silent (killed, partitioned, wedged) is detected without
//! any out-of-band probe and its in-flight units are requeued.

use bside_core::{AnalyzerOptions, BinaryAnalysis};
use bside_obs::{SpanRecord, TraceContext};
use bside_serve::PolicyBundle;
use serde::{de, to_value, Value};

use bside_dist::protocol::{
    obj_fields, push_trace, spans_to_value, take_field, take_spans, take_trace,
};

pub use bside_dist::cache::CACHE_FORMAT_VERSION;
pub use bside_dist::protocol::{read_message_capped, write_message};

/// Protocol revision; bumped on any incompatible message change. The
/// coordinator rejects agents announcing a different version in band
/// rather than mis-parsing their frames. v2 added the challenge-first
/// handshake, the hello's `auth` MAC, and the sealed-frame envelope.
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on one fleet frame. Unit frames carry whole binaries
/// (base64, ~4/3 of the ELF size) and result frames carry whole
/// analyses, so the cap is far above the serve request cap — but it is
/// enforced through the same shared codec, so an oversized line fails
/// identically: `InvalidData` without unbounded buffering.
pub const MAX_FLEET_LINE_BYTES: u64 = 64 * 1024 * 1024;

/// What the coordinator wants back for a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Want {
    /// A [`BinaryAnalysis`] in the `bside_core::wire` format — the
    /// corpus path.
    Analysis,
    /// A full [`PolicyBundle`] (policy + phases + lowered BPF) — the
    /// serve-daemon offload path, where the agent also runs phase
    /// detection and the BPF lowering so the daemon does none of it.
    Bundle,
}

serde::impl_serde_unit_enum!(Want { Analysis, Bundle });

/// Messages the coordinator sends to an agent.
#[derive(Debug, Clone)]
pub enum ToAgent {
    /// The coordinator's first frame on every connection: the
    /// authentication challenge the agent folds into its hello MAC.
    /// Always sent — secured and open fleets share one handshake shape.
    Challenge {
        /// Fresh per-connection nonce (hex).
        nonce: String,
    },
    /// The hello was accepted; the agent may expect units.
    Welcome {
        /// The coordinator's [`PROTOCOL_VERSION`], echoed for symmetry.
        version: u32,
        /// How often the agent must send heartbeats, in milliseconds.
        heartbeat_interval_ms: u64,
        /// Whether the coordinator requires sealed agent frames for the
        /// rest of the session (true exactly when a secret is
        /// configured). An agent holding a secret refuses an unsealed
        /// welcome — a downgrade must fail loudly, not silently.
        sealed: bool,
    },
    /// The hello was refused (version or cache-format mismatch); the
    /// coordinator closes the connection after this frame.
    Reject {
        /// Human-readable cause.
        message: String,
    },
    /// Analyze one binary, shipped in band.
    Unit {
        /// Coordinator-wide dispatch sequence number, echoed back.
        id: u64,
        /// Display name of the unit (the corpus naming convention).
        name: String,
        /// Display-only origin path — used in agent-side error messages
        /// so degraded units render byte-identically to in-process runs.
        path: String,
        /// What to send back.
        want: Want,
        /// The ELF image (base64 on the wire).
        elf: Vec<u8>,
        /// Analyzer configuration for this unit.
        options: AnalyzerOptions,
        /// The coordinator's dispatch-span trace context
        /// (`trace_run`/`trace_unit`/`trace_span` on the wire), absent
        /// when telemetry is off. Parsed leniently: a missing or
        /// corrupted context degrades to `None` — the agent's spans
        /// become orphans, the unit itself is never affected.
        trace: Option<TraceContext>,
    },
    /// Exit cleanly after finishing in-flight units.
    Shutdown,
    /// An authenticated envelope around a post-welcome coordinator frame
    /// — the only shape a secured agent accepts once welcomed. Symmetric
    /// with [`FromAgent::Sealed`] for a reason: without downlink seals,
    /// line noise inside a unit's base64 payload could hand the agent a
    /// *different valid binary*, and the agent would return a correctly
    /// sealed wrong answer the coordinator has no way to distrust.
    Sealed {
        /// Strictly increasing per-connection sequence number; the agent
        /// silently drops any number it has already seen (duplicate
        /// delivery), and severs on a MAC that does not verify.
        seq: u64,
        /// `HMAC-SHA256(session_key, seq ‖ body)`
        /// ([`crate::auth::frame_mac`]).
        mac: String,
        /// The serialized inner frame (one JSON object, no newline).
        body: String,
    },
}

/// Messages an agent sends to the coordinator.
#[derive(Debug)]
pub enum FromAgent {
    /// Sent once on connect, after the challenge: the capability hello.
    Hello {
        /// The agent's [`PROTOCOL_VERSION`].
        version: u32,
        /// Units the agent analyzes concurrently (its admission window).
        slots: usize,
        /// The agent's [`CACHE_FORMAT_VERSION`] — the result-semantics
        /// fingerprint; a mismatch means its analyses must not land in
        /// the coordinator's cache.
        cache_format: u32,
        /// `HMAC-SHA256(secret, nonce ‖ hello fields)` on secured
        /// fleets ([`crate::auth::hello_mac`]); absent on open fleets.
        auth: Option<String>,
    },
    /// Liveness beacon, sent at the welcome's cadence from a dedicated
    /// thread — it keeps flowing even while every slot is busy.
    Heartbeat,
    /// A unit analyzed successfully ([`Want::Analysis`]).
    Result {
        /// The unit's id, echoed back.
        id: u64,
        /// The analysis, in the `bside_core::wire` format.
        analysis: Box<BinaryAnalysis>,
        /// The unit's trace context, echoed back from the dispatch.
        trace: Option<TraceContext>,
        /// The agent-side spans for this unit (the `analyze` span and
        /// its per-phase children), shipped home so the coordinator can
        /// stitch one cross-machine trace. Empty when telemetry is off;
        /// malformed entries are skipped, never fatal.
        spans: Vec<SpanRecord>,
    },
    /// A unit derived successfully ([`Want::Bundle`]).
    Bundle {
        /// The unit's id, echoed back.
        id: u64,
        /// The policy bundle, in the `bside_filter::wire` format.
        bundle: Box<PolicyBundle>,
        /// The unit's trace context, echoed back from the dispatch.
        trace: Option<TraceContext>,
        /// The agent-side spans for this unit (see [`FromAgent::Result`]).
        spans: Vec<SpanRecord>,
    },
    /// A unit failed deterministically (unparseable ELF, analysis
    /// error); the connection stays healthy.
    Error {
        /// The unit's id, echoed back.
        id: u64,
        /// The error's `Display` rendering — the merged-report payload.
        message: String,
        /// The unit's trace context, echoed back from the dispatch.
        trace: Option<TraceContext>,
        /// The agent-side spans for this unit (see [`FromAgent::Result`]).
        spans: Vec<SpanRecord>,
    },
    /// An authenticated envelope around any other agent frame — the only
    /// frame shape a secured coordinator accepts after the hello.
    Sealed {
        /// Strictly increasing per-connection sequence number; the
        /// coordinator silently drops any number it has already seen.
        seq: u64,
        /// `HMAC-SHA256(session_key, seq ‖ body)`
        /// ([`crate::auth::frame_mac`]).
        mac: String,
        /// The serialized inner frame (one JSON object, no newline).
        body: String,
    },
}

impl serde::Serialize for ToAgent {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let value = match self {
            ToAgent::Challenge { nonce } => Value::Object(vec![
                ("type".to_string(), Value::Str("challenge".to_string())),
                ("nonce".to_string(), Value::Str(nonce.clone())),
            ]),
            ToAgent::Welcome {
                version,
                heartbeat_interval_ms,
                sealed,
            } => Value::Object(vec![
                ("type".to_string(), Value::Str("welcome".to_string())),
                ("version".to_string(), Value::UInt(*version as u64)),
                (
                    "heartbeat_interval_ms".to_string(),
                    Value::UInt(*heartbeat_interval_ms),
                ),
                ("sealed".to_string(), Value::Bool(*sealed)),
            ]),
            ToAgent::Reject { message } => Value::Object(vec![
                ("type".to_string(), Value::Str("reject".to_string())),
                ("message".to_string(), Value::Str(message.clone())),
            ]),
            ToAgent::Unit {
                id,
                name,
                path,
                want,
                elf,
                options,
                trace,
            } => {
                let mut fields = vec![
                    ("type".to_string(), Value::Str("unit".to_string())),
                    ("id".to_string(), Value::UInt(*id)),
                    ("name".to_string(), Value::Str(name.clone())),
                    ("path".to_string(), Value::Str(path.clone())),
                    ("want".to_string(), to_value(want)),
                    ("elf".to_string(), Value::Str(base64_encode(elf))),
                    ("options".to_string(), to_value(options)),
                ];
                push_trace(&mut fields, trace);
                Value::Object(fields)
            }
            ToAgent::Shutdown => Value::Object(vec![(
                "type".to_string(),
                Value::Str("shutdown".to_string()),
            )]),
            ToAgent::Sealed { seq, mac, body } => Value::Object(vec![
                ("type".to_string(), Value::Str("sealed".to_string())),
                ("seq".to_string(), Value::UInt(*seq)),
                ("mac".to_string(), Value::Str(mac.clone())),
                ("body".to_string(), Value::Str(body.clone())),
            ]),
        };
        serializer.serialize_value(value)
    }
}

impl serde::Serialize for FromAgent {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let value = match self {
            FromAgent::Hello {
                version,
                slots,
                cache_format,
                auth,
            } => {
                let mut fields = vec![
                    ("type".to_string(), Value::Str("hello".to_string())),
                    ("version".to_string(), Value::UInt(*version as u64)),
                    ("slots".to_string(), Value::UInt(*slots as u64)),
                    (
                        "cache_format".to_string(),
                        Value::UInt(*cache_format as u64),
                    ),
                ];
                if let Some(mac) = auth {
                    fields.push(("auth".to_string(), Value::Str(mac.clone())));
                }
                Value::Object(fields)
            }
            FromAgent::Heartbeat => Value::Object(vec![(
                "type".to_string(),
                Value::Str("heartbeat".to_string()),
            )]),
            FromAgent::Result {
                id,
                analysis,
                trace,
                spans,
            } => {
                let mut fields = vec![
                    ("type".to_string(), Value::Str("result".to_string())),
                    ("id".to_string(), Value::UInt(*id)),
                    ("analysis".to_string(), to_value(analysis)),
                ];
                push_trace(&mut fields, trace);
                push_spans(&mut fields, spans);
                Value::Object(fields)
            }
            FromAgent::Bundle {
                id,
                bundle,
                trace,
                spans,
            } => {
                let mut fields = vec![
                    ("type".to_string(), Value::Str("bundle".to_string())),
                    ("id".to_string(), Value::UInt(*id)),
                    ("bundle".to_string(), to_value(bundle)),
                ];
                push_trace(&mut fields, trace);
                push_spans(&mut fields, spans);
                Value::Object(fields)
            }
            FromAgent::Error {
                id,
                message,
                trace,
                spans,
            } => {
                let mut fields = vec![
                    ("type".to_string(), Value::Str("error".to_string())),
                    ("id".to_string(), Value::UInt(*id)),
                    ("message".to_string(), Value::Str(message.clone())),
                ];
                push_trace(&mut fields, trace);
                push_spans(&mut fields, spans);
                Value::Object(fields)
            }
            FromAgent::Sealed { seq, mac, body } => Value::Object(vec![
                ("type".to_string(), Value::Str("sealed".to_string())),
                ("seq".to_string(), Value::UInt(*seq)),
                ("mac".to_string(), Value::Str(mac.clone())),
                ("body".to_string(), Value::Str(body.clone())),
            ]),
        };
        serializer.serialize_value(value)
    }
}

/// Appends the `spans` field only when there is something to ship, so a
/// telemetry-disabled agent's frames stay byte-identical to pre-trace
/// revisions.
fn push_spans(entries: &mut Vec<(String, Value)>, spans: &[SpanRecord]) {
    if !spans.is_empty() {
        entries.push(("spans".to_string(), spans_to_value(spans)));
    }
}

fn take_u64(entries: &mut Vec<(String, Value)>, name: &str) -> Result<u64, de::ValueError> {
    match take_field(entries, name)? {
        Value::UInt(n) => Ok(n),
        other => Err(de::Error::custom(format!(
            "field `{name}` must be an unsigned integer, found {other:?}"
        ))),
    }
}

fn take_string(entries: &mut Vec<(String, Value)>, name: &str) -> Result<String, de::ValueError> {
    match take_field(entries, name)? {
        Value::Str(s) => Ok(s),
        other => Err(de::Error::custom(format!(
            "field `{name}` must be a string, found {other:?}"
        ))),
    }
}

impl<'de> serde::Deserialize<'de> for ToAgent {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut entries =
            obj_fields(deserializer.into_value()?, "ToAgent").map_err(de::Error::custom)?;
        let tag = take_string(&mut entries, "type").map_err(de::Error::custom)?;
        match tag.as_str() {
            "challenge" => Ok(ToAgent::Challenge {
                nonce: take_string(&mut entries, "nonce").map_err(de::Error::custom)?,
            }),
            "welcome" => Ok(ToAgent::Welcome {
                version: take_u64(&mut entries, "version").map_err(de::Error::custom)? as u32,
                heartbeat_interval_ms: take_u64(&mut entries, "heartbeat_interval_ms")
                    .map_err(de::Error::custom)?,
                sealed: if entries.iter().any(|(name, _)| name == "sealed") {
                    match take_field(&mut entries, "sealed").map_err(de::Error::custom)? {
                        Value::Bool(b) => b,
                        other => {
                            return Err(de::Error::custom(format!(
                                "field `sealed` must be a boolean, found {other:?}"
                            )))
                        }
                    }
                } else {
                    false
                },
            }),
            "reject" => Ok(ToAgent::Reject {
                message: take_string(&mut entries, "message").map_err(de::Error::custom)?,
            }),
            "unit" => Ok(ToAgent::Unit {
                id: take_u64(&mut entries, "id").map_err(de::Error::custom)?,
                name: take_string(&mut entries, "name").map_err(de::Error::custom)?,
                path: take_string(&mut entries, "path").map_err(de::Error::custom)?,
                want: serde::from_value(
                    take_field(&mut entries, "want").map_err(de::Error::custom)?,
                )
                .map_err(de::Error::custom)?,
                elf: {
                    let encoded = take_string(&mut entries, "elf").map_err(de::Error::custom)?;
                    base64_decode(&encoded).map_err(de::Error::custom)?
                },
                options: serde::from_value(
                    take_field(&mut entries, "options").map_err(de::Error::custom)?,
                )
                .map_err(de::Error::custom)?,
                trace: take_trace(&mut entries),
            }),
            "shutdown" => Ok(ToAgent::Shutdown),
            "sealed" => Ok(ToAgent::Sealed {
                seq: take_u64(&mut entries, "seq").map_err(de::Error::custom)?,
                mac: take_string(&mut entries, "mac").map_err(de::Error::custom)?,
                body: take_string(&mut entries, "body").map_err(de::Error::custom)?,
            }),
            other => Err(de::Error::custom(format!(
                "unknown coordinator message type `{other}`"
            ))),
        }
    }
}

impl<'de> serde::Deserialize<'de> for FromAgent {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut entries =
            obj_fields(deserializer.into_value()?, "FromAgent").map_err(de::Error::custom)?;
        let tag = take_string(&mut entries, "type").map_err(de::Error::custom)?;
        match tag.as_str() {
            "hello" => Ok(FromAgent::Hello {
                version: take_u64(&mut entries, "version").map_err(de::Error::custom)? as u32,
                slots: take_u64(&mut entries, "slots").map_err(de::Error::custom)? as usize,
                cache_format: take_u64(&mut entries, "cache_format").map_err(de::Error::custom)?
                    as u32,
                auth: if entries.iter().any(|(name, _)| name == "auth") {
                    Some(take_string(&mut entries, "auth").map_err(de::Error::custom)?)
                } else {
                    None
                },
            }),
            "heartbeat" => Ok(FromAgent::Heartbeat),
            "result" => Ok(FromAgent::Result {
                id: take_u64(&mut entries, "id").map_err(de::Error::custom)?,
                analysis: serde::from_value(
                    take_field(&mut entries, "analysis").map_err(de::Error::custom)?,
                )
                .map_err(de::Error::custom)?,
                trace: take_trace(&mut entries),
                spans: take_spans(&mut entries),
            }),
            "bundle" => Ok(FromAgent::Bundle {
                id: take_u64(&mut entries, "id").map_err(de::Error::custom)?,
                bundle: serde::from_value(
                    take_field(&mut entries, "bundle").map_err(de::Error::custom)?,
                )
                .map_err(de::Error::custom)?,
                trace: take_trace(&mut entries),
                spans: take_spans(&mut entries),
            }),
            "error" => Ok(FromAgent::Error {
                id: take_u64(&mut entries, "id").map_err(de::Error::custom)?,
                message: take_string(&mut entries, "message").map_err(de::Error::custom)?,
                trace: take_trace(&mut entries),
                spans: take_spans(&mut entries),
            }),
            "sealed" => Ok(FromAgent::Sealed {
                seq: take_u64(&mut entries, "seq").map_err(de::Error::custom)?,
                mac: take_string(&mut entries, "mac").map_err(de::Error::custom)?,
                body: take_string(&mut entries, "body").map_err(de::Error::custom)?,
            }),
            other => Err(de::Error::custom(format!(
                "unknown agent message type `{other}`"
            ))),
        }
    }
}

/// Seals an agent frame for a secured session: serializes it, MACs the
/// serialization under the session key at `seq`, and wraps both in a
/// [`FromAgent::Sealed`] envelope.
pub fn seal(session_key: &[u8], seq: u64, frame: &FromAgent) -> std::io::Result<FromAgent> {
    let body = serde_json::to_string(frame)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mac = crate::auth::frame_mac(session_key, seq, &body);
    Ok(FromAgent::Sealed { seq, mac, body })
}

/// Verifies a sealed envelope's MAC and deserializes the inner frame.
/// The caller enforces the strictly-increasing sequence policy; this
/// only answers "was this body really sealed at this number under this
/// key".
pub fn unseal(session_key: &[u8], seq: u64, mac: &str, body: &str) -> Result<FromAgent, String> {
    let expected = crate::auth::frame_mac(session_key, seq, body);
    if expected != mac {
        return Err("sealed frame failed MAC verification".to_string());
    }
    serde_json::from_str(body).map_err(|e| format!("sealed frame body did not parse: {e}"))
}

/// [`seal`] for the downlink: wraps a coordinator frame in a
/// [`ToAgent::Sealed`] envelope. Both directions share one session key
/// and one MAC construction; reflecting a sealed frame back across the
/// link is inert because the two frame namespaces are disjoint — a
/// reflected body fails to parse as the other direction's type.
pub fn seal_down(session_key: &[u8], seq: u64, frame: &ToAgent) -> std::io::Result<ToAgent> {
    let body = serde_json::to_string(frame)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mac = crate::auth::frame_mac(session_key, seq, &body);
    Ok(ToAgent::Sealed { seq, mac, body })
}

/// [`unseal`] for the downlink: verifies and unwraps a
/// [`ToAgent::Sealed`] envelope.
pub fn unseal_down(session_key: &[u8], seq: u64, mac: &str, body: &str) -> Result<ToAgent, String> {
    let expected = crate::auth::frame_mac(session_key, seq, body);
    if expected != mac {
        return Err("sealed frame failed MAC verification".to_string());
    }
    serde_json::from_str(body).map_err(|e| format!("sealed frame body did not parse: {e}"))
}

// ---------------------------------------------------------------------------
// Base64 (RFC 4648, standard alphabet with padding). The build
// environment has no registry access; this is only used to carry binary
// payloads inside JSON lines.
// ---------------------------------------------------------------------------

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with padding.
pub fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64_ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(B64_ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            B64_ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64_ALPHABET[triple as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

fn b64_value(c: u8) -> Result<u32, String> {
    match c {
        b'A'..=b'Z' => Ok((c - b'A') as u32),
        b'a'..=b'z' => Ok((c - b'a') as u32 + 26),
        b'0'..=b'9' => Ok((c - b'0') as u32 + 52),
        b'+' => Ok(62),
        b'/' => Ok(63),
        other => Err(format!("invalid base64 byte {other:#04x}")),
    }
}

/// Decodes standard padded base64; any malformed input is an error, never
/// a silent truncation.
pub fn base64_decode(s: &str) -> Result<Vec<u8>, String> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!(
            "base64 length {} is not a multiple of 4",
            bytes.len()
        ));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks_exact(4).enumerate() {
        let last = i == bytes.len() / 4 - 1;
        let pad = quad.iter().filter(|&&c| c == b'=').count();
        if pad > 2 || (!last && pad > 0) {
            return Err("misplaced base64 padding".to_string());
        }
        if quad[..4 - pad].contains(&b'=') {
            return Err("misplaced base64 padding".to_string());
        }
        let mut triple = 0u32;
        for &c in &quad[..4 - pad] {
            triple = (triple << 6) | b64_value(c)?;
        }
        triple <<= 6 * pad as u32;
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_round_trips_and_matches_known_vectors() {
        // RFC 4648 test vectors.
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        for len in [0usize, 1, 2, 3, 63, 64, 65, 4096] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            assert_eq!(
                base64_decode(&base64_encode(&data)).expect("round trip"),
                data,
                "len {len}"
            );
        }
    }

    #[test]
    fn base64_rejects_malformed_input() {
        assert!(base64_decode("Zg=").is_err(), "bad length");
        assert!(base64_decode("Z!==").is_err(), "bad alphabet");
        assert!(base64_decode("Zg==Zg==").is_err(), "padding mid-stream");
        assert!(base64_decode("====").is_err(), "over-padded");
        assert!(base64_decode("Z=g=").is_err(), "padding before data");
    }

    #[test]
    fn hello_and_unit_round_trip() {
        let hello = FromAgent::Hello {
            version: PROTOCOL_VERSION,
            slots: 4,
            cache_format: CACHE_FORMAT_VERSION,
            auth: None,
        };
        let json = serde_json::to_string(&hello).unwrap();
        assert!(
            !json.contains("auth"),
            "an open-fleet hello carries no auth field: {json}"
        );
        match serde_json::from_str::<FromAgent>(&json).unwrap() {
            FromAgent::Hello {
                version,
                slots,
                cache_format,
                auth,
            } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert_eq!(slots, 4);
                assert_eq!(cache_format, CACHE_FORMAT_VERSION);
                assert_eq!(auth, None);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let unit = ToAgent::Unit {
            id: 9,
            name: "nginx_9".to_string(),
            path: "/corpus/0009_nginx.elf".to_string(),
            want: Want::Analysis,
            elf: vec![0x7f, b'E', b'L', b'F', 0, 1, 2, 3],
            options: bside_core::AnalyzerOptions::default(),
            trace: Some(TraceContext {
                run_id: 21,
                unit_id: 9,
                span_id: 33,
            }),
        };
        let json = serde_json::to_string(&unit).unwrap();
        match serde_json::from_str::<ToAgent>(&json).unwrap() {
            ToAgent::Unit {
                id,
                name,
                path,
                want,
                elf,
                options,
                trace,
            } => {
                assert_eq!(id, 9);
                assert_eq!(name, "nginx_9");
                assert_eq!(path, "/corpus/0009_nginx.elf");
                assert_eq!(want, Want::Analysis);
                assert_eq!(elf, vec![0x7f, b'E', b'L', b'F', 0, 1, 2, 3]);
                assert_eq!(
                    options.limits,
                    bside_core::AnalyzerOptions::default().limits
                );
                assert_eq!(
                    trace,
                    Some(TraceContext {
                        run_id: 21,
                        unit_id: 9,
                        span_id: 33,
                    })
                );
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn control_messages_round_trip_via_line_codec() {
        let mut buf = Vec::new();
        write_message(
            &mut buf,
            &ToAgent::Welcome {
                version: PROTOCOL_VERSION,
                heartbeat_interval_ms: 500,
                sealed: false,
            },
        )
        .unwrap();
        write_message(&mut buf, &ToAgent::Shutdown).unwrap();
        write_message(&mut buf, &FromAgent::Heartbeat).unwrap();
        let mut reader = std::io::BufReader::new(buf.as_slice());
        assert!(matches!(
            read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES).unwrap(),
            Some(ToAgent::Welcome {
                version: PROTOCOL_VERSION,
                heartbeat_interval_ms: 500,
                sealed: false,
            })
        ));
        assert!(matches!(
            read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES).unwrap(),
            Some(ToAgent::Shutdown)
        ));
        assert!(matches!(
            read_message_capped::<FromAgent>(&mut reader, MAX_FLEET_LINE_BYTES).unwrap(),
            Some(FromAgent::Heartbeat)
        ));
        assert!(
            read_message_capped::<FromAgent>(&mut reader, MAX_FLEET_LINE_BYTES)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn challenge_and_authenticated_hello_round_trip() {
        let challenge = ToAgent::Challenge {
            nonce: "9f2c".repeat(16),
        };
        let json = serde_json::to_string(&challenge).unwrap();
        match serde_json::from_str::<ToAgent>(&json).unwrap() {
            ToAgent::Challenge { nonce } => assert_eq!(nonce, "9f2c".repeat(16)),
            other => panic!("wrong variant: {other:?}"),
        }

        let mac = crate::auth::hello_mac("s3cret", "nonce", PROTOCOL_VERSION, 4, 1);
        let hello = FromAgent::Hello {
            version: PROTOCOL_VERSION,
            slots: 4,
            cache_format: CACHE_FORMAT_VERSION,
            auth: Some(mac.clone()),
        };
        let json = serde_json::to_string(&hello).unwrap();
        match serde_json::from_str::<FromAgent>(&json).unwrap() {
            FromAgent::Hello { auth, .. } => assert_eq!(auth, Some(mac)),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn sealed_envelope_round_trips_and_unseal_verifies() {
        let key = crate::auth::session_key("s3cret", "nonce");
        let inner = FromAgent::Error {
            id: 7,
            message: "boom".to_string(),
            trace: None,
            spans: Vec::new(),
        };
        let sealed = seal(&key, 3, &inner).expect("seal");
        let json = serde_json::to_string(&sealed).unwrap();
        let (seq, mac, body) = match serde_json::from_str::<FromAgent>(&json).unwrap() {
            FromAgent::Sealed { seq, mac, body } => (seq, mac, body),
            other => panic!("wrong variant: {other:?}"),
        };
        assert_eq!(seq, 3);
        match unseal(&key, seq, &mac, &body).expect("unseal") {
            FromAgent::Error { id, message, .. } => {
                assert_eq!(id, 7);
                assert_eq!(message, "boom");
            }
            other => panic!("wrong inner frame: {other:?}"),
        }

        // A flipped body byte, a wrong sequence number, or a wrong key
        // all fail verification — the injector's three levers.
        let tampered = body.replace("boom", "reek");
        assert!(unseal(&key, seq, &mac, &tampered).is_err(), "tampered body");
        assert!(unseal(&key, seq + 1, &mac, &body).is_err(), "wrong seq");
        let other_key = crate::auth::session_key("s3cret", "other");
        assert!(unseal(&other_key, seq, &mac, &body).is_err(), "wrong key");
    }

    /// Downlink sealing mirrors the uplink, and a reflected envelope is
    /// inert: its MAC verifies (shared key and construction) but the
    /// body parses only as the direction it was sealed in.
    #[test]
    fn downlink_sealed_envelope_round_trips_and_reflection_is_inert() {
        let key = crate::auth::session_key("s3cret", "nonce");
        let sealed = seal_down(&key, 5, &ToAgent::Shutdown).expect("seal");
        let json = serde_json::to_string(&sealed).unwrap();
        let (seq, mac, body) = match serde_json::from_str::<ToAgent>(&json).unwrap() {
            ToAgent::Sealed { seq, mac, body } => (seq, mac, body),
            other => panic!("wrong variant: {other:?}"),
        };
        assert_eq!(seq, 5);
        assert!(matches!(
            unseal_down(&key, seq, &mac, &body).expect("unseal"),
            ToAgent::Shutdown
        ));
        let tampered = body.replace("shutdown", "shutdowm");
        assert!(unseal_down(&key, seq, &mac, &tampered).is_err());
        assert!(unseal_down(&key, seq + 1, &mac, &body).is_err());
        // Reflection: the envelope verifies as an uplink frame too, but
        // `shutdown` is not a FromAgent type, so the unseal still fails.
        assert!(unseal(&key, seq, &mac, &body).is_err(), "reflected frame");
    }

    /// A v1 welcome (no `sealed` field) still parses — the field
    /// defaults to false, keeping hand-rolled test peers simple.
    #[test]
    fn welcome_without_sealed_field_defaults_to_unsealed() {
        let json = "{\"type\":\"welcome\",\"version\":2,\"heartbeat_interval_ms\":250}";
        match serde_json::from_str::<ToAgent>(json).unwrap() {
            ToAgent::Welcome { sealed, .. } => assert!(!sealed),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn unknown_tags_and_garbage_are_errors() {
        assert!(serde_json::from_str::<FromAgent>("{\"type\":\"gimme\"}").is_err());
        assert!(serde_json::from_str::<ToAgent>("{\"type\":\"nope\"}").is_err());
        assert!(serde_json::from_str::<FromAgent>("not json").is_err());
        assert!(serde_json::from_str::<ToAgent>(
            "{\"type\":\"unit\",\"id\":1,\"name\":\"x\",\"path\":\"p\",\"want\":\"Analysis\",\
             \"elf\":\"!!!!\",\"options\":{}}"
        )
        .is_err());
    }
}
