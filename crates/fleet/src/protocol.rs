//! The coordinator ↔ agent wire protocol.
//!
//! Newline-delimited JSON over a [`bside_serve::net::Conn`] (TCP between
//! machines, Unix sockets for same-host tests), one message per line,
//! each a single JSON object tagged by a `"type"` field — the exact
//! framing the dist and serve protocols use, through the same shared
//! codec ([`read_message_capped`]/[`write_message`] re-exported from
//! `bside_dist::protocol`), so framing errors and the line cap behave
//! identically in all three.
//!
//! ```text
//! agent → coordinator   {"type":"hello","version":1,"slots":2,"cache_format":1}
//! coordinator → agent   {"type":"welcome","version":1,"heartbeat_interval_ms":1000}
//!                       {"type":"reject","message":"agent speaks protocol v2, expected v1"}
//! coordinator → agent   {"type":"unit","id":7,"name":"grep_3","path":"/corpus/0003_grep.elf",
//!                        "want":"Analysis","elf":"f0VMRg…","options":{…}}
//!                       {"type":"shutdown"}
//! agent → coordinator   {"type":"heartbeat"}
//!                       {"type":"result","id":7,"analysis":{…}}
//!                       {"type":"bundle","id":7,"bundle":{…}}
//!                       {"type":"error","id":7,"message":"analysis budget exhausted…"}
//! ```
//!
//! **The hello is the capability handshake.** An agent announces its
//! protocol version, its slot count (how many units it will analyze
//! concurrently — the coordinator never has more than that many
//! outstanding on the connection), and its [`CACHE_FORMAT_VERSION`]
//! (the result-semantics fingerprint every cache key folds in). The
//! coordinator rejects, in band, any agent whose version or cache format
//! differs: a heterogeneous fleet self-describes, and an agent built
//! from an older engine can never poison the content-addressed result
//! cache with semantically different analyses.
//!
//! **Binary payloads travel in band.** A unit carries the ELF bytes
//! themselves (base64 inside the JSON line), so agents need no shared
//! filesystem — the coordinator is the only process that ever touches
//! the corpus directory. The `path` field is display-only: it makes
//! agent-side error messages byte-identical to the in-process engine's.
//!
//! **Heartbeats are the liveness channel.** A dedicated agent thread
//! sends `heartbeat` at the cadence the `welcome` prescribes; the
//! coordinator reads with a socket timeout a few beats wide, so an agent
//! that goes silent (killed, partitioned, wedged) is detected without
//! any out-of-band probe and its in-flight units are requeued.

use bside_core::{AnalyzerOptions, BinaryAnalysis};
use bside_serve::PolicyBundle;
use serde::{de, to_value, Value};

use bside_dist::protocol::{obj_fields, take_field};

pub use bside_dist::cache::CACHE_FORMAT_VERSION;
pub use bside_dist::protocol::{read_message_capped, write_message};

/// Protocol revision; bumped on any incompatible message change. The
/// coordinator rejects agents announcing a different version in band
/// rather than mis-parsing their frames.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one fleet frame. Unit frames carry whole binaries
/// (base64, ~4/3 of the ELF size) and result frames carry whole
/// analyses, so the cap is far above the serve request cap — but it is
/// enforced through the same shared codec, so an oversized line fails
/// identically: `InvalidData` without unbounded buffering.
pub const MAX_FLEET_LINE_BYTES: u64 = 64 * 1024 * 1024;

/// What the coordinator wants back for a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Want {
    /// A [`BinaryAnalysis`] in the `bside_core::wire` format — the
    /// corpus path.
    Analysis,
    /// A full [`PolicyBundle`] (policy + phases + lowered BPF) — the
    /// serve-daemon offload path, where the agent also runs phase
    /// detection and the BPF lowering so the daemon does none of it.
    Bundle,
}

serde::impl_serde_unit_enum!(Want { Analysis, Bundle });

/// Messages the coordinator sends to an agent.
#[derive(Debug, Clone)]
pub enum ToAgent {
    /// The hello was accepted; the agent may expect units.
    Welcome {
        /// The coordinator's [`PROTOCOL_VERSION`], echoed for symmetry.
        version: u32,
        /// How often the agent must send heartbeats, in milliseconds.
        heartbeat_interval_ms: u64,
    },
    /// The hello was refused (version or cache-format mismatch); the
    /// coordinator closes the connection after this frame.
    Reject {
        /// Human-readable cause.
        message: String,
    },
    /// Analyze one binary, shipped in band.
    Unit {
        /// Coordinator-wide dispatch sequence number, echoed back.
        id: u64,
        /// Display name of the unit (the corpus naming convention).
        name: String,
        /// Display-only origin path — used in agent-side error messages
        /// so degraded units render byte-identically to in-process runs.
        path: String,
        /// What to send back.
        want: Want,
        /// The ELF image (base64 on the wire).
        elf: Vec<u8>,
        /// Analyzer configuration for this unit.
        options: AnalyzerOptions,
    },
    /// Exit cleanly after finishing in-flight units.
    Shutdown,
}

/// Messages an agent sends to the coordinator.
#[derive(Debug)]
pub enum FromAgent {
    /// Sent once on connect, before anything else: the capability hello.
    Hello {
        /// The agent's [`PROTOCOL_VERSION`].
        version: u32,
        /// Units the agent analyzes concurrently (its admission window).
        slots: usize,
        /// The agent's [`CACHE_FORMAT_VERSION`] — the result-semantics
        /// fingerprint; a mismatch means its analyses must not land in
        /// the coordinator's cache.
        cache_format: u32,
    },
    /// Liveness beacon, sent at the welcome's cadence from a dedicated
    /// thread — it keeps flowing even while every slot is busy.
    Heartbeat,
    /// A unit analyzed successfully ([`Want::Analysis`]).
    Result {
        /// The unit's id, echoed back.
        id: u64,
        /// The analysis, in the `bside_core::wire` format.
        analysis: Box<BinaryAnalysis>,
    },
    /// A unit derived successfully ([`Want::Bundle`]).
    Bundle {
        /// The unit's id, echoed back.
        id: u64,
        /// The policy bundle, in the `bside_filter::wire` format.
        bundle: Box<PolicyBundle>,
    },
    /// A unit failed deterministically (unparseable ELF, analysis
    /// error); the connection stays healthy.
    Error {
        /// The unit's id, echoed back.
        id: u64,
        /// The error's `Display` rendering — the merged-report payload.
        message: String,
    },
}

impl serde::Serialize for ToAgent {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let value = match self {
            ToAgent::Welcome {
                version,
                heartbeat_interval_ms,
            } => Value::Object(vec![
                ("type".to_string(), Value::Str("welcome".to_string())),
                ("version".to_string(), Value::UInt(*version as u64)),
                (
                    "heartbeat_interval_ms".to_string(),
                    Value::UInt(*heartbeat_interval_ms),
                ),
            ]),
            ToAgent::Reject { message } => Value::Object(vec![
                ("type".to_string(), Value::Str("reject".to_string())),
                ("message".to_string(), Value::Str(message.clone())),
            ]),
            ToAgent::Unit {
                id,
                name,
                path,
                want,
                elf,
                options,
            } => Value::Object(vec![
                ("type".to_string(), Value::Str("unit".to_string())),
                ("id".to_string(), Value::UInt(*id)),
                ("name".to_string(), Value::Str(name.clone())),
                ("path".to_string(), Value::Str(path.clone())),
                ("want".to_string(), to_value(want)),
                ("elf".to_string(), Value::Str(base64_encode(elf))),
                ("options".to_string(), to_value(options)),
            ]),
            ToAgent::Shutdown => Value::Object(vec![(
                "type".to_string(),
                Value::Str("shutdown".to_string()),
            )]),
        };
        serializer.serialize_value(value)
    }
}

impl serde::Serialize for FromAgent {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let value = match self {
            FromAgent::Hello {
                version,
                slots,
                cache_format,
            } => Value::Object(vec![
                ("type".to_string(), Value::Str("hello".to_string())),
                ("version".to_string(), Value::UInt(*version as u64)),
                ("slots".to_string(), Value::UInt(*slots as u64)),
                (
                    "cache_format".to_string(),
                    Value::UInt(*cache_format as u64),
                ),
            ]),
            FromAgent::Heartbeat => Value::Object(vec![(
                "type".to_string(),
                Value::Str("heartbeat".to_string()),
            )]),
            FromAgent::Result { id, analysis } => Value::Object(vec![
                ("type".to_string(), Value::Str("result".to_string())),
                ("id".to_string(), Value::UInt(*id)),
                ("analysis".to_string(), to_value(analysis)),
            ]),
            FromAgent::Bundle { id, bundle } => Value::Object(vec![
                ("type".to_string(), Value::Str("bundle".to_string())),
                ("id".to_string(), Value::UInt(*id)),
                ("bundle".to_string(), to_value(bundle)),
            ]),
            FromAgent::Error { id, message } => Value::Object(vec![
                ("type".to_string(), Value::Str("error".to_string())),
                ("id".to_string(), Value::UInt(*id)),
                ("message".to_string(), Value::Str(message.clone())),
            ]),
        };
        serializer.serialize_value(value)
    }
}

fn take_u64(entries: &mut Vec<(String, Value)>, name: &str) -> Result<u64, de::ValueError> {
    match take_field(entries, name)? {
        Value::UInt(n) => Ok(n),
        other => Err(de::Error::custom(format!(
            "field `{name}` must be an unsigned integer, found {other:?}"
        ))),
    }
}

fn take_string(entries: &mut Vec<(String, Value)>, name: &str) -> Result<String, de::ValueError> {
    match take_field(entries, name)? {
        Value::Str(s) => Ok(s),
        other => Err(de::Error::custom(format!(
            "field `{name}` must be a string, found {other:?}"
        ))),
    }
}

impl<'de> serde::Deserialize<'de> for ToAgent {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut entries =
            obj_fields(deserializer.into_value()?, "ToAgent").map_err(de::Error::custom)?;
        let tag = take_string(&mut entries, "type").map_err(de::Error::custom)?;
        match tag.as_str() {
            "welcome" => Ok(ToAgent::Welcome {
                version: take_u64(&mut entries, "version").map_err(de::Error::custom)? as u32,
                heartbeat_interval_ms: take_u64(&mut entries, "heartbeat_interval_ms")
                    .map_err(de::Error::custom)?,
            }),
            "reject" => Ok(ToAgent::Reject {
                message: take_string(&mut entries, "message").map_err(de::Error::custom)?,
            }),
            "unit" => Ok(ToAgent::Unit {
                id: take_u64(&mut entries, "id").map_err(de::Error::custom)?,
                name: take_string(&mut entries, "name").map_err(de::Error::custom)?,
                path: take_string(&mut entries, "path").map_err(de::Error::custom)?,
                want: serde::from_value(
                    take_field(&mut entries, "want").map_err(de::Error::custom)?,
                )
                .map_err(de::Error::custom)?,
                elf: {
                    let encoded = take_string(&mut entries, "elf").map_err(de::Error::custom)?;
                    base64_decode(&encoded).map_err(de::Error::custom)?
                },
                options: serde::from_value(
                    take_field(&mut entries, "options").map_err(de::Error::custom)?,
                )
                .map_err(de::Error::custom)?,
            }),
            "shutdown" => Ok(ToAgent::Shutdown),
            other => Err(de::Error::custom(format!(
                "unknown coordinator message type `{other}`"
            ))),
        }
    }
}

impl<'de> serde::Deserialize<'de> for FromAgent {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut entries =
            obj_fields(deserializer.into_value()?, "FromAgent").map_err(de::Error::custom)?;
        let tag = take_string(&mut entries, "type").map_err(de::Error::custom)?;
        match tag.as_str() {
            "hello" => Ok(FromAgent::Hello {
                version: take_u64(&mut entries, "version").map_err(de::Error::custom)? as u32,
                slots: take_u64(&mut entries, "slots").map_err(de::Error::custom)? as usize,
                cache_format: take_u64(&mut entries, "cache_format").map_err(de::Error::custom)?
                    as u32,
            }),
            "heartbeat" => Ok(FromAgent::Heartbeat),
            "result" => Ok(FromAgent::Result {
                id: take_u64(&mut entries, "id").map_err(de::Error::custom)?,
                analysis: serde::from_value(
                    take_field(&mut entries, "analysis").map_err(de::Error::custom)?,
                )
                .map_err(de::Error::custom)?,
            }),
            "bundle" => Ok(FromAgent::Bundle {
                id: take_u64(&mut entries, "id").map_err(de::Error::custom)?,
                bundle: serde::from_value(
                    take_field(&mut entries, "bundle").map_err(de::Error::custom)?,
                )
                .map_err(de::Error::custom)?,
            }),
            "error" => Ok(FromAgent::Error {
                id: take_u64(&mut entries, "id").map_err(de::Error::custom)?,
                message: take_string(&mut entries, "message").map_err(de::Error::custom)?,
            }),
            other => Err(de::Error::custom(format!(
                "unknown agent message type `{other}`"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Base64 (RFC 4648, standard alphabet with padding). The build
// environment has no registry access; this is only used to carry binary
// payloads inside JSON lines.
// ---------------------------------------------------------------------------

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with padding.
pub fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64_ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(B64_ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            B64_ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64_ALPHABET[triple as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

fn b64_value(c: u8) -> Result<u32, String> {
    match c {
        b'A'..=b'Z' => Ok((c - b'A') as u32),
        b'a'..=b'z' => Ok((c - b'a') as u32 + 26),
        b'0'..=b'9' => Ok((c - b'0') as u32 + 52),
        b'+' => Ok(62),
        b'/' => Ok(63),
        other => Err(format!("invalid base64 byte {other:#04x}")),
    }
}

/// Decodes standard padded base64; any malformed input is an error, never
/// a silent truncation.
pub fn base64_decode(s: &str) -> Result<Vec<u8>, String> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!(
            "base64 length {} is not a multiple of 4",
            bytes.len()
        ));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks_exact(4).enumerate() {
        let last = i == bytes.len() / 4 - 1;
        let pad = quad.iter().filter(|&&c| c == b'=').count();
        if pad > 2 || (!last && pad > 0) {
            return Err("misplaced base64 padding".to_string());
        }
        if quad[..4 - pad].contains(&b'=') {
            return Err("misplaced base64 padding".to_string());
        }
        let mut triple = 0u32;
        for &c in &quad[..4 - pad] {
            triple = (triple << 6) | b64_value(c)?;
        }
        triple <<= 6 * pad as u32;
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_round_trips_and_matches_known_vectors() {
        // RFC 4648 test vectors.
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        for len in [0usize, 1, 2, 3, 63, 64, 65, 4096] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            assert_eq!(
                base64_decode(&base64_encode(&data)).expect("round trip"),
                data,
                "len {len}"
            );
        }
    }

    #[test]
    fn base64_rejects_malformed_input() {
        assert!(base64_decode("Zg=").is_err(), "bad length");
        assert!(base64_decode("Z!==").is_err(), "bad alphabet");
        assert!(base64_decode("Zg==Zg==").is_err(), "padding mid-stream");
        assert!(base64_decode("====").is_err(), "over-padded");
        assert!(base64_decode("Z=g=").is_err(), "padding before data");
    }

    #[test]
    fn hello_and_unit_round_trip() {
        let hello = FromAgent::Hello {
            version: PROTOCOL_VERSION,
            slots: 4,
            cache_format: CACHE_FORMAT_VERSION,
        };
        let json = serde_json::to_string(&hello).unwrap();
        match serde_json::from_str::<FromAgent>(&json).unwrap() {
            FromAgent::Hello {
                version,
                slots,
                cache_format,
            } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert_eq!(slots, 4);
                assert_eq!(cache_format, CACHE_FORMAT_VERSION);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let unit = ToAgent::Unit {
            id: 9,
            name: "nginx_9".to_string(),
            path: "/corpus/0009_nginx.elf".to_string(),
            want: Want::Analysis,
            elf: vec![0x7f, b'E', b'L', b'F', 0, 1, 2, 3],
            options: bside_core::AnalyzerOptions::default(),
        };
        let json = serde_json::to_string(&unit).unwrap();
        match serde_json::from_str::<ToAgent>(&json).unwrap() {
            ToAgent::Unit {
                id,
                name,
                path,
                want,
                elf,
                options,
            } => {
                assert_eq!(id, 9);
                assert_eq!(name, "nginx_9");
                assert_eq!(path, "/corpus/0009_nginx.elf");
                assert_eq!(want, Want::Analysis);
                assert_eq!(elf, vec![0x7f, b'E', b'L', b'F', 0, 1, 2, 3]);
                assert_eq!(
                    options.limits,
                    bside_core::AnalyzerOptions::default().limits
                );
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn control_messages_round_trip_via_line_codec() {
        let mut buf = Vec::new();
        write_message(
            &mut buf,
            &ToAgent::Welcome {
                version: PROTOCOL_VERSION,
                heartbeat_interval_ms: 500,
            },
        )
        .unwrap();
        write_message(&mut buf, &ToAgent::Shutdown).unwrap();
        write_message(&mut buf, &FromAgent::Heartbeat).unwrap();
        let mut reader = std::io::BufReader::new(buf.as_slice());
        assert!(matches!(
            read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES).unwrap(),
            Some(ToAgent::Welcome {
                version: PROTOCOL_VERSION,
                heartbeat_interval_ms: 500
            })
        ));
        assert!(matches!(
            read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES).unwrap(),
            Some(ToAgent::Shutdown)
        ));
        assert!(matches!(
            read_message_capped::<FromAgent>(&mut reader, MAX_FLEET_LINE_BYTES).unwrap(),
            Some(FromAgent::Heartbeat)
        ));
        assert!(
            read_message_capped::<FromAgent>(&mut reader, MAX_FLEET_LINE_BYTES)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn unknown_tags_and_garbage_are_errors() {
        assert!(serde_json::from_str::<FromAgent>("{\"type\":\"gimme\"}").is_err());
        assert!(serde_json::from_str::<ToAgent>("{\"type\":\"nope\"}").is_err());
        assert!(serde_json::from_str::<FromAgent>("not json").is_err());
        assert!(serde_json::from_str::<ToAgent>(
            "{\"type\":\"unit\",\"id\":1,\"name\":\"x\",\"path\":\"p\",\"want\":\"Analysis\",\
             \"elf\":\"!!!!\",\"options\":{}}"
        )
        .is_err());
    }
}
