//! The fleet coordinator: accept loop, agent sessions, heartbeat and
//! deadline policing, dead-agent requeue, and the submission API.
//!
//! This generalizes the dist coordinator one level up the scaling
//! ladder: where `bside_dist` spawns local child *processes* over
//! pipes, the fleet coordinator accepts remote *agents* over TCP (or
//! Unix sockets for same-host tests) and never spawns anything — agents
//! dial in, announce their capabilities, and pull work. The fault model
//! is the same, machine-shaped:
//!
//! * an agent that **disconnects** (killed, crashed, rebooted) is
//!   detected as EOF or a transport error on its connection; its
//!   in-flight units are requeued onto surviving agents;
//! * an agent that **goes silent** (partitioned, wedged) misses its
//!   heartbeat cadence and is declared dead by the socket read timeout —
//!   no out-of-band probe, no pinging thread;
//! * a unit that **exceeds its wall-clock budget** is expired by the
//!   reaper; since a remote process cannot be killed from here, the
//!   whole agent connection is severed (the machine-level analogue of
//!   the dist watchdog's `kill`) and everything it held is requeued;
//! * a unit that keeps failing exhausts the attempt budget — carried on
//!   the unit exactly as in `dist::queue` — and is recorded as a
//!   per-unit [`UnitFailure`]; a corpus run always completes.
//!
//! The coordinator is a long-lived service, not a one-shot run:
//! [`FleetSubmitter`] feeds it units from anywhere (the serve daemon's
//! analyze-on-miss leaders offload through it), and
//! [`analyze_corpus_fleet`] layers the batch corpus semantics — cache
//! pre-pass, input-ordered merge, byte-identical report — on top.

use crate::protocol::{
    read_message_capped, seal_down, write_message, FromAgent, ToAgent, Want, CACHE_FORMAT_VERSION,
    MAX_FLEET_LINE_BYTES, PROTOCOL_VERSION,
};
use crate::queue::{FleetQueue, FleetUnit, UnitDone, UnitOutput, UnitSlot};
use crate::registry::{AgentSnapshot, AgentState, Pending, Registry, ReplySlot, SlotReply};
use bside_core::{AnalyzerOptions, BinaryAnalysis};
use bside_dist::cache::ResultCache;
use bside_dist::coordinator::{CorpusRun, RunStats, UnitReport};
use bside_dist::worker::read_error_message;
use bside_dist::{DistError, FailureKind, UnitFailure};
use bside_obs as obs;
use bside_serve::net::{cleanup, is_deadline, Listener};
use bside_serve::{Conn, Endpoint, PolicyBundle};
use std::io::BufReader;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a fleet coordinator.
#[derive(Clone)]
pub struct FleetOptions {
    /// Analyzer configuration shipped with every unit. Parallelism is
    /// forced to 1 on the wire: agent slots are the fan-out axis, and
    /// thread count is unobservable by the determinism contract anyway.
    pub analyzer: AnalyzerOptions,
    /// Wall-clock budget per unit attempt; an agent holding a unit past
    /// this is severed and everything it held is requeued.
    pub unit_timeout: Duration,
    /// Heartbeat cadence prescribed to agents in the welcome.
    pub heartbeat_interval: Duration,
    /// Silence budget: an agent connection with no frame (heartbeat or
    /// otherwise) for this long is declared dead. Must comfortably
    /// exceed `heartbeat_interval`.
    pub heartbeat_timeout: Duration,
    /// Total dispatch attempts per unit (2 = one retry) — the
    /// `dist::queue` retry budget.
    pub max_attempts: u32,
    /// Directory of the content-addressed result cache shared with the
    /// dist engine; `None` disables caching. Used by
    /// [`analyze_corpus_fleet`]'s pre-pass.
    pub cache_dir: Option<PathBuf>,
    /// Shared fleet secret. When set, every connection is challenged:
    /// the hello must carry the matching MAC ([`crate::auth::hello_mac`])
    /// and every subsequent agent frame must arrive sealed
    /// ([`crate::protocol::seal`]) — an unauthenticated or forged peer
    /// is rejected in band and lands nothing in the result cache.
    pub secret: Option<String>,
    /// The telemetry registry the coordinator's counters and per-agent
    /// histograms land in. `None` gives the coordinator a fresh private
    /// registry (so parallel in-process coordinators — tests — never
    /// bleed counts into each other); the `bside` binaries pass
    /// `obs::global()` so one process-wide dump covers everything.
    pub registry: Option<Arc<obs::Registry>>,
}

impl std::fmt::Debug for FleetOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetOptions")
            .field("analyzer", &self.analyzer)
            .field("unit_timeout", &self.unit_timeout)
            .field("heartbeat_interval", &self.heartbeat_interval)
            .field("heartbeat_timeout", &self.heartbeat_timeout)
            .field("max_attempts", &self.max_attempts)
            .field("cache_dir", &self.cache_dir)
            .field("secret", &self.secret.as_ref().map(|_| "…"))
            .field("registry", &self.registry.is_some())
            .finish()
    }
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            analyzer: AnalyzerOptions::default(),
            unit_timeout: Duration::from_secs(60),
            heartbeat_interval: Duration::from_secs(1),
            heartbeat_timeout: Duration::from_secs(5),
            max_attempts: 2,
            cache_dir: None,
            secret: None,
            registry: None,
        }
    }
}

/// Aggregate counters of a fleet coordinator's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Agents currently registered and alive.
    pub agents_alive: usize,
    /// Agents that ever completed the hello.
    pub agents_joined: u64,
    /// Agents declared dead (EOF, silence, deadline sever) outside
    /// shutdown.
    pub agents_lost: u64,
    /// Hellos refused in band (version/cache mismatch, bad slot count,
    /// or failed authentication).
    pub agents_rejected: u64,
    /// Live slot capacity (sum of alive agents' announced slots).
    pub slots: usize,
    /// Unit frames written to agents (retries included).
    pub dispatched: u64,
    /// Units that reached a successful terminal state.
    pub completed: u64,
    /// Units requeued after a lost or failed attempt.
    pub retries: u64,
    /// Unit attempts that expired at the deadline (or died with a
    /// silent agent).
    pub timeouts: u64,
    /// Units that ended in a permanent failure.
    pub failures: u64,
}

#[derive(Default)]
struct Counters {
    dispatched: AtomicU64,
    completed: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    failures: AtomicU64,
    rejected: AtomicU64,
}

/// The coordinator's registry-backed telemetry: the unit lifecycle
/// (queued → dispatched → landed, or requeued/failed along the way) and
/// the agent population. Pre-registered handles — the hot paths never
/// take the registry's registration lock.
struct FleetMetrics {
    registry: Arc<obs::Registry>,
    units_queued: Arc<obs::Counter>,
    units_dispatched: Arc<obs::Counter>,
    units_landed: Arc<obs::Counter>,
    units_requeued: Arc<obs::Counter>,
    units_failed: Arc<obs::Counter>,
    unit_timeouts: Arc<obs::Counter>,
    agents_joined: Arc<obs::Counter>,
    agents_lost: Arc<obs::Counter>,
    agents_rejected: Arc<obs::Counter>,
}

impl FleetMetrics {
    fn new(registry: Arc<obs::Registry>) -> FleetMetrics {
        FleetMetrics {
            units_queued: registry.counter("bside_fleet_units_queued_total"),
            units_dispatched: registry.counter("bside_fleet_units_dispatched_total"),
            units_landed: registry.counter("bside_fleet_units_landed_total"),
            units_requeued: registry.counter("bside_fleet_units_requeued_total"),
            units_failed: registry.counter("bside_fleet_units_failed_total"),
            unit_timeouts: registry.counter("bside_fleet_unit_timeouts_total"),
            agents_joined: registry.counter("bside_fleet_agents_joined_total"),
            agents_lost: registry.counter("bside_fleet_agents_lost_total"),
            agents_rejected: registry.counter("bside_fleet_agents_rejected_total"),
            registry,
        }
    }

    /// The per-agent answer-latency histogram, labeled by the peer
    /// address the agent dialed from. Registered once per session (not
    /// per unit) and cached on the [`AgentState`].
    fn unit_duration(&self, agent_addr: &str) -> Arc<obs::Histogram> {
        self.registry
            .histogram_with("bside_fleet_unit_duration_us", &[("agent", agent_addr)])
    }
}

struct FleetShared {
    queue: FleetQueue,
    registry: Registry,
    options: FleetOptions,
    /// `options.analyzer` with parallelism forced to 1 — what actually
    /// crosses the wire.
    wire_options: AnalyzerOptions,
    endpoint: Endpoint,
    shutdown: AtomicBool,
    seq: AtomicU64,
    stats: Counters,
    metrics: FleetMetrics,
}

impl FleetShared {
    fn submit(
        &self,
        name: &str,
        path: &str,
        bytes: Vec<u8>,
        want: Want,
    ) -> (Arc<UnitSlot>, Arc<AtomicBool>) {
        let done = Arc::new(UnitSlot::default());
        let abandoned = Arc::new(AtomicBool::new(false));
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        // Capture the submitter's ambient trace context (a corpus run's
        // root span, a serve daemon's offload span) so the dispatch span
        // hangs under it; stamp this unit's own id into the triple.
        let trace = obs::current_context().map(|ctx| obs::TraceContext {
            unit_id: seq,
            ..ctx
        });
        let unit = FleetUnit {
            seq,
            name: name.to_string(),
            path: path.to_string(),
            bytes: Arc::new(bytes),
            want,
            attempts: 0,
            done: Arc::clone(&done),
            abandoned: Arc::clone(&abandoned),
            trace,
        };
        if self.queue.push(unit) {
            self.metrics.units_queued.inc();
        } else {
            self.stats.failures.fetch_add(1, Ordering::Relaxed);
            self.metrics.units_failed.inc();
            done.finish(UnitDone {
                attempts: 0,
                result: Err(UnitFailure {
                    kind: FailureKind::WorkerCrash,
                    message: "fleet coordinator is shut down".to_string(),
                    attempts: 0,
                }),
            });
        }
        (done, abandoned)
    }

    /// Requeues a lost/failed unit, or records its permanent failure
    /// when the attempt budget is spent — `dist`'s retry accounting over
    /// the open queue.
    fn retry_or_fail(&self, mut unit: FleetUnit, kind: FailureKind, message: String) {
        if self.queue.retry(&mut unit) {
            self.stats.retries.fetch_add(1, Ordering::Relaxed);
            self.metrics.units_requeued.inc();
        } else {
            self.stats.failures.fetch_add(1, Ordering::Relaxed);
            self.metrics.units_failed.inc();
            let attempts = unit.attempts.max(1);
            unit.done.finish(UnitDone {
                attempts,
                result: Err(UnitFailure {
                    kind,
                    message,
                    attempts,
                }),
            });
        }
    }

    fn complete(&self, agent: &AgentState, unit: &FleetUnit, output: UnitOutput) {
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        self.metrics.units_landed.inc();
        agent.completed.fetch_add(1, Ordering::Relaxed);
        unit.done.finish(UnitDone {
            attempts: unit.attempts + 1,
            result: Ok(output),
        });
    }

    /// One agent slot's dispatcher loop: pull, ship, await the routed
    /// reply, record or requeue. The agent's dead flag doubles as the
    /// pull's stop signal, so a dead agent's dispatchers drain out
    /// within one pull slice instead of lingering until the next
    /// submission.
    fn run_dispatcher(&self, agent: &Arc<AgentState>) {
        while !agent.is_dead() {
            let Some(unit) = self.queue.pull(&agent.dead) else {
                return; // coordinator shutting down, or this agent died
            };
            // Pulled just as this agent died (or while it was dying):
            // hand the unit straight back — no attempt spent — for a
            // surviving agent. register_dispatch makes the check
            // airtight: it refuses under the same lock mark_dead drains.
            let reply = Arc::new(ReplySlot::default());
            let registered = agent.register_dispatch(
                unit.seq,
                Pending {
                    reply: Arc::clone(&reply),
                    deadline: Instant::now() + self.options.unit_timeout,
                    _unit_done: Arc::clone(&unit.done),
                },
            );
            if !registered {
                if let Some(orphan) = self.queue.put_back(unit) {
                    self.retry_or_fail(
                        orphan,
                        FailureKind::WorkerCrash,
                        "fleet coordinator shut down before the unit was dispatched".to_string(),
                    );
                }
                return;
            }
            // The dispatch span covers ship → agent → reply. It opens
            // under the unit's submitted context (dropped after the span
            // closes, so the context cannot leak into the next pull) and
            // its id crosses the wire, making the agent's `analyze` span
            // this span's child in the stitched trace.
            let unit_ctx = obs::set_context(unit.trace.unwrap_or_default());
            let dispatch_span = obs::span("dispatch");
            let message = ToAgent::Unit {
                id: unit.seq,
                name: unit.name.clone(),
                path: unit.path.clone(),
                want: unit.want,
                elf: (*unit.bytes).clone(),
                options: self.wire_options.clone(),
                trace: obs::enabled().then(|| dispatch_span.context()),
            };
            self.stats.dispatched.fetch_add(1, Ordering::Relaxed);
            self.metrics.units_dispatched.inc();
            if send_to_agent(agent, &message).is_err() {
                // The connection is gone; mark_dead fills our reply
                // slot (and everyone else's) so the wait below is
                // still the single recovery path.
                self.declare_dead(agent, FailureKind::WorkerCrash);
            }
            let outcome = reply.wait();
            let elapsed = dispatch_span.finish();
            drop(unit_ctx);
            if matches!(outcome, SlotReply::Message(_)) {
                agent.unit_duration.record(elapsed.as_micros() as u64);
            }
            match outcome {
                SlotReply::Message(FromAgent::Result {
                    analysis, spans, ..
                }) if unit.want == Want::Analysis => {
                    obs::record_remote(spans);
                    self.complete(agent, &unit, UnitOutput::Analysis(analysis));
                }
                SlotReply::Message(FromAgent::Bundle { bundle, spans, .. })
                    if unit.want == Want::Bundle =>
                {
                    obs::record_remote(spans);
                    self.complete(agent, &unit, UnitOutput::Bundle(bundle));
                }
                SlotReply::Message(FromAgent::Error { message, spans, .. }) => {
                    obs::record_remote(spans);
                    // Deterministic unit failure: retried like a lost
                    // attempt (same budget), then recorded with the
                    // analysis error's own message so the merged report
                    // matches the in-process run byte-for-byte.
                    self.retry_or_fail(unit, FailureKind::Analysis, message);
                }
                SlotReply::Message(_) => {
                    // Wrong payload kind for the unit: the stream is not
                    // trustworthy; sever the agent and requeue.
                    self.declare_dead(agent, FailureKind::Protocol);
                    self.retry_or_fail(
                        unit,
                        FailureKind::Protocol,
                        "agent answered with the wrong payload kind".to_string(),
                    );
                }
                SlotReply::Lost(kind) => {
                    if kind == FailureKind::Timeout {
                        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        self.metrics.unit_timeouts.inc();
                    }
                    let message = match kind {
                        FailureKind::Timeout => format!(
                            "unit exceeded the {:?} deadline and its agent was severed",
                            self.options.unit_timeout
                        ),
                        FailureKind::Protocol => "agent broke protocol mid-unit".to_string(),
                        _ => "agent connection lost mid-unit".to_string(),
                    };
                    self.retry_or_fail(unit, kind, message);
                }
            }
        }
    }

    /// Declares an agent dead, attributing the loss unless the
    /// coordinator is shutting down (goodbyes are not casualties).
    fn declare_dead(&self, agent: &AgentState, kind: FailureKind) {
        if agent.mark_dead(kind) && !self.shutdown.load(Ordering::SeqCst) {
            self.registry.lost_total.fetch_add(1, Ordering::Relaxed);
            self.metrics.agents_lost.inc();
        }
    }

    fn snapshot(&self) -> FleetStats {
        let alive = self.registry.alive();
        FleetStats {
            agents_alive: alive.len(),
            agents_joined: self.registry.joined_total.load(Ordering::Relaxed),
            agents_lost: self.registry.lost_total.load(Ordering::Relaxed),
            agents_rejected: self.stats.rejected.load(Ordering::Relaxed),
            slots: alive.iter().map(|a| a.slots).sum(),
            dispatched: self.stats.dispatched.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            timeouts: self.stats.timeouts.load(Ordering::Relaxed),
            failures: self.stats.failures.load(Ordering::Relaxed),
        }
    }

    fn begin_teardown(self: &Arc<Self>, goodbye: bool) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Fail whatever never got dispatched.
        for unit in self.queue.close() {
            self.stats.failures.fetch_add(1, Ordering::Relaxed);
            self.metrics.units_failed.inc();
            let attempts = unit.attempts;
            unit.done.finish(UnitDone {
                attempts,
                result: Err(UnitFailure {
                    kind: FailureKind::WorkerCrash,
                    message: "fleet coordinator shut down before the unit was dispatched"
                        .to_string(),
                    attempts,
                }),
            });
        }
        // Say goodbye, then sever. `shutdown(2)` is an orderly release:
        // the queued goodbye frame is delivered before the FIN, so
        // agents see either the frame or a clean EOF — both a clean end
        // of service — and no coordinator-side reader can stay blocked.
        // An *abort* (crash simulation) skips the goodbye: agents see a
        // bare severed link, exactly what a killed coordinator leaves
        // behind, and their reconnect loops take over.
        let agents = self.registry.alive();
        if goodbye {
            for agent in &agents {
                let _ = send_to_agent(agent, &ToAgent::Shutdown);
            }
        }
        for agent in &agents {
            self.declare_dead(agent, FailureKind::WorkerCrash);
        }
        // Wake the blocking accept; the connection is dropped on sight.
        let _ = Conn::connect(&self.endpoint);
    }
}

/// Writes one post-welcome frame to an agent, sealing it on secured
/// fleets. Downlink frames carry the unit payloads, so they need the
/// same integrity cover as the results coming back: a corrupted unit
/// would otherwise hand the agent a *different valid binary* and come
/// back as a correctly sealed wrong answer. The sequence number is
/// claimed while the writer lock is held, so stream order always
/// matches sequence order and the agent's monotonic policy never trips
/// on a healthy link.
fn send_to_agent(agent: &AgentState, message: &ToAgent) -> std::io::Result<()> {
    let mut writer = agent.writer.lock().expect("agent writer lock");
    match &agent.seal {
        Some(seal) => {
            let seq = seal.next_seq.fetch_add(1, Ordering::Relaxed);
            let sealed = seal_down(&seal.key, seq, message)?;
            write_message(&mut *writer, &sealed)
        }
        None => write_message(&mut *writer, message),
    }
}

/// How often the reaper sweeps unit deadlines.
const REAPER_TICK: Duration = Duration::from_millis(50);

fn reaper_loop(shared: &Arc<FleetShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        let now = Instant::now();
        for agent in shared.registry.alive() {
            if agent.expire_deadlines(now) > 0 {
                // A remote process cannot be killed from here; severing
                // the connection is the machine-level analogue of the
                // dist watchdog's kill. Everything else the agent held
                // is failed as a lost attempt and requeued.
                shared.declare_dead(&agent, FailureKind::WorkerCrash);
            }
        }
        std::thread::sleep(REAPER_TICK);
    }
}

fn accept_loop(
    shared: &Arc<FleetShared>,
    listener: Listener,
    sessions: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok(conn) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break; // the wake connection (or a late agent)
                }
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || run_session(&shared, conn));
                let mut sessions = sessions.lock().expect("session list lock");
                // Reap finished sessions as new ones arrive, so a
                // long-lived coordinator under agent churn does not
                // accumulate one JoinHandle per connection forever.
                let (done, running): (Vec<_>, Vec<_>) =
                    sessions.drain(..).partition(|h| h.is_finished());
                *sessions = running;
                for finished in done {
                    let _ = finished.join();
                }
                sessions.push(handle);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    cleanup(&shared.endpoint);
}

/// The id an agent message answers, if any.
fn message_id(message: &FromAgent) -> Option<u64> {
    match message {
        FromAgent::Result { id, .. }
        | FromAgent::Bundle { id, .. }
        | FromAgent::Error { id, .. } => Some(*id),
        _ => None,
    }
}

/// One agent connection's lifetime: hello/welcome handshake, dispatcher
/// fan-out, and the read loop that doubles as liveness detection.
fn run_session(shared: &Arc<FleetShared>, conn: Conn) {
    // The socket read timeout *is* the heartbeat deadline: heartbeats
    // guarantee bytes at least every `heartbeat_interval`, so a read
    // that times out means the agent went silent for the whole budget.
    if conn
        .set_read_timeout(Some(shared.options.heartbeat_timeout))
        .is_err()
    {
        return;
    }
    let Ok(sever_handle) = conn.try_clone() else {
        return;
    };
    let Ok(writer) = conn.try_clone() else {
        return;
    };
    let addr = conn.peer_label();
    let mut reader = BufReader::new(conn);

    // The challenge opens every connection — secured and open fleets
    // share one handshake shape, and the nonce is on the wire before
    // the hello is read, so neither side ever deadlocks writing first.
    let nonce = crate::auth::fresh_nonce();
    let mut writer = writer;
    if write_message(
        &mut writer,
        &ToAgent::Challenge {
            nonce: nonce.clone(),
        },
    )
    .is_err()
    {
        return;
    }

    // The capability hello, under the same deadline as any other frame.
    let hello = read_message_capped::<FromAgent>(&mut reader, MAX_FLEET_LINE_BYTES);
    let (slots, reject) = match hello {
        Ok(Some(FromAgent::Hello {
            version,
            slots,
            cache_format,
            auth,
        })) => {
            if version != PROTOCOL_VERSION {
                (
                    0,
                    Some(format!(
                        "agent speaks fleet protocol v{version}, expected v{PROTOCOL_VERSION}"
                    )),
                )
            } else if cache_format != CACHE_FORMAT_VERSION {
                (
                    0,
                    Some(format!(
                        "agent analysis semantics (cache format v{cache_format}) differ from the \
                     coordinator's (v{CACHE_FORMAT_VERSION}); its results would poison the \
                     shared result cache — rebuild the agent"
                    )),
                )
            } else if slots == 0 || slots > 1024 {
                (
                    0,
                    Some(format!(
                        "agent announced {slots} slot(s); expected between 1 and 1024"
                    )),
                )
            } else if let Some(secret) = &shared.options.secret {
                let expected = crate::auth::hello_mac(secret, &nonce, version, slots, cache_format);
                match auth {
                    // The comparison leaks timing, but the MAC is
                    // per-connection (fresh nonce): a byte-at-a-time
                    // oracle has nothing stable to probe.
                    Some(mac) if mac == expected => (slots, None),
                    Some(_) => (
                        0,
                        Some("agent failed authentication (wrong fleet secret?)".to_string()),
                    ),
                    None => (
                        0,
                        Some(
                            "this fleet requires authentication; start the agent with \
                             --fleet-secret (or BSIDE_FLEET_SECRET)"
                                .to_string(),
                        ),
                    ),
                }
            } else {
                (slots, None)
            }
        }
        _ => (0, Some("agent did not open with a hello".to_string())),
    };
    if let Some(message) = reject {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        shared.metrics.agents_rejected.inc();
        let _ = write_message(&mut writer, &ToAgent::Reject { message });
        return;
    }

    // On a secured fleet the rest of the session arrives sealed under a
    // key derived from (secret, nonce); `last_seq` enforces the
    // strictly-increasing sequence policy.
    let session_key = shared
        .options
        .secret
        .as_deref()
        .map(|secret| crate::auth::session_key(secret, &nonce));

    let unit_duration = shared.metrics.unit_duration(&addr);
    shared.metrics.agents_joined.inc();
    let agent = shared.registry.register(
        addr,
        slots,
        sever_handle,
        writer,
        session_key,
        unit_duration,
    );
    // The welcome itself stays plaintext: it announces sealing, and the
    // agent refuses to proceed unsealed when it holds a secret, so a
    // tampered `sealed` flag fails loudly on whichever side it targets.
    {
        let mut writer = agent.writer.lock().expect("agent writer lock");
        if write_message(
            &mut *writer,
            &ToAgent::Welcome {
                version: PROTOCOL_VERSION,
                heartbeat_interval_ms: shared.options.heartbeat_interval.as_millis() as u64,
                sealed: session_key.is_some(),
            },
        )
        .is_err()
        {
            drop(writer);
            shared.declare_dead(&agent, FailureKind::WorkerCrash);
            return;
        }
    }

    let dispatchers: Vec<JoinHandle<()>> = (0..slots)
        .map(|_| {
            let shared = Arc::clone(shared);
            let agent = Arc::clone(&agent);
            std::thread::spawn(move || shared.run_dispatcher(&agent))
        })
        .collect();

    // The session thread is the read loop: route replies, absorb
    // heartbeats, and turn EOF / silence / garbage into a death verdict.
    // On a secured link every frame must arrive sealed with a fresh
    // sequence number: a bad MAC or an unsealed frame severs the agent
    // (the stream is not trustworthy), while a stale sequence number is
    // dropped silently — that is what a replayed or fault-duplicated
    // frame looks like, and it must not kill a healthy link.
    let mut last_seq: u64 = 0;
    let kind = loop {
        let message = match read_message_capped::<FromAgent>(&mut reader, MAX_FLEET_LINE_BYTES) {
            Ok(Some(FromAgent::Sealed { seq, mac, body })) => match &session_key {
                Some(key) => {
                    if seq <= last_seq {
                        continue; // replay or duplicate: drop, stay alive
                    }
                    match crate::protocol::unseal(key, seq, &mac, &body) {
                        Ok(inner) => {
                            last_seq = seq;
                            inner
                        }
                        Err(_) => break FailureKind::Protocol, // forged or corrupted
                    }
                }
                // Sealed frames at an open coordinator: a configuration
                // mismatch that must surface loudly, not parse quietly.
                None => break FailureKind::Protocol,
            },
            Ok(Some(message)) => {
                if session_key.is_some() {
                    break FailureKind::Protocol; // unsealed frame on a secured link
                }
                message
            }
            Ok(None) => break FailureKind::WorkerCrash, // clean EOF
            Err(e) if is_deadline(&e) => break FailureKind::Timeout, // silence
            Err(_) => break FailureKind::Protocol,
        };
        match message_id(&message) {
            Some(id) => agent.route_reply(id, message),
            None => match message {
                FromAgent::Heartbeat => {}
                _ => break FailureKind::Protocol, // a second hello, or a nested seal
            },
        }
    };
    shared.declare_dead(&agent, kind);
    for dispatcher in dispatchers {
        let _ = dispatcher.join();
    }
    // The session is over: unregister so months of agent churn cannot
    // accumulate dead-agent sockets and pending maps in the registry
    // (the joined/lost lifetime counters survive).
    shared.registry.remove(agent.id);
}

/// The fleet coordinator. [`FleetCoordinator::bind`] binds the listen
/// endpoint and returns a handle; agents dial in on their own schedule.
pub struct FleetCoordinator;

impl FleetCoordinator {
    /// Binds `endpoint` and starts the accept loop and the deadline
    /// reaper. For `tcp:…:0` the handle reports the resolved port.
    pub fn bind(endpoint: &Endpoint, options: FleetOptions) -> std::io::Result<FleetHandle> {
        let (listener, resolved) = Listener::bind(endpoint)?;
        let mut wire_options = options.analyzer.clone();
        wire_options.parallelism = 1;
        let max_attempts = options.max_attempts;
        let metrics = FleetMetrics::new(
            options
                .registry
                .clone()
                .unwrap_or_else(|| Arc::new(obs::Registry::new())),
        );
        let shared = Arc::new(FleetShared {
            queue: FleetQueue::new(max_attempts),
            registry: Registry::default(),
            options,
            wire_options,
            endpoint: resolved,
            shutdown: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            stats: Counters::default(),
            metrics,
        });
        let sessions = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let sessions = Arc::clone(&sessions);
            std::thread::spawn(move || accept_loop(&shared, listener, &sessions))
        };
        let reaper = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || reaper_loop(&shared))
        };
        Ok(FleetHandle {
            shared,
            accept: Some(accept),
            reaper: Some(reaper),
            sessions,
        })
    }
}

/// A handle on a running fleet coordinator.
pub struct FleetHandle {
    shared: Arc<FleetShared>,
    accept: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl FleetHandle {
    /// The endpoint the coordinator actually listens on.
    pub fn endpoint(&self) -> &Endpoint {
        &self.shared.endpoint
    }

    /// A cloneable submission handle (what the serve daemon's offload
    /// closure captures).
    pub fn submitter(&self) -> FleetSubmitter {
        FleetSubmitter {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A point-in-time copy of the coordinator's counters.
    pub fn stats(&self) -> FleetStats {
        self.shared.snapshot()
    }

    /// The coordinator's telemetry registry rendered in Prometheus text
    /// exposition format: the unit lifecycle counters, the agent
    /// population, and the per-agent answer-latency histograms.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.registry.render_prometheus()
    }

    /// Snapshots of every agent that ever registered.
    pub fn agents(&self) -> Vec<AgentSnapshot> {
        self.shared.registry.snapshots()
    }

    /// Blocks until at least `n` agents are alive or `timeout` expires;
    /// returns whether the quorum was met. Corpus runs use this to avoid
    /// queueing a whole corpus against an empty fleet by mistake.
    pub fn wait_for_agents(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.registry.alive().len() >= n {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Initiates shutdown (goodbye frames, queue drain, socket cleanup)
    /// and waits for every thread to exit.
    pub fn shutdown(mut self) {
        self.shared.begin_teardown(true);
        self.join_threads();
    }

    /// Tears the coordinator down **without goodbyes** — the
    /// crash-simulation lever for the chaos suites. Agents see a bare
    /// severed link (exactly what a killed coordinator process leaves
    /// behind) and their reconnect loops take over; the listen port is
    /// released so a successor can bind it.
    pub fn abort(mut self) {
        self.shared.begin_teardown(false);
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(reaper) = self.reaper.take() {
            let _ = reaper.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut sessions = self.sessions.lock().expect("session list lock");
            sessions.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for FleetHandle {
    fn drop(&mut self) {
        self.shared.begin_teardown(true);
        self.join_threads();
    }
}

/// A cloneable handle for submitting units to a running coordinator.
#[derive(Clone)]
pub struct FleetSubmitter {
    shared: Arc<FleetShared>,
}

/// What a submitted unit resolved to.
#[derive(Debug)]
pub enum FleetOutput {
    /// A [`Want::Analysis`] unit's payload.
    Analysis(Box<BinaryAnalysis>),
    /// A [`Want::Bundle`] unit's payload.
    Bundle(Box<PolicyBundle>),
}

/// A submitted unit awaiting its terminal state.
pub struct PendingUnit {
    slot: Arc<UnitSlot>,
    abandoned: Arc<AtomicBool>,
}

impl PendingUnit {
    fn resolve(done: UnitDone) -> (u32, Result<FleetOutput, UnitFailure>) {
        let result = done.result.map(|output| match output {
            UnitOutput::Analysis(a) => FleetOutput::Analysis(a),
            UnitOutput::Bundle(b) => FleetOutput::Bundle(b),
        });
        (done.attempts, result)
    }

    /// Blocks until the unit succeeds or permanently fails; returns the
    /// attempts spent alongside the outcome. Right for corpus runs,
    /// where waiting for an agent to appear is the documented workflow.
    pub fn wait(self) -> (u32, Result<FleetOutput, UnitFailure>) {
        Self::resolve(self.slot.wait())
    }

    /// [`PendingUnit::wait`] with a budget: `None` when the unit is
    /// still not terminal at the deadline. The unit is **abandoned** —
    /// if it is still queued (e.g. no agent ever connected), no agent
    /// will ever receive it; a dispatch already in flight completes
    /// into the void. Callers that must never block forever (the serve
    /// daemon's offload leaders) use this.
    pub fn wait_for(self, budget: Duration) -> Option<(u32, Result<FleetOutput, UnitFailure>)> {
        match self.slot.wait_for(budget) {
            Some(done) => Some(Self::resolve(done)),
            None => {
                self.abandoned.store(true, Ordering::SeqCst);
                None
            }
        }
    }
}

impl FleetSubmitter {
    /// Submits one binary for analysis ([`Want::Analysis`]). `path` is
    /// display-only (error-message rendering).
    pub fn submit_analysis(&self, name: &str, path: &str, bytes: Vec<u8>) -> PendingUnit {
        let (slot, abandoned) = self.shared.submit(name, path, bytes, Want::Analysis);
        PendingUnit { slot, abandoned }
    }

    /// Submits one binary for full bundle derivation ([`Want::Bundle`])
    /// — the serve-daemon offload path.
    pub fn submit_bundle(&self, name: &str, path: &str, bytes: Vec<u8>) -> PendingUnit {
        let (slot, abandoned) = self.shared.submit(name, path, bytes, Want::Bundle);
        PendingUnit { slot, abandoned }
    }
}

/// Analyzes a corpus of on-disk static binaries across the fleet.
///
/// The batch semantics are exactly the dist engine's: a cache pre-pass
/// answers unchanged binaries without dispatching, every miss is shipped
/// in band to whichever agent pulls it first, results merge back in
/// input order, and the rendered report is **byte-identical** to
/// in-process [`Analyzer::analyze_corpus`](bside_core::Analyzer::analyze_corpus)
/// — deployment mode (threads, processes, machines) is unobservable.
///
/// The run completes even when individual units fail; only run-level
/// setup problems (an unusable cache directory) return an error. If no
/// agent ever connects the submissions wait in the queue — drive the
/// run under an external `timeout` when that is a possibility.
pub fn analyze_corpus_fleet(
    units: &[(String, PathBuf)],
    handle: &FleetHandle,
) -> Result<CorpusRun, DistError> {
    let shared = &handle.shared;
    // The run root: alive on this thread through submission and the
    // merge wait, so every unit submitted below inherits its context and
    // the whole corpus stitches into one cross-machine trace.
    let _run_span = obs::span_root("fleet_run", obs::new_run_id(), 0);
    let cache = match &shared.options.cache_dir {
        Some(dir) => Some(ResultCache::open(dir).map_err(DistError::Cache)?),
        None => None,
    };
    let before = shared.snapshot();

    let mut results: Vec<Option<UnitReport>> = Vec::with_capacity(units.len());
    results.resize_with(units.len(), || None);
    let mut cache_keys: Vec<Option<String>> = vec![None; units.len()];
    let mut pending: Vec<(usize, PendingUnit)> = Vec::new();
    let mut cache_hits = 0usize;

    for (id, (name, path)) in units.iter().enumerate() {
        let display = path.to_string_lossy().into_owned();
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                // The coordinator is the only filesystem toucher, so a
                // read failure surfaces here — with the same message a
                // dist worker (or the in-process reference) would render.
                results[id] = Some(UnitReport {
                    name: name.clone(),
                    result: Err(UnitFailure {
                        kind: FailureKind::Analysis,
                        message: read_error_message(&display, &e),
                        attempts: 1,
                    }),
                    attempts: 1,
                    from_cache: false,
                });
                continue;
            }
        };
        if let Some(cache) = &cache {
            let key = ResultCache::key(&bytes, &shared.wire_options);
            if let Some(analysis) = cache.load(&key) {
                cache_hits += 1;
                results[id] = Some(UnitReport {
                    name: name.clone(),
                    result: Ok(analysis),
                    attempts: 0,
                    from_cache: true,
                });
                continue;
            }
            cache_keys[id] = Some(key);
        }
        pending.push((
            id,
            handle.submitter().submit_analysis(name, &display, bytes),
        ));
    }

    for (id, unit) in pending {
        let (attempts, outcome) = unit.wait();
        let result = match outcome {
            Ok(FleetOutput::Analysis(analysis)) => Ok(*analysis),
            Ok(FleetOutput::Bundle(_)) => Err(UnitFailure {
                kind: FailureKind::Protocol,
                message: "fleet returned a bundle for an analysis unit".to_string(),
                attempts,
            }),
            Err(failure) => Err(failure),
        };
        results[id] = Some(UnitReport {
            name: units[id].0.clone(),
            result,
            attempts,
            from_cache: false,
        });
    }

    let results: Vec<UnitReport> = results
        .into_iter()
        .map(|r| r.expect("every unit reached a terminal state"))
        .collect();

    if let Some(cache) = &cache {
        for (report, key) in results.iter().zip(&cache_keys) {
            if let (Ok(analysis), Some(key), false) = (&report.result, key, report.from_cache) {
                let _ = cache.store(key, analysis);
            }
        }
    }

    let after = shared.snapshot();
    let failures = results.iter().filter(|r| r.result.is_err()).count();
    // "Workers" for a fleet run: every agent that was part of it —
    // those alive at the end plus any that joined during the run and
    // died along the way.
    let joined_during = (after.agents_joined - before.agents_joined) as usize;
    let stats = RunStats {
        units: units.len(),
        workers: after.agents_alive.max(joined_during),
        cache_hits,
        retries: (after.retries - before.retries) as usize,
        worker_crashes: (after.agents_lost - before.agents_lost) as usize,
        timeouts: (after.timeouts - before.timeouts) as usize,
        failures,
    };
    Ok(CorpusRun { results, stats })
}
