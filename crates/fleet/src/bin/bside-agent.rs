//! The standalone fleet agent binary: one long-lived worker per machine
//! (or per container), dialing the coordinator and pulling units. See
//! `bside_fleet::agent` for the protocol and fault-hook story.

fn main() {
    // Chaos opt-in (BSIDE_NET_FAULT_PLAN) happens here in main, never
    // lazily in the codec: a malformed plan refuses to start.
    if let Err(e) = bside_dist::fault::init_from_env() {
        eprintln!("bside-agent: {e}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(bside_fleet::agent::agent_main(&args));
}
