//! The standalone fleet agent binary: one long-lived worker per machine
//! (or per container), dialing the coordinator and pulling units. See
//! `bside_fleet::agent` for the protocol and fault-hook story.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(bside_fleet::agent::agent_main(&args));
}
