//! The agent side: a long-lived worker process on any machine that can
//! reach the coordinator.
//!
//! An agent is intentionally close to a dist worker in spirit — no
//! queue knowledge, no retry logic, no cache; a unit in, a message out —
//! but machine-shaped in mechanics: it *dials* the coordinator over
//! TCP, answers the coordinator's challenge in a capability hello
//! (protocol version, slot count, cache-format fingerprint, and — on
//! secured fleets — an HMAC over the challenge nonce and those fields),
//! receives binaries in band (no shared filesystem), analyzes up to
//! `slots` units concurrently, and keeps a heartbeat flowing from a
//! dedicated thread so the coordinator can tell "busy" from "gone"
//! without probing.
//!
//! # Session endings
//!
//! A session ends one of three ways, and they are deliberately
//! distinguishable:
//!
//! * **goodbye** — the coordinator's in-band `shutdown` frame: a clean
//!   end of service. [`run_agent_loop`] exits 0; supervisors must not
//!   treat it as a crash.
//! * **link lost** — a bare EOF or transport error mid-service: the
//!   coordinator crashed, restarted, or the network dropped.
//!   [`run_agent_loop`] re-dials under a capped decorrelated backoff
//!   ([`crate::backoff`]), re-runs the handshake, and resumes pulling;
//!   in-flight units are abandoned idempotently (the coordinator's
//!   reaper requeues them onto live agents).
//! * **fatal** — an in-band reject (failed authentication, version or
//!   cache-format mismatch) or a protocol-version downgrade: retrying
//!   cannot help, so the loop surfaces the error.
//!
//! # Fault-injection hooks
//!
//! The fleet fault-isolation tests drive real `bside-agent` processes
//! into machine-level failures, exactly as `dist/tests/fault_isolation.rs`
//! drives `bside-worker`:
//!
//! * `BSIDE_AGENT_CRASH_UNIT=<substr>` — abort the whole agent process
//!   before analyzing any unit whose name contains `<substr>` (the
//!   "machine died mid-unit" model — every slot's in-flight unit is
//!   lost at once);
//! * `BSIDE_AGENT_SEVER_UNIT=<substr>` — write *half* of the unit's
//!   result frame, flush it onto the wire, then abort: the coordinator
//!   sees a torn frame followed by EOF (the "connection severed
//!   mid-result" model);
//! * `BSIDE_AGENT_FAULT_MARKER=<path>` — make either fault one-shot:
//!   the first faulting agent creates `<path>` and later agents seeing
//!   the marker behave normally, so the retry succeeds elsewhere.

use crate::backoff::Backoff;
use crate::protocol::{
    read_message_capped, seal, write_message, FromAgent, ToAgent, Want, CACHE_FORMAT_VERSION,
    MAX_FLEET_LINE_BYTES, PROTOCOL_VERSION,
};
use bside_core::{Analyzer, AnalyzerOptions};
use bside_dist::worker::parse_error_message;
use bside_obs as obs;
use bside_serve::{Conn, Endpoint};
use std::io::{BufReader, Write as _};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The agent's registry-backed lifetime counters. The `AgentReport` a
/// library caller gets back is still counted per call (tests run
/// several agents concurrently in one process), but these feed the
/// metrics dump and the exit line, so a `bside-agent` process has one
/// source of truth for "how much did I do".
struct AgentMetrics {
    units: Arc<obs::Counter>,
    sessions: Arc<obs::Counter>,
}

fn agent_metrics() -> &'static AgentMetrics {
    static METRICS: OnceLock<AgentMetrics> = OnceLock::new();
    METRICS.get_or_init(|| AgentMetrics {
        units: obs::global().counter("bside_fleet_agent_units_total"),
        sessions: obs::global().counter("bside_fleet_agent_sessions_total"),
    })
}

/// Configuration of one agent process.
#[derive(Debug, Clone)]
pub struct AgentOptions {
    /// Units analyzed concurrently (announced in the hello; the
    /// coordinator never has more than this outstanding here).
    pub slots: usize,
    /// How long to keep redialing a coordinator that is not (yet)
    /// listening — lets the two-terminal walkthrough start either side
    /// first. `None` fails fast on the first refused connection.
    pub dial_timeout: Option<Duration>,
    /// Shared fleet secret: answer challenges with a hello MAC and seal
    /// every post-hello frame. Must match the coordinator's
    /// (`--fleet-secret` / `BSIDE_FLEET_SECRET` on both sides).
    pub secret: Option<String>,
    /// First reconnect delay of the decorrelated-jitter schedule
    /// ([`run_agent_loop`]).
    pub backoff_base: Duration,
    /// Reconnect delay ceiling.
    pub backoff_cap: Duration,
    /// Jitter seed; `None` derives one from process identity so a fleet
    /// of agents decorrelates naturally. Tests pin it for determinism.
    pub backoff_seed: Option<u64>,
    /// Agent-side heartbeat cap: beat at least this often even when the
    /// welcome prescribes a slower cadence (beating faster than required
    /// is always safe; slower never is).
    pub heartbeat_cap: Option<Duration>,
}

impl Default for AgentOptions {
    fn default() -> Self {
        AgentOptions {
            slots: 1,
            dial_timeout: Some(Duration::from_secs(10)),
            secret: None,
            backoff_base: Duration::from_millis(200),
            backoff_cap: Duration::from_secs(10),
            backoff_seed: None,
            heartbeat_cap: None,
        }
    }
}

/// What an agent did over its service lifetime.
#[derive(Debug, Clone, Copy)]
pub struct AgentReport {
    /// Units answered (results and in-band unit errors), summed across
    /// every session.
    pub units: u64,
    /// Sessions served (1 unless a reconnect loop re-dialed).
    pub sessions: u64,
}

/// Parses an agent-facing endpoint spec. Unlike the daemon's
/// [`Endpoint::parse`] (where a bare string is a Unix path), a bare
/// `HOST:PORT` here is TCP — `bside agent --connect 10.0.0.7:4711` is
/// the common case on a fleet; `unix:PATH` (or anything with a `/`)
/// still selects a Unix socket for same-host use.
pub fn connect_endpoint(spec: &str) -> Endpoint {
    if spec.starts_with("tcp:") || spec.starts_with("unix:") || spec.contains('/') {
        Endpoint::parse(spec)
    } else {
        Endpoint::Tcp(spec.to_string())
    }
}

fn fault_requested(var: &str, unit_name: &str) -> bool {
    let Ok(needle) = std::env::var(var) else {
        return false;
    };
    if !unit_name.contains(&needle) {
        return false;
    }
    match std::env::var("BSIDE_AGENT_FAULT_MARKER") {
        Ok(marker) => {
            let path = std::path::Path::new(&marker);
            if path.exists() {
                return false; // already faulted once; behave normally
            }
            let _ = std::fs::File::create(path);
            true
        }
        Err(_) => true,
    }
}

/// Analyzes one in-band unit; the error side carries the exact message
/// the in-process engine would render for the same degradation.
fn analyze_unit(
    id: u64,
    name: &str,
    path: &str,
    want: Want,
    elf_bytes: &[u8],
    options: AnalyzerOptions,
    trace: Option<obs::TraceContext>,
) -> FromAgent {
    if fault_requested("BSIDE_AGENT_CRASH_UNIT", name) {
        std::process::abort();
    }
    // Install the dispatch context (an absent/corrupted one degrades to
    // the all-zero default: the spans below become orphans) and collect
    // everything the analysis records — core's `analyze` span and its
    // per-phase children — to ship home in the reply instead of the
    // local ring.
    let _ctx = obs::set_context(trace.unwrap_or_default());
    let (mut reply, spans) = obs::collect(|| match want {
        Want::Analysis => {
            let elf = match bside_elf::Elf::parse(elf_bytes) {
                Ok(elf) => elf,
                Err(e) => {
                    return FromAgent::Error {
                        id,
                        message: parse_error_message(path, &e),
                        trace,
                        spans: Vec::new(),
                    }
                }
            };
            match Analyzer::new(options).analyze_static(&elf) {
                Ok(analysis) => FromAgent::Result {
                    id,
                    analysis: Box::new(analysis),
                    trace,
                    spans: Vec::new(),
                },
                Err(e) => FromAgent::Error {
                    id,
                    message: e.to_string(),
                    trace,
                    spans: Vec::new(),
                },
            }
        }
        // The offload path: the agent runs the *whole* derivation —
        // analysis, phase detection, BPF lowering — so the serve daemon
        // does none of it. Agents carry no shared-interface store, so a
        // dynamic binary degrades to the same guidance message the
        // daemon itself would produce without --lib-dir.
        Want::Bundle => match bside_serve::derive_bundle(name, elf_bytes, &options, None) {
            Ok(bundle) => FromAgent::Bundle {
                id,
                bundle: Box::new(bundle),
                trace,
                spans: Vec::new(),
            },
            Err(message) => FromAgent::Error {
                id,
                message,
                trace,
                spans: Vec::new(),
            },
        },
    });
    match &mut reply {
        FromAgent::Result { spans: slot, .. }
        | FromAgent::Bundle { spans: slot, .. }
        | FromAgent::Error { spans: slot, .. } => *slot = spans,
        _ => {}
    }
    reply
}

/// The sealing state of one secured session: the derived key and the
/// next frame sequence number. The number is assigned **under the
/// writer lock**, so sequence order always matches stream order and the
/// coordinator's strictly-increasing policy never trips on a healthy
/// agent.
struct SessionAuth {
    key: [u8; 32],
    next_seq: AtomicU64,
}

/// Writes one agent frame, sealing it first on secured sessions.
fn send_frame(
    writer: &Mutex<Conn>,
    auth: Option<&SessionAuth>,
    frame: &FromAgent,
) -> std::io::Result<()> {
    let mut conn = writer.lock().expect("agent writer lock");
    match auth {
        Some(auth) => {
            let seq = auth.next_seq.fetch_add(1, Ordering::Relaxed);
            let sealed = seal(&auth.key, seq, frame)?;
            write_message(&mut *conn, &sealed)
        }
        None => write_message(&mut *conn, frame),
    }
}

/// Writes a reply under the shared writer lock — unless the sever fault
/// hook fires, in which case half the frame is flushed onto the wire and
/// the process aborts (the torn-frame fault model).
fn write_reply(
    writer: &Mutex<Conn>,
    auth: Option<&SessionAuth>,
    name: &str,
    reply: &FromAgent,
) -> std::io::Result<()> {
    if fault_requested("BSIDE_AGENT_SEVER_UNIT", name) {
        let json = serde_json::to_string(reply)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut conn = writer.lock().expect("agent writer lock");
        let half = &json.as_bytes()[..json.len() / 2];
        let _ = conn.write_all(half);
        let _ = conn.flush();
        std::process::abort();
    }
    send_frame(writer, auth, reply)
}

fn dial(endpoint: &Endpoint, budget: Option<Duration>) -> std::io::Result<Conn> {
    let deadline = budget.map(|b| Instant::now() + b);
    loop {
        match Conn::connect(endpoint) {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                let retryable = matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused
                        | std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::NotFound
                );
                match deadline {
                    Some(d) if retryable && Instant::now() < d => {
                        std::thread::sleep(Duration::from_millis(150));
                    }
                    _ => return Err(e),
                }
            }
        }
    }
}

/// How one session ended, from the agent's point of view.
enum SessionEnd {
    /// The coordinator said goodbye in band: a clean end of service.
    Goodbye,
    /// The link died without a goodbye: reconnect territory.
    LinkLost(std::io::Error),
}

/// `true` for errors that redialing cannot fix: an in-band reject
/// (`PermissionDenied`) or a protocol-level incompatibility
/// (`Unsupported`). Everything else — refused dials, resets, garbled
/// frames — is link weather the reconnect loop rides out.
fn is_fatal(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::PermissionDenied | std::io::ErrorKind::Unsupported
    )
}

/// One connection's service lifetime: dial, challenge/hello handshake,
/// units until the link ends. Returns the units served and how the
/// session ended; `Err` means the handshake itself failed (classify
/// with [`is_fatal`]).
fn run_session(
    endpoint: &Endpoint,
    options: &AgentOptions,
    dial_budget: Option<Duration>,
) -> std::io::Result<(u64, SessionEnd)> {
    let conn = dial(endpoint, dial_budget)?;
    let writer = Arc::new(Mutex::new(conn.try_clone()?));
    let mut reader = BufReader::new(conn);
    let slots = options.slots.max(1);

    // The coordinator speaks first: every connection opens with its
    // challenge, whether or not the fleet is secured.
    let nonce = match read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES)? {
        Some(ToAgent::Challenge { nonce }) => nonce,
        Some(ToAgent::Reject { message }) => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                format!("coordinator rejected this agent: {message}"),
            ))
        }
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected challenge, got {other:?}"),
            ))
        }
    };
    let auth_mac = options.secret.as_deref().map(|secret| {
        crate::auth::hello_mac(
            secret,
            &nonce,
            PROTOCOL_VERSION,
            slots,
            CACHE_FORMAT_VERSION,
        )
    });
    write_message(
        &mut *writer.lock().expect("agent writer lock"),
        &FromAgent::Hello {
            version: PROTOCOL_VERSION,
            slots,
            cache_format: CACHE_FORMAT_VERSION,
            auth: auth_mac,
        },
    )?;
    let (heartbeat_interval, sealed) =
        match read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES)? {
            Some(ToAgent::Welcome {
                version,
                heartbeat_interval_ms,
                sealed,
            }) if version == PROTOCOL_VERSION => {
                (Duration::from_millis(heartbeat_interval_ms.max(50)), sealed)
            }
            Some(ToAgent::Welcome { version, .. }) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    format!(
                    "coordinator speaks fleet protocol v{version}, expected v{PROTOCOL_VERSION}"
                ),
                ))
            }
            Some(ToAgent::Reject { message }) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::PermissionDenied,
                    format!("coordinator rejected this agent: {message}"),
                ))
            }
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("expected welcome, got {other:?}"),
                ))
            }
        };
    // An agent holding a secret refuses to run unsealed: a welcome
    // without sealing means the coordinator never verified the hello
    // MAC — a misconfiguration (or a downgrade) that must fail loudly
    // instead of silently dropping the integrity guarantee.
    let auth = match (&options.secret, sealed) {
        (Some(secret), true) => Some(Arc::new(SessionAuth {
            key: crate::auth::session_key(secret, &nonce),
            next_seq: AtomicU64::new(1),
        })),
        (Some(_), false) => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "a fleet secret is configured but the coordinator does not seal frames; \
                 refusing to run with authentication silently disabled",
            ))
        }
        (None, true) => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "coordinator requires sealed frames but this agent has no fleet secret",
            ))
        }
        (None, false) => None,
    };
    // The agent may beat faster than prescribed (never slower): the
    // agent-side cap is a floor on cadence for jittery links.
    let heartbeat_interval = match options.heartbeat_cap {
        Some(cap) => heartbeat_interval.min(cap.max(Duration::from_millis(50))),
        None => heartbeat_interval,
    };

    // A completed handshake is a served session, however it later ends.
    agent_metrics().sessions.inc();

    let stop = Arc::new(AtomicBool::new(false));
    let units_done = Arc::new(AtomicU64::new(0));

    // The liveness channel: beats flow from a dedicated thread so a
    // fully busy agent (every slot mid-analysis) still reads as alive.
    let heartbeat = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop);
        let auth = auth.clone();
        std::thread::spawn(move || {
            let slice = Duration::from_millis(25);
            let mut next = Instant::now() + heartbeat_interval;
            while !stop.load(Ordering::SeqCst) {
                if Instant::now() >= next {
                    if send_frame(&writer, auth.as_deref(), &FromAgent::Heartbeat).is_err() {
                        stop.store(true, Ordering::SeqCst);
                        return;
                    }
                    next = Instant::now() + heartbeat_interval;
                }
                std::thread::sleep(slice);
            }
        })
    };

    // Slot workers drain an in-agent queue so the read loop never
    // blocks behind an analysis.
    type UnitJob = (
        u64,
        String,
        String,
        Want,
        Vec<u8>,
        AnalyzerOptions,
        Option<obs::TraceContext>,
    );
    let (tx, rx) = channel::<UnitJob>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<_> = (0..slots)
        .map(|_| {
            let rx: Arc<Mutex<Receiver<UnitJob>>> = Arc::clone(&rx);
            let writer = Arc::clone(&writer);
            let stop = Arc::clone(&stop);
            let units_done = Arc::clone(&units_done);
            let auth = auth.clone();
            std::thread::spawn(move || loop {
                let job = {
                    let rx = rx.lock().expect("agent job queue lock");
                    rx.recv()
                };
                let Ok((id, name, path, want, elf, options, trace)) = job else {
                    return; // queue closed: clean drain
                };
                let reply = analyze_unit(id, &name, &path, want, &elf, options, trace);
                units_done.fetch_add(1, Ordering::Relaxed);
                agent_metrics().units.inc();
                if write_reply(&writer, auth.as_deref(), &name, &reply).is_err() {
                    stop.store(true, Ordering::SeqCst);
                    return;
                }
            })
        })
        .collect();

    // The read loop: units in, goodbye (or a lost link) out. Only the
    // in-band shutdown frame is a clean goodbye — a bare EOF or any
    // transport/framing error is a lost link the reconnect loop may
    // ride out. On a secured session every post-welcome frame must
    // arrive sealed: a bad MAC or an unsealed frame ends the session
    // (the stream is not trustworthy), while a stale sequence number is
    // dropped silently — that is what a duplicated delivery looks like.
    let mut last_down_seq: u64 = 0;
    let end = loop {
        let frame = match read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES) {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                break SessionEnd::LinkLost(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "coordinator link closed without a goodbye",
                ))
            }
            Err(e) => break SessionEnd::LinkLost(e),
        };
        let frame = match (&auth, frame) {
            (Some(auth), ToAgent::Sealed { seq, mac, body }) => {
                if seq <= last_down_seq {
                    continue; // duplicate delivery: already acted on
                }
                match crate::protocol::unseal_down(&auth.key, seq, &mac, &body) {
                    Ok(inner) => {
                        last_down_seq = seq;
                        inner
                    }
                    Err(e) => {
                        break SessionEnd::LinkLost(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            e,
                        ))
                    }
                }
            }
            (Some(_), other) => {
                break SessionEnd::LinkLost(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unsealed coordinator frame on a secured link: {other:?}"),
                ))
            }
            (None, ToAgent::Sealed { .. }) => {
                break SessionEnd::LinkLost(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "sealed coordinator frame on an open link",
                ))
            }
            (None, frame) => frame,
        };
        match frame {
            ToAgent::Unit {
                id,
                name,
                path,
                want,
                elf,
                options,
                trace,
            } => {
                if tx
                    .send((id, name, path, want, elf, options, trace))
                    .is_err()
                {
                    break SessionEnd::LinkLost(std::io::Error::new(
                        std::io::ErrorKind::BrokenPipe,
                        "agent writer died mid-session",
                    ));
                }
            }
            ToAgent::Shutdown => break SessionEnd::Goodbye,
            other => {
                break SessionEnd::LinkLost(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected coordinator message: {other:?}"),
                ))
            }
        }
    };

    // Drain: close the queue, let workers finish what they hold (their
    // late results are best-effort once the coordinator is gone), stop
    // the heartbeat, and report.
    drop(tx);
    for worker in workers {
        let _ = worker.join();
    }
    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    Ok((units_done.load(Ordering::Relaxed), end))
}

/// Dials the coordinator and works units over **one** session, until
/// the coordinator says goodbye in band.
///
/// # Errors
///
/// Connection failures past the dial budget, a rejected hello (failed
/// authentication, version or cache-format mismatch — the in-band
/// `reject` message is surfaced as `PermissionDenied`), a
/// transport/protocol failure mid-service, or a link that closed
/// without a goodbye. Callers that should survive coordinator restarts
/// want [`run_agent_loop`] instead.
pub fn run_agent(endpoint: &Endpoint, options: &AgentOptions) -> std::io::Result<AgentReport> {
    let (units, end) = run_session(endpoint, options, options.dial_timeout)?;
    match end {
        SessionEnd::Goodbye => Ok(AgentReport { units, sessions: 1 }),
        SessionEnd::LinkLost(e) => Err(e),
    }
}

/// How many *consecutive* in-band rejects the reconnect loop absorbs
/// before concluding the verdict is real. A reject is usually fatal (a
/// wrong secret cannot become right by redialing), but a corrupted
/// challenge nonce on a noisy link produces the same verdict once —
/// the coordinator cannot tell a bad secret from a bad nonce either.
/// Three in a row is noise no longer.
const REJECT_THRESHOLD: u32 = 3;

/// [`run_agent`] under a reconnect supervisor: a lost link (coordinator
/// crash, restart, partition) is retried forever under a capped
/// decorrelated-jitter backoff that resets after every healthy session,
/// while an in-band goodbye ends service cleanly and a fatal handshake
/// verdict surfaces as the error it is — immediately for a protocol
/// downgrade, after [`REJECT_THRESHOLD`] consecutive tries for a
/// reject. In-flight units lost with a link are abandoned idempotently
/// — the coordinator's reaper requeues them onto live agents, so an
/// at-most-once answer per unit is preserved across reconnects.
pub fn run_agent_loop(endpoint: &Endpoint, options: &AgentOptions) -> std::io::Result<AgentReport> {
    let seed = options.backoff_seed.unwrap_or_else(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        nanos ^ ((std::process::id() as u64) << 32)
    });
    let mut backoff = Backoff::new(options.backoff_base, options.backoff_cap, seed);
    let mut units_total: u64 = 0;
    let mut sessions: u64 = 0;
    let mut rejects: u32 = 0;
    // The first dial honors the configured budget (either side of the
    // walkthrough may start first); re-dials are paced by the backoff
    // itself, so each attempt fails fast.
    let mut dial_budget = options.dial_timeout;
    loop {
        match run_session(endpoint, options, dial_budget) {
            Ok((units, SessionEnd::Goodbye)) => {
                return Ok(AgentReport {
                    units: units_total + units,
                    sessions: sessions + 1,
                })
            }
            Ok((units, SessionEnd::LinkLost(e))) => {
                units_total += units;
                sessions += 1;
                rejects = 0;
                // A completed handshake is a healthy session: the next
                // outage starts the schedule from the base again.
                backoff.reset();
                let delay = backoff.next();
                eprintln!(
                    "bside-agent: link lost ({e}); reconnecting in {}ms",
                    delay.as_millis()
                );
                std::thread::sleep(delay);
            }
            Err(e) if e.kind() == std::io::ErrorKind::PermissionDenied => {
                rejects += 1;
                if rejects >= REJECT_THRESHOLD {
                    return Err(e);
                }
                eprintln!("bside-agent: rejected ({e}); retrying in case it was line noise");
                std::thread::sleep(backoff.next());
            }
            Err(e) if is_fatal(&e) => return Err(e),
            Err(_) => std::thread::sleep(backoff.next()),
        }
        dial_budget = Some(Duration::from_millis(250));
    }
}

/// The `bside-agent` / `bside agent` entry point: argument parsing plus
/// [`run_agent_loop`] (or single-session [`run_agent`] with
/// `--no-reconnect`). Returns the process exit code: 0 for an in-band
/// goodbye, nonzero for fatal verdicts.
pub fn agent_main(args: &[String]) -> i32 {
    let mut connect: Option<String> = None;
    let mut slots: usize = 1;
    let mut dial_timeout = Duration::from_secs(10);
    let mut secret: Option<String> = None;
    let mut heartbeat_cap: Option<Duration> = None;
    let mut reconnect = true;
    let mut metrics_dump = false;
    let mut it = args.iter();
    let usage = "usage: bside-agent --connect HOST:PORT [--slots N] [--dial-timeout SECS] \
                 [--fleet-secret SECRET] [--heartbeat-secs SECS] [--no-reconnect] \
                 [--metrics-dump]";
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => match it.next() {
                Some(spec) => connect = Some(spec.clone()),
                None => {
                    eprintln!("{usage}");
                    return 2;
                }
            },
            "--slots" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => slots = n,
                _ => {
                    eprintln!("--slots needs a positive integer\n{usage}");
                    return 2;
                }
            },
            "--dial-timeout" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(secs) => dial_timeout = Duration::from_secs(secs),
                None => {
                    eprintln!("--dial-timeout needs SECS\n{usage}");
                    return 2;
                }
            },
            "--fleet-secret" => match it.next() {
                Some(value) => secret = Some(value.clone()),
                None => {
                    eprintln!("--fleet-secret needs SECRET\n{usage}");
                    return 2;
                }
            },
            "--heartbeat-secs" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(secs) if secs > 0 => heartbeat_cap = Some(Duration::from_secs(secs)),
                _ => {
                    eprintln!("--heartbeat-secs needs a positive integer\n{usage}");
                    return 2;
                }
            },
            "--no-reconnect" => reconnect = false,
            "--metrics-dump" => metrics_dump = true,
            other => {
                eprintln!("unexpected argument {other}\n{usage}");
                return 2;
            }
        }
    }
    let Some(connect) = connect else {
        eprintln!("{usage}");
        return 2;
    };
    let endpoint = connect_endpoint(&connect);
    let options = AgentOptions {
        slots,
        dial_timeout: Some(dial_timeout),
        secret: crate::auth::resolve_secret(secret),
        heartbeat_cap,
        ..AgentOptions::default()
    };
    eprintln!(
        "bside-agent: dialing {endpoint} with {slots} slot(s){}",
        if options.secret.is_some() {
            " (authenticated)"
        } else {
            ""
        }
    );
    let outcome = if reconnect {
        run_agent_loop(&endpoint, &options)
    } else {
        run_agent(&endpoint, &options)
    };
    match outcome {
        Ok(_report) => {
            // The exit line reads the same registry counters the metrics
            // dump renders — one source of truth for what this process
            // did (a bside-agent process runs exactly one agent loop, so
            // the counters and the report agree).
            let metrics = agent_metrics();
            eprintln!(
                "bside-agent: coordinator said goodbye after {} unit(s) over {} session(s); exiting",
                metrics.units.get(),
                metrics.sessions.get()
            );
            if metrics_dump {
                print!("{}", obs::global().render_prometheus());
            }
            0
        }
        Err(e) => {
            eprintln!("bside-agent: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_endpoint_prefers_tcp_for_bare_host_port() {
        assert_eq!(
            connect_endpoint("10.0.0.7:4711"),
            Endpoint::Tcp("10.0.0.7:4711".to_string())
        );
        assert_eq!(
            connect_endpoint("tcp:10.0.0.7:4711"),
            Endpoint::Tcp("10.0.0.7:4711".to_string())
        );
        assert_eq!(
            connect_endpoint("unix:/run/fleet.sock"),
            Endpoint::Unix(std::path::PathBuf::from("/run/fleet.sock"))
        );
        assert_eq!(
            connect_endpoint("/run/fleet.sock"),
            Endpoint::Unix(std::path::PathBuf::from("/run/fleet.sock"))
        );
    }

    #[test]
    fn fatal_verdicts_are_exactly_reject_and_downgrade() {
        let reject = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "rejected");
        let downgrade = std::io::Error::new(std::io::ErrorKind::Unsupported, "v1");
        let refused = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "down");
        let garbled = std::io::Error::new(std::io::ErrorKind::InvalidData, "noise");
        assert!(is_fatal(&reject));
        assert!(is_fatal(&downgrade));
        assert!(!is_fatal(&refused), "a down coordinator is retryable");
        assert!(!is_fatal(&garbled), "line noise is retryable");
    }
}
