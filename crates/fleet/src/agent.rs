//! The agent side: a long-lived worker process on any machine that can
//! reach the coordinator.
//!
//! An agent is intentionally close to a dist worker in spirit — no
//! queue knowledge, no retry logic, no cache; a unit in, a message out —
//! but machine-shaped in mechanics: it *dials* the coordinator over
//! TCP, self-describes in a capability hello (protocol version, slot
//! count, cache-format fingerprint), receives binaries in band (no
//! shared filesystem), analyzes up to `slots` units concurrently, and
//! keeps a heartbeat flowing from a dedicated thread so the coordinator
//! can tell "busy" from "gone" without probing.
//!
//! # Fault-injection hooks
//!
//! The fleet fault-isolation tests drive real `bside-agent` processes
//! into machine-level failures, exactly as `dist/tests/fault_isolation.rs`
//! drives `bside-worker`:
//!
//! * `BSIDE_AGENT_CRASH_UNIT=<substr>` — abort the whole agent process
//!   before analyzing any unit whose name contains `<substr>` (the
//!   "machine died mid-unit" model — every slot's in-flight unit is
//!   lost at once);
//! * `BSIDE_AGENT_SEVER_UNIT=<substr>` — write *half* of the unit's
//!   result frame, flush it onto the wire, then abort: the coordinator
//!   sees a torn frame followed by EOF (the "connection severed
//!   mid-result" model);
//! * `BSIDE_AGENT_FAULT_MARKER=<path>` — make either fault one-shot:
//!   the first faulting agent creates `<path>` and later agents seeing
//!   the marker behave normally, so the retry succeeds elsewhere.

use crate::protocol::{
    read_message_capped, write_message, FromAgent, ToAgent, Want, CACHE_FORMAT_VERSION,
    MAX_FLEET_LINE_BYTES, PROTOCOL_VERSION,
};
use bside_core::{Analyzer, AnalyzerOptions};
use bside_dist::worker::parse_error_message;
use bside_serve::{Conn, Endpoint};
use std::io::{BufReader, Write as _};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of one agent process.
#[derive(Debug, Clone)]
pub struct AgentOptions {
    /// Units analyzed concurrently (announced in the hello; the
    /// coordinator never has more than this outstanding here).
    pub slots: usize,
    /// How long to keep redialing a coordinator that is not (yet)
    /// listening — lets the two-terminal walkthrough start either side
    /// first. `None` fails fast on the first refused connection.
    pub dial_timeout: Option<Duration>,
}

impl Default for AgentOptions {
    fn default() -> Self {
        AgentOptions {
            slots: 1,
            dial_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// What an agent did over one connection's lifetime.
#[derive(Debug, Clone, Copy)]
pub struct AgentReport {
    /// Units answered (results and in-band unit errors).
    pub units: u64,
}

/// Parses an agent-facing endpoint spec. Unlike the daemon's
/// [`Endpoint::parse`] (where a bare string is a Unix path), a bare
/// `HOST:PORT` here is TCP — `bside agent --connect 10.0.0.7:4711` is
/// the common case on a fleet; `unix:PATH` (or anything with a `/`)
/// still selects a Unix socket for same-host use.
pub fn connect_endpoint(spec: &str) -> Endpoint {
    if spec.starts_with("tcp:") || spec.starts_with("unix:") || spec.contains('/') {
        Endpoint::parse(spec)
    } else {
        Endpoint::Tcp(spec.to_string())
    }
}

fn fault_requested(var: &str, unit_name: &str) -> bool {
    let Ok(needle) = std::env::var(var) else {
        return false;
    };
    if !unit_name.contains(&needle) {
        return false;
    }
    match std::env::var("BSIDE_AGENT_FAULT_MARKER") {
        Ok(marker) => {
            let path = std::path::Path::new(&marker);
            if path.exists() {
                return false; // already faulted once; behave normally
            }
            let _ = std::fs::File::create(path);
            true
        }
        Err(_) => true,
    }
}

/// Analyzes one in-band unit; the error side carries the exact message
/// the in-process engine would render for the same degradation.
fn analyze_unit(
    id: u64,
    name: &str,
    path: &str,
    want: Want,
    elf_bytes: &[u8],
    options: AnalyzerOptions,
) -> FromAgent {
    if fault_requested("BSIDE_AGENT_CRASH_UNIT", name) {
        std::process::abort();
    }
    match want {
        Want::Analysis => {
            let elf = match bside_elf::Elf::parse(elf_bytes) {
                Ok(elf) => elf,
                Err(e) => {
                    return FromAgent::Error {
                        id,
                        message: parse_error_message(path, &e),
                    }
                }
            };
            match Analyzer::new(options).analyze_static(&elf) {
                Ok(analysis) => FromAgent::Result {
                    id,
                    analysis: Box::new(analysis),
                },
                Err(e) => FromAgent::Error {
                    id,
                    message: e.to_string(),
                },
            }
        }
        // The offload path: the agent runs the *whole* derivation —
        // analysis, phase detection, BPF lowering — so the serve daemon
        // does none of it. Agents carry no shared-interface store, so a
        // dynamic binary degrades to the same guidance message the
        // daemon itself would produce without --lib-dir.
        Want::Bundle => match bside_serve::derive_bundle(name, elf_bytes, &options, None) {
            Ok(bundle) => FromAgent::Bundle {
                id,
                bundle: Box::new(bundle),
            },
            Err(message) => FromAgent::Error { id, message },
        },
    }
}

/// Writes a reply under the shared writer lock — unless the sever fault
/// hook fires, in which case half the frame is flushed onto the wire and
/// the process aborts (the torn-frame fault model).
fn write_reply(writer: &Mutex<Conn>, name: &str, reply: &FromAgent) -> std::io::Result<()> {
    if fault_requested("BSIDE_AGENT_SEVER_UNIT", name) {
        let json = serde_json::to_string(reply)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut conn = writer.lock().expect("agent writer lock");
        let half = &json.as_bytes()[..json.len() / 2];
        let _ = conn.write_all(half);
        let _ = conn.flush();
        std::process::abort();
    }
    let mut conn = writer.lock().expect("agent writer lock");
    write_message(&mut *conn, reply)
}

fn dial(endpoint: &Endpoint, budget: Option<Duration>) -> std::io::Result<Conn> {
    let deadline = budget.map(|b| Instant::now() + b);
    loop {
        match Conn::connect(endpoint) {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                let retryable = matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused
                        | std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::NotFound
                );
                match deadline {
                    Some(d) if retryable && Instant::now() < d => {
                        std::thread::sleep(Duration::from_millis(150));
                    }
                    _ => return Err(e),
                }
            }
        }
    }
}

/// Dials the coordinator and works units until it says goodbye (a
/// `shutdown` frame or EOF — both a clean end of service).
///
/// # Errors
///
/// Connection failures past the dial budget, a rejected hello (version
/// or cache-format mismatch — the in-band `reject` message is
/// surfaced), or a transport/protocol failure mid-service.
pub fn run_agent(endpoint: &Endpoint, options: &AgentOptions) -> std::io::Result<AgentReport> {
    let conn = dial(endpoint, options.dial_timeout)?;
    let writer = Arc::new(Mutex::new(conn.try_clone()?));
    let mut reader = BufReader::new(conn);
    let slots = options.slots.max(1);

    write_message(
        &mut *writer.lock().expect("agent writer lock"),
        &FromAgent::Hello {
            version: PROTOCOL_VERSION,
            slots,
            cache_format: CACHE_FORMAT_VERSION,
        },
    )?;
    let heartbeat_interval =
        match read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES)? {
            Some(ToAgent::Welcome {
                version,
                heartbeat_interval_ms,
            }) if version == PROTOCOL_VERSION => {
                Duration::from_millis(heartbeat_interval_ms.max(50))
            }
            Some(ToAgent::Welcome { version, .. }) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                    "coordinator speaks fleet protocol v{version}, expected v{PROTOCOL_VERSION}"
                ),
                ))
            }
            Some(ToAgent::Reject { message }) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    format!("coordinator rejected this agent: {message}"),
                ))
            }
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("expected welcome, got {other:?}"),
                ))
            }
        };

    let stop = Arc::new(AtomicBool::new(false));
    let units_done = Arc::new(AtomicU64::new(0));

    // The liveness channel: beats flow from a dedicated thread so a
    // fully busy agent (every slot mid-analysis) still reads as alive.
    let heartbeat = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let slice = Duration::from_millis(25);
            let mut next = Instant::now() + heartbeat_interval;
            while !stop.load(Ordering::SeqCst) {
                if Instant::now() >= next {
                    let mut conn = writer.lock().expect("agent writer lock");
                    if write_message(&mut *conn, &FromAgent::Heartbeat).is_err() {
                        stop.store(true, Ordering::SeqCst);
                        return;
                    }
                    next = Instant::now() + heartbeat_interval;
                }
                std::thread::sleep(slice);
            }
        })
    };

    // Slot workers drain an in-agent queue so the read loop never
    // blocks behind an analysis.
    type UnitJob = (u64, String, String, Want, Vec<u8>, AnalyzerOptions);
    let (tx, rx) = channel::<UnitJob>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<_> = (0..slots)
        .map(|_| {
            let rx: Arc<Mutex<Receiver<UnitJob>>> = Arc::clone(&rx);
            let writer = Arc::clone(&writer);
            let stop = Arc::clone(&stop);
            let units_done = Arc::clone(&units_done);
            std::thread::spawn(move || loop {
                let job = {
                    let rx = rx.lock().expect("agent job queue lock");
                    rx.recv()
                };
                let Ok((id, name, path, want, elf, options)) = job else {
                    return; // queue closed: clean drain
                };
                let reply = analyze_unit(id, &name, &path, want, &elf, options);
                units_done.fetch_add(1, Ordering::Relaxed);
                if write_reply(&writer, &name, &reply).is_err() {
                    stop.store(true, Ordering::SeqCst);
                    return;
                }
            })
        })
        .collect();

    // The read loop: units in, goodbye out.
    let outcome = loop {
        match read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES) {
            Ok(Some(ToAgent::Unit {
                id,
                name,
                path,
                want,
                elf,
                options,
            })) => {
                if tx.send((id, name, path, want, elf, options)).is_err() {
                    break Ok(()); // workers gone (writer died)
                }
            }
            Ok(Some(ToAgent::Shutdown)) | Ok(None) => break Ok(()), // clean goodbye
            Ok(Some(other)) => {
                break Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected coordinator message: {other:?}"),
                ))
            }
            Err(e) => break Err(e),
        }
    };

    // Drain: close the queue, let workers finish what they hold (their
    // late results are best-effort once the coordinator is gone), stop
    // the heartbeat, and report.
    drop(tx);
    for worker in workers {
        let _ = worker.join();
    }
    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    outcome.map(|()| AgentReport {
        units: units_done.load(Ordering::Relaxed),
    })
}

/// The `bside-agent` / `bside agent` entry point: argument parsing plus
/// [`run_agent`]. Returns the process exit code.
pub fn agent_main(args: &[String]) -> i32 {
    let mut connect: Option<String> = None;
    let mut slots: usize = 1;
    let mut dial_timeout = Duration::from_secs(10);
    let mut it = args.iter();
    let usage = "usage: bside-agent --connect HOST:PORT [--slots N] [--dial-timeout SECS]";
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => match it.next() {
                Some(spec) => connect = Some(spec.clone()),
                None => {
                    eprintln!("{usage}");
                    return 2;
                }
            },
            "--slots" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => slots = n,
                _ => {
                    eprintln!("--slots needs a positive integer\n{usage}");
                    return 2;
                }
            },
            "--dial-timeout" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(secs) => dial_timeout = Duration::from_secs(secs),
                None => {
                    eprintln!("--dial-timeout needs SECS\n{usage}");
                    return 2;
                }
            },
            other => {
                eprintln!("unexpected argument {other}\n{usage}");
                return 2;
            }
        }
    }
    let Some(connect) = connect else {
        eprintln!("{usage}");
        return 2;
    };
    let endpoint = connect_endpoint(&connect);
    eprintln!("bside-agent: dialing {endpoint} with {slots} slot(s)");
    match run_agent(
        &endpoint,
        &AgentOptions {
            slots,
            dial_timeout: Some(dial_timeout),
        },
    ) {
        Ok(report) => {
            eprintln!(
                "bside-agent: coordinator said goodbye after {} unit(s); exiting",
                report.units
            );
            0
        }
        Err(e) => {
            eprintln!("bside-agent: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_endpoint_prefers_tcp_for_bare_host_port() {
        assert_eq!(
            connect_endpoint("10.0.0.7:4711"),
            Endpoint::Tcp("10.0.0.7:4711".to_string())
        );
        assert_eq!(
            connect_endpoint("tcp:10.0.0.7:4711"),
            Endpoint::Tcp("10.0.0.7:4711".to_string())
        );
        assert_eq!(
            connect_endpoint("unix:/run/fleet.sock"),
            Endpoint::Unix(std::path::PathBuf::from("/run/fleet.sock"))
        );
        assert_eq!(
            connect_endpoint("/run/fleet.sock"),
            Endpoint::Unix(std::path::PathBuf::from("/run/fleet.sock"))
        );
    }
}
