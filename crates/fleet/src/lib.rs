//! # `bside-fleet`: the multi-machine analysis fleet
//!
//! The paper's headline evaluation is corpus-scale (557 Debian ELFs for
//! Table 2), and the workspace already climbed two rungs of the scaling
//! ladder: threads (`bside-core`'s parallel engine) and local processes
//! (`bside-dist`'s coordinator/worker). This crate is the third rung —
//! **machines**. A long-lived [`agent`] process on any host dials the
//! [`coordinator`] over TCP (the `bside-serve` net abstraction, so Unix
//! sockets work for same-host tests), self-describes in a versioned
//! capability hello, and pulls `(binary, options)` units whose payloads
//! travel **in band** — no shared filesystem, no remote spawning, no
//! out-of-band probes:
//!
//! * **capability hello** — protocol version, slot count, and the
//!   analysis cache-format fingerprint; the coordinator rejects agents
//!   whose results would not be comparable, so a heterogeneous fleet
//!   self-describes instead of silently poisoning the cache;
//! * **heartbeat scheduling** — a dedicated agent thread keeps beats
//!   flowing while every slot is busy, and the coordinator's socket
//!   read timeout doubles as the silence deadline: a dead or
//!   partitioned agent is detected and its in-flight units are
//!   **requeued onto surviving agents**, with the `dist::queue` retry
//!   budget riding each unit;
//! * **byte-identical merges** — [`analyze_corpus_fleet`] reuses the
//!   dist engine's cache pre-pass (same content-addressed
//!   [`bside_dist::cache`]), input-ordered merge, and report renderer,
//!   so a fleet run at any agent count reproduces the in-process
//!   `analyze_corpus` report byte for byte;
//! * **serve-daemon offload** — [`serve_offload`] turns a
//!   [`FleetSubmitter`] into the hook `bside serve --fleet` installs:
//!   analyze-on-miss leaders ship the whole bundle derivation
//!   (analysis, phase detection, BPF lowering) to the fleet, composing
//!   with the serve layer's single-flight so one cold storm still costs
//!   exactly one fleet unit.
//!
//! # Example
//!
//! ```no_run
//! use bside_fleet::{analyze_corpus_fleet, FleetCoordinator, FleetOptions};
//! use bside_serve::Endpoint;
//! use std::path::PathBuf;
//!
//! let handle = FleetCoordinator::bind(
//!     &Endpoint::Tcp("0.0.0.0:4711".to_string()),
//!     FleetOptions::default(),
//! )?;
//! // … `bside agent --connect HOST:4711` on any number of machines …
//! let units = vec![("redis".to_string(), PathBuf::from("corpus/000_redis.elf"))];
//! let run = analyze_corpus_fleet(&units, &handle)?;
//! println!("{}", bside_dist::report_of_run(&run));
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod auth;
pub mod backoff;
pub mod coordinator;
pub mod protocol;
pub(crate) mod queue;
pub mod registry;

pub use agent::{
    agent_main, connect_endpoint, run_agent, run_agent_loop, AgentOptions, AgentReport,
};
pub use backoff::Backoff;
pub use coordinator::{
    analyze_corpus_fleet, FleetCoordinator, FleetHandle, FleetOptions, FleetOutput, FleetStats,
    FleetSubmitter, PendingUnit,
};
pub use protocol::{Want, MAX_FLEET_LINE_BYTES, PROTOCOL_VERSION};
pub use registry::AgentSnapshot;

/// Builds the serve daemon's remote-analyzer hook over a fleet: the
/// analyze-on-miss leader ships `(name, bytes)` to whichever agent pulls
/// it and blocks — at most `wait_budget` — for the derived bundle;
/// failures (no agents within the budget, retry budget spent, analysis
/// error) come back as the in-band error message the daemon relays to
/// its client. The budget is what keeps a daemon with **zero connected
/// agents** serving: without it, every cold fetch would pin a pool
/// worker on a unit no one will ever pull, wedging the daemon (and its
/// shutdown) behind an empty fleet.
///
/// The coordinator must be configured with the **same analyzer options**
/// as the daemon — the daemon's store keys fingerprint its options, and
/// a bundle derived under different options would be filed under the
/// wrong address. `bside serve --fleet` wires both from one source.
pub fn serve_offload(
    submitter: FleetSubmitter,
    wait_budget: std::time::Duration,
) -> bside_serve::RemoteAnalyzer {
    std::sync::Arc::new(move |name: &str, path: &str, bytes: &[u8]| {
        let pending = submitter.submit_bundle(name, path, bytes.to_vec());
        match pending.wait_for(wait_budget) {
            Some((_, Ok(FleetOutput::Bundle(bundle)))) => Ok(*bundle),
            Some((_, Ok(FleetOutput::Analysis(_)))) => {
                Err("fleet returned an analysis for a bundle unit".to_string())
            }
            Some((_, Err(failure))) => Err(format!(
                "fleet offload failed after {} attempt(s): {}",
                failure.attempts.max(1),
                failure.message
            )),
            None => Err(format!(
                "fleet offload timed out after {wait_budget:?} (no live agents, or the fleet \
                 is saturated); the unit was abandoned — retry once agents are connected"
            )),
        }
    })
}
