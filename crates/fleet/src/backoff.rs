//! Reconnect pacing: capped decorrelated-jitter backoff.
//!
//! When an agent loses its coordinator (restart, partition, sever) it
//! re-dials under this schedule rather than hammering the endpoint. The
//! schedule is the decorrelated-jitter variant: each delay is drawn
//! uniformly from `[base, min(cap, prev * 3)]`, so consecutive delays
//! decorrelate across a fleet of agents (no thundering reconnect herd)
//! while the envelope still grows geometrically to the cap. A healthy
//! session ([`Backoff::reset`]) snaps the schedule back to the base.
//!
//! The RNG is a self-contained xorshift64* — deterministic per seed, so
//! the property tests can sweep seeds, and free of any dependency.

use std::time::Duration;

/// A deterministic decorrelated-jitter backoff schedule.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: u64,
}

impl Backoff {
    /// A schedule from `base` (first-delay floor, clamped to ≥1ms so the
    /// schedule can never zero-delay spin) to `cap`, seeded for
    /// deterministic jitter.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        let base = base.max(Duration::from_millis(1));
        // Scramble the seed (splitmix64 finalizer) so adjacent seeds —
        // e.g. per-agent indices — land in unrelated stream positions,
        // and clamp away the single all-zero state xorshift can't leave.
        let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        s ^= s >> 31;
        Backoff {
            base,
            cap: cap.max(base),
            prev: base,
            rng: s.max(1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: tiny, seedable, good enough for jitter.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// The next delay to sleep before re-dialing: uniform over
    /// `[base, min(cap, prev * 3)]`. Monotone in envelope, capped, and
    /// never zero. Not an `Iterator` on purpose: the schedule is
    /// infinite and stateful, and `reset` breaks iterator semantics.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Duration {
        let base_ms = self.base.as_millis() as u64;
        let ceiling_ms = self
            .prev
            .saturating_mul(3)
            .min(self.cap)
            .as_millis()
            .max(self.base.as_millis()) as u64;
        let span = ceiling_ms - base_ms;
        let delay_ms = if span == 0 {
            base_ms
        } else {
            base_ms + self.next_u64() % (span + 1)
        };
        let delay = Duration::from_millis(delay_ms);
        self.prev = delay;
        delay
    }

    /// Snaps the schedule back to the base after a healthy session, so
    /// the next hiccup starts from a short delay again.
    pub fn reset(&mut self) {
        self.prev = self.base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: Duration = Duration::from_millis(100);
    const CAP: Duration = Duration::from_secs(10);

    /// The envelope property, swept across seeds: every delay lies in
    /// `[base, cap]` and within 3× the previous delay (decorrelated
    /// growth, monotone-capped envelope).
    #[test]
    fn delays_stay_inside_the_decorrelated_envelope() {
        for seed in 0..64u64 {
            let mut b = Backoff::new(BASE, CAP, seed);
            let mut prev = BASE;
            for step in 0..200 {
                let d = b.next();
                assert!(d >= BASE, "seed {seed} step {step}: {d:?} under base");
                assert!(d <= CAP, "seed {seed} step {step}: {d:?} over cap");
                assert!(
                    d <= prev.saturating_mul(3).min(CAP),
                    "seed {seed} step {step}: {d:?} outgrew 3x{prev:?}"
                );
                prev = d;
            }
        }
    }

    /// No configuration — not even a zero base — can produce a zero
    /// delay (the no-spin guarantee for the reconnect loop).
    #[test]
    fn never_zero_delay_even_from_a_zero_base() {
        for seed in 0..64u64 {
            let mut b = Backoff::new(Duration::ZERO, Duration::from_millis(5), seed);
            for _ in 0..100 {
                assert!(b.next() > Duration::ZERO);
            }
        }
    }

    /// The schedule reaches the cap region (it genuinely grows) and a
    /// reset snaps the very next delay back under the early envelope.
    #[test]
    fn grows_toward_the_cap_and_reset_restarts_the_schedule() {
        for seed in 0..64u64 {
            let mut b = Backoff::new(BASE, CAP, seed);
            let mut max_seen = Duration::ZERO;
            for _ in 0..200 {
                max_seen = max_seen.max(b.next());
            }
            assert!(
                max_seen > CAP / 4,
                "seed {seed}: schedule never grew ({max_seen:?})"
            );
            b.reset();
            let after_reset = b.next();
            assert!(
                after_reset <= BASE * 3,
                "seed {seed}: post-reset delay {after_reset:?} did not restart"
            );
        }
    }

    /// Same seed, same schedule — the determinism the chaos suites lean
    /// on.
    #[test]
    fn schedule_is_deterministic_per_seed() {
        let mut a = Backoff::new(BASE, CAP, 42);
        let mut b = Backoff::new(BASE, CAP, 42);
        for _ in 0..50 {
            assert_eq!(a.next(), b.next());
        }
        let mut a = Backoff::new(BASE, CAP, 42);
        let mut c = Backoff::new(BASE, CAP, 43);
        let differs = (0..50).any(|_| a.next() != c.next());
        assert!(differs, "different seeds should jitter differently");
    }
}
