//! The agent registration table.
//!
//! Every agent that completes the capability hello is registered here
//! for its lifetime. The table is the coordinator's single source of
//! truth about the fleet: the reaper walks it to enforce unit deadlines,
//! shutdown walks it to say goodbye, and operators read it through
//! [`AgentSnapshot`]s. Death is one-way and idempotent —
//! [`AgentState::mark_dead`] severs the socket, fails every in-flight
//! dispatch, and flips the liveness flag exactly once, no matter how
//! many observers (reader EOF, heartbeat silence, deadline reaper,
//! shutdown) race to report it.

use crate::queue::UnitSlot;
use bside_dist::FailureKind;
use bside_serve::Conn;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How a dispatched unit came back to its dispatcher.
#[derive(Debug)]
pub(crate) enum SlotReply {
    /// The agent answered (routed by id from the reader thread).
    Message(crate::protocol::FromAgent),
    /// The agent was declared dead while the unit was outstanding.
    Lost(FailureKind),
}

/// A per-dispatch rendezvous between the dispatcher (waits) and the
/// reader/reaper (fills).
#[derive(Default)]
pub(crate) struct ReplySlot {
    state: Mutex<Option<SlotReply>>,
    cond: Condvar,
}

impl ReplySlot {
    pub(crate) fn fill(&self, reply: SlotReply) {
        let mut state = self.state.lock().expect("reply slot lock");
        // First writer wins: a reader's routed answer and the reaper's
        // death notice can race; the dispatcher acts on whichever landed.
        if state.is_none() {
            *state = Some(reply);
            self.cond.notify_all();
        }
    }

    pub(crate) fn wait(&self) -> SlotReply {
        let mut state = self.state.lock().expect("reply slot lock");
        loop {
            if let Some(reply) = state.take() {
                return reply;
            }
            state = self.cond.wait(state).expect("reply slot wait");
        }
    }
}

/// One outstanding dispatch on an agent connection.
pub(crate) struct Pending {
    pub reply: Arc<ReplySlot>,
    /// When the unit's wall-clock budget expires (reaper-enforced).
    pub deadline: Instant,
    /// The unit's completion slot — not used here, but keeping the Arc
    /// alive documents ownership: a pending dispatch pins its unit.
    pub _unit_done: Arc<UnitSlot>,
}

/// Downlink sealing state of one secured agent connection: the session
/// key plus the coordinator's own strictly-increasing frame sequence.
/// The number is assigned **under the writer lock** (see
/// `coordinator::send_to_agent`), so sequence order always matches
/// stream order and the agent's monotonic policy never trips.
pub(crate) struct DownlinkSeal {
    pub key: [u8; 32],
    pub next_seq: AtomicU64,
}

/// One registered agent connection.
pub(crate) struct AgentState {
    pub id: u64,
    pub addr: String,
    pub slots: usize,
    /// `Some` on a secured fleet: every post-welcome frame to this agent
    /// is wrapped in a [`crate::protocol::ToAgent::Sealed`] envelope.
    pub seal: Option<DownlinkSeal>,
    /// The write half every dispatcher and the shutdown path share.
    pub writer: Mutex<Conn>,
    /// A handle used solely to sever the socket on death (all clones of
    /// a [`Conn`] observe the shutdown at once).
    pub conn: Conn,
    pub dead: AtomicBool,
    /// Outstanding dispatches by wire id.
    pub pending: Mutex<HashMap<u64, Pending>>,
    pub completed: AtomicU64,
    /// This agent's answer-latency distribution,
    /// `bside_fleet_unit_duration_us{agent=…}` in the coordinator's
    /// telemetry registry — what a work-stealing scheduler would consume.
    pub unit_duration: Arc<bside_obs::Histogram>,
}

impl AgentState {
    /// Declares the agent dead: severs the socket (unblocking its reader
    /// thread wherever it is), fails every outstanding dispatch with
    /// `kind`, and reports whether this call was the one that did it.
    pub(crate) fn mark_dead(&self, kind: FailureKind) -> bool {
        if self.dead.swap(true, Ordering::SeqCst) {
            return false;
        }
        let _ = self.conn.shutdown_both();
        let drained: Vec<Pending> = {
            let mut pending = self.pending.lock().expect("pending lock");
            pending.drain().map(|(_, p)| p).collect()
        };
        for p in drained {
            p.reply.fill(SlotReply::Lost(kind));
        }
        true
    }

    /// Registers an outstanding dispatch. Returns `false` when the agent
    /// is already dead — the caller must not ship the unit (it hands it
    /// straight back to the queue, no attempt spent). The dead flag and
    /// the pending map are checked and updated under one lock, pairing
    /// with the drain in [`Self::mark_dead`], so a dispatch can never be
    /// registered after the drain and then wait on a slot nobody fills.
    pub(crate) fn register_dispatch(&self, seq: u64, pending: Pending) -> bool {
        let mut map = self.pending.lock().expect("pending lock");
        if self.dead.load(Ordering::SeqCst) {
            return false;
        }
        map.insert(seq, pending);
        true
    }

    /// Routes an answered id to its waiting dispatcher. An unknown id is
    /// ignored (defensively: a correctly functioning agent can only
    /// answer ids it was sent and has not answered yet).
    pub(crate) fn route_reply(&self, seq: u64, message: crate::protocol::FromAgent) {
        let taken = {
            let mut map = self.pending.lock().expect("pending lock");
            map.remove(&seq)
        };
        if let Some(p) = taken {
            p.reply.fill(SlotReply::Message(message));
        }
    }

    /// Ids whose deadline has passed, removed from the table and failed
    /// as timeouts. Returns how many expired.
    pub(crate) fn expire_deadlines(&self, now: Instant) -> usize {
        let expired: Vec<Pending> = {
            let mut map = self.pending.lock().expect("pending lock");
            let ids: Vec<u64> = map
                .iter()
                .filter(|(_, p)| now >= p.deadline)
                .map(|(&id, _)| id)
                .collect();
            ids.into_iter().filter_map(|id| map.remove(&id)).collect()
        };
        let n = expired.len();
        for p in expired {
            p.reply.fill(SlotReply::Lost(FailureKind::Timeout));
        }
        n
    }

    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }
}

/// A point-in-time view of one agent, for operators and tests.
#[derive(Debug, Clone)]
pub struct AgentSnapshot {
    /// Coordinator-assigned agent id (registration order).
    pub id: u64,
    /// The peer address the agent dialed from.
    pub addr: String,
    /// The slot count the agent announced in its hello.
    pub slots: usize,
    /// Units currently outstanding on the connection.
    pub in_flight: usize,
    /// Units this agent completed (results and in-band unit errors).
    pub completed: u64,
    /// `false` once the agent was declared dead or said goodbye.
    pub alive: bool,
}

/// The fleet-wide registration table.
#[derive(Default)]
pub(crate) struct Registry {
    agents: Mutex<Vec<Arc<AgentState>>>,
    next_id: AtomicU64,
    pub joined_total: AtomicU64,
    pub lost_total: AtomicU64,
}

impl Registry {
    pub(crate) fn register(
        &self,
        addr: String,
        slots: usize,
        conn: Conn,
        writer: Conn,
        session_key: Option<[u8; 32]>,
        unit_duration: Arc<bside_obs::Histogram>,
    ) -> Arc<AgentState> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.joined_total.fetch_add(1, Ordering::Relaxed);
        let agent = Arc::new(AgentState {
            id,
            addr,
            slots,
            seal: session_key.map(|key| DownlinkSeal {
                key,
                next_seq: AtomicU64::new(1),
            }),
            writer: Mutex::new(writer),
            conn,
            dead: AtomicBool::new(false),
            pending: Mutex::new(HashMap::new()),
            completed: AtomicU64::new(0),
            unit_duration,
        });
        self.agents
            .lock()
            .expect("registry lock")
            .push(Arc::clone(&agent));
        agent
    }

    /// Every currently registered agent (sessions still running —
    /// finished sessions unregister themselves via [`Registry::remove`]).
    pub(crate) fn agents(&self) -> Vec<Arc<AgentState>> {
        self.agents.lock().expect("registry lock").clone()
    }

    /// Unregisters a finished session's agent so a long-lived
    /// coordinator (e.g. inside `bside serve --fleet`) does not
    /// accumulate dead-agent state — sockets, pending maps — across
    /// months of agent churn. The lifetime counters (`joined_total`,
    /// `lost_total`) survive removal.
    pub(crate) fn remove(&self, id: u64) {
        self.agents
            .lock()
            .expect("registry lock")
            .retain(|a| a.id != id);
    }

    pub(crate) fn snapshots(&self) -> Vec<AgentSnapshot> {
        self.agents()
            .iter()
            .map(|a| AgentSnapshot {
                id: a.id,
                addr: a.addr.clone(),
                slots: a.slots,
                in_flight: a.pending.lock().expect("pending lock").len(),
                completed: a.completed.load(Ordering::Relaxed),
                alive: !a.is_dead(),
            })
            .collect()
    }

    /// Live agents only.
    pub(crate) fn alive(&self) -> Vec<Arc<AgentState>> {
        self.agents().into_iter().filter(|a| !a.is_dead()).collect()
    }
}
