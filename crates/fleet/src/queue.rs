//! The fleet's open-ended pull queue and per-unit completion slots.
//!
//! The dist engine's [`bside_dist::queue::WorkQueue`] is scoped to one
//! corpus run: it knows the full unit set up front and signals
//! completion by draining. A fleet coordinator is a long-lived service —
//! corpus runs *and* serve-daemon offload submit units while it runs —
//! so this queue is open-ended: [`FleetQueue::pull`] blocks until a unit
//! arrives or the coordinator shuts down, and each unit carries its own
//! completion slot ([`UnitSlot`]) the submitter waits on. The retry
//! accounting (attempt counter on the unit, budget enforced at requeue
//! time) is carried over from the dist queue unchanged.

use crate::protocol::Want;
use bside_core::BinaryAnalysis;
use bside_dist::UnitFailure;
use bside_serve::PolicyBundle;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// What a completed unit resolves to.
#[derive(Debug)]
pub(crate) enum UnitOutput {
    /// A [`Want::Analysis`] unit's payload.
    Analysis(Box<BinaryAnalysis>),
    /// A [`Want::Bundle`] unit's payload.
    Bundle(Box<PolicyBundle>),
}

/// The terminal record of one unit: attempts spent and the outcome.
#[derive(Debug)]
pub(crate) struct UnitDone {
    pub attempts: u32,
    pub result: Result<UnitOutput, UnitFailure>,
}

/// A one-shot rendezvous the submitter blocks on until the unit reaches
/// a terminal state (success, or permanent failure after the retry
/// budget).
#[derive(Default)]
pub(crate) struct UnitSlot {
    state: Mutex<Option<UnitDone>>,
    cond: Condvar,
}

impl UnitSlot {
    /// Publishes the terminal outcome; called exactly once per unit.
    pub(crate) fn finish(&self, done: UnitDone) {
        let mut state = self.state.lock().expect("unit slot lock");
        debug_assert!(state.is_none(), "unit completed twice");
        *state = Some(done);
        self.cond.notify_all();
    }

    /// Blocks until the unit is terminal and takes the outcome.
    pub(crate) fn wait(&self) -> UnitDone {
        let mut state = self.state.lock().expect("unit slot lock");
        loop {
            if let Some(done) = state.take() {
                return done;
            }
            state = self.cond.wait(state).expect("unit slot wait");
        }
    }

    /// [`UnitSlot::wait`] with a budget: `None` when the unit is still
    /// not terminal at the deadline (the caller abandons it). A late
    /// `finish` into an abandoned slot is harmless — nobody takes it.
    pub(crate) fn wait_for(&self, budget: std::time::Duration) -> Option<UnitDone> {
        let deadline = std::time::Instant::now() + budget;
        let mut state = self.state.lock().expect("unit slot lock");
        loop {
            if let Some(done) = state.take() {
                return Some(done);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self
                .cond
                .wait_timeout(state, deadline - now)
                .expect("unit slot wait");
            state = next;
        }
    }
}

/// One unit of fleet work: analyze one in-band binary image.
#[derive(Clone)]
pub(crate) struct FleetUnit {
    /// Coordinator-wide dispatch sequence number (the wire `id`).
    pub seq: u64,
    /// Display name.
    pub name: String,
    /// Display-only origin path, for byte-identical error messages.
    pub path: String,
    /// The ELF image, shared across retries without copying.
    pub bytes: Arc<Vec<u8>>,
    /// What the submitter wants back.
    pub want: Want,
    /// Attempts already spent (0 on first dispatch).
    pub attempts: u32,
    /// Where the terminal outcome lands.
    pub done: Arc<UnitSlot>,
    /// Set when the submitter gave up waiting (a bounded
    /// [`UnitSlot::wait_for`] expired): dispatchers drop the unit
    /// instead of shipping work nobody will collect.
    pub abandoned: Arc<std::sync::atomic::AtomicBool>,
    /// The submitter's trace context (captured at submission, unit id
    /// stamped in) — where this unit's dispatch span hangs in the
    /// cross-machine trace. `None` when the submitter had none.
    pub trace: Option<bside_obs::TraceContext>,
}

struct QueueState {
    pending: VecDeque<FleetUnit>,
    closed: bool,
}

/// The open-ended blocking work queue agents' dispatcher threads pull
/// from.
pub(crate) struct FleetQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    max_attempts: u32,
}

impl FleetQueue {
    pub(crate) fn new(max_attempts: u32) -> Self {
        FleetQueue {
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            max_attempts: max_attempts.max(1),
        }
    }

    /// Enqueues a fresh submission. Returns `false` (without enqueueing)
    /// when the queue is already closed — the caller fails the unit.
    pub(crate) fn push(&self, unit: FleetUnit) -> bool {
        let mut state = self.state.lock().expect("fleet queue lock");
        if state.closed {
            return false;
        }
        state.pending.push_back(unit);
        self.cond.notify_one();
        true
    }

    /// Takes the next unit, blocking while the queue is empty and open.
    /// Returns `None` once the queue is closed, or once `stop` turns
    /// true (checked in short slices, so a dispatcher whose agent died
    /// drains out promptly instead of blocking until the next
    /// submission). Abandoned units are discarded in passing — their
    /// submitter already gave up. (Unlike the dist queue there is no
    /// in-flight bookkeeping here: completion is per-unit via
    /// [`UnitSlot`], and the queue outlives any individual run.)
    pub(crate) fn pull(&self, stop: &std::sync::atomic::AtomicBool) -> Option<FleetUnit> {
        use std::sync::atomic::Ordering;
        let mut state = self.state.lock().expect("fleet queue lock");
        loop {
            while let Some(unit) = state.pending.pop_front() {
                if !unit.abandoned.load(Ordering::SeqCst) {
                    return Some(unit);
                }
            }
            if state.closed || stop.load(Ordering::SeqCst) {
                return None;
            }
            let (next, _) = self
                .cond
                .wait_timeout(state, std::time::Duration::from_millis(250))
                .expect("fleet queue lock");
            state = next;
        }
    }

    /// Returns a pulled-but-undispatched unit to the front of the queue
    /// without spending an attempt (the dispatcher's agent died before
    /// the unit ever reached it). On a closed queue the unit is handed
    /// back for the caller to fail.
    pub(crate) fn put_back(&self, unit: FleetUnit) -> Option<FleetUnit> {
        let mut state = self.state.lock().expect("fleet queue lock");
        if state.closed {
            return Some(unit);
        }
        state.pending.push_front(unit);
        self.cond.notify_one();
        None
    }

    /// Requeues a lost unit for another attempt — the dist queue's retry
    /// accounting: the attempt counter rides the unit, and the budget is
    /// enforced here. Returns `false` when the budget is spent (or the
    /// queue is closed); the caller must then record the permanent
    /// failure on the unit's slot.
    pub(crate) fn retry(&self, unit: &mut FleetUnit) -> bool {
        unit.attempts += 1;
        if unit.attempts >= self.max_attempts {
            return false;
        }
        self.push(unit.clone())
    }

    /// Closes the queue: wakes every blocked dispatcher (they drain and
    /// exit) and hands back whatever was still pending so the caller can
    /// fail those units in band.
    pub(crate) fn close(&self) -> Vec<FleetUnit> {
        let mut state = self.state.lock().expect("fleet queue lock");
        state.closed = true;
        self.cond.notify_all();
        state.pending.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bside_dist::FailureKind;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn unit(seq: u64) -> FleetUnit {
        FleetUnit {
            seq,
            name: format!("u{seq}"),
            path: format!("/corpus/u{seq}.elf"),
            bytes: Arc::new(vec![1, 2, 3]),
            want: Want::Analysis,
            attempts: 0,
            done: Arc::new(UnitSlot::default()),
            abandoned: Arc::new(AtomicBool::new(false)),
            trace: None,
        }
    }

    fn live() -> AtomicBool {
        AtomicBool::new(false)
    }

    #[test]
    fn pull_blocks_until_push_and_drains_on_close() {
        let q = Arc::new(FleetQueue::new(2));
        let puller = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let stop = live();
                let first = q.pull(&stop).expect("unit arrives");
                assert_eq!(first.seq, 1);
                q.pull(&stop).is_none()
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(q.push(unit(1)));
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(q.close().is_empty());
        assert!(puller.join().expect("puller"), "close drains the puller");
        assert!(!q.push(unit(2)), "closed queue refuses submissions");
    }

    #[test]
    fn pull_drains_out_when_its_stop_flag_turns() {
        let q = Arc::new(FleetQueue::new(2));
        let stop = Arc::new(AtomicBool::new(false));
        let puller = {
            let q = Arc::clone(&q);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || q.pull(&stop).is_none())
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        stop.store(true, Ordering::SeqCst);
        assert!(
            puller.join().expect("puller"),
            "a stopped puller drains without a close or a push"
        );
    }

    #[test]
    fn abandoned_units_are_discarded_in_passing() {
        let q = FleetQueue::new(2);
        let ghost = unit(0);
        ghost.abandoned.store(true, Ordering::SeqCst);
        assert!(q.push(ghost));
        assert!(q.push(unit(1)));
        let stop = live();
        assert_eq!(
            q.pull(&stop).expect("live unit").seq,
            1,
            "the abandoned unit is skipped, not dispatched"
        );
    }

    #[test]
    fn retry_respects_the_budget_and_put_back_does_not_spend_attempts() {
        let q = FleetQueue::new(2);
        let stop = live();
        assert!(q.push(unit(0)));
        let u = q.pull(&stop).expect("unit");
        assert!(q.put_back(u).is_none(), "put_back requeues");
        let mut u = q.pull(&stop).expect("unit again");
        assert_eq!(u.attempts, 0, "put_back spent no attempt");
        assert!(q.retry(&mut u), "first failure requeues");
        let mut u = q.pull(&stop).expect("retried unit");
        assert_eq!(u.attempts, 1);
        assert!(!q.retry(&mut u), "budget spent");
    }

    #[test]
    fn close_returns_pending_units_for_the_caller_to_fail() {
        let q = FleetQueue::new(2);
        assert!(q.push(unit(7)));
        let orphans = q.close();
        assert_eq!(orphans.len(), 1);
        orphans[0].done.finish(UnitDone {
            attempts: 0,
            result: Err(UnitFailure {
                kind: FailureKind::WorkerCrash,
                message: "shut down".to_string(),
                attempts: 0,
            }),
        });
        let done = orphans[0].done.wait();
        assert!(done.result.is_err());
    }

    #[test]
    fn unit_slot_is_a_one_shot_rendezvous() {
        let slot = Arc::new(UnitSlot::default());
        let waiter = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.wait())
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        slot.finish(UnitDone {
            attempts: 1,
            result: Err(UnitFailure {
                kind: FailureKind::Timeout,
                message: "deadline".to_string(),
                attempts: 1,
            }),
        });
        let done = waiter.join().expect("waiter");
        assert_eq!(done.attempts, 1);
    }
}
