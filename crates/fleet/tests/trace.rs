//! The trace-stitching acceptance suite.
//!
//! Three storylines:
//!
//! 1. **One tree across machines** — a real 2-agent TCP fleet run must
//!    drain to a single Chrome trace where the coordinator's per-unit
//!    `dispatch` span parents the agent-side `analyze` span, which in
//!    turn parents the pipeline's per-phase children. The proof parses
//!    the rendered JSON, not internal state: what `chrome://tracing`
//!    would show is what is asserted.
//! 2. **Corruption degrades to orphans** — a trace context mangled in
//!    flight (wrong JSON type, all-zero triple) must parse as `None`
//!    (the agent's spans become orphans) while the unit frame itself
//!    stays fully usable. A bad context may cost a parent link, never a
//!    unit.
//! 3. **Chaos never severs links** — under a seeded
//!    [`bside_dist::fault::FaultPlan`] on a sealed fleet, every analyze
//!    span that lands still resolves its parent to a dispatch span the
//!    coordinator recorded (or is a clean orphan); no dangling ids.

mod common;

use bside_core::AnalyzerOptions;
use bside_dist::fault::{faults_injected, set_plan, FaultPlan};
use bside_fleet::protocol::{seal_down, unseal_down, ToAgent, Want};
use bside_fleet::{
    analyze_corpus_fleet, run_agent_loop, AgentOptions, FleetCoordinator, FleetOptions,
};
use bside_obs as obs;
use bside_serve::Endpoint;
use common::{materialize, process_agent};
use serde::Value;
use std::sync::Mutex;
use std::time::Duration;

/// The span rings (and the fault plan) are process-global: the two
/// fleet-run tests each take this lock and drain the rings at the top,
/// so each asserts over exactly its own run's spans.
static RING_LOCK: Mutex<()> = Mutex::new(());

fn ring_guard() -> std::sync::MutexGuard<'static, ()> {
    RING_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn tcp0() -> Endpoint {
    Endpoint::Tcp("127.0.0.1:0".to_string())
}

/// One parsed Chrome trace event — the id triple the renderer carries
/// in `args` (as decimal strings; 64-bit ids don't survive JS numbers).
#[derive(Debug)]
struct Event {
    name: String,
    span_id: u64,
    parent_id: u64,
    run_id: u64,
    unit_id: u64,
}

fn field<'a>(obj: &'a [(String, Value)], key: &str) -> &'a Value {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("missing field `{key}`"))
}

fn id_of(value: &Value) -> u64 {
    match value {
        Value::Str(s) => s.parse().expect("decimal id string"),
        Value::UInt(n) => *n,
        other => panic!("not an id: {other:?}"),
    }
}

/// Parses a rendered Chrome trace document back into events — the same
/// surface a human loads into Perfetto is what the assertions walk.
fn parse_chrome_trace(json: &str) -> Vec<Event> {
    let doc: Value = serde_json::from_str(json).expect("trace JSON parses");
    let Value::Object(top) = &doc else {
        panic!("trace document is not an object");
    };
    let Value::Seq(events) = field(top, "traceEvents") else {
        panic!("traceEvents is not an array");
    };
    events
        .iter()
        .map(|event| {
            let Value::Object(ev) = event else {
                panic!("event is not an object");
            };
            let Value::Str(name) = field(ev, "name") else {
                panic!("event name is not a string");
            };
            let Value::Object(args) = field(ev, "args") else {
                panic!("event args is not an object");
            };
            Event {
                name: name.clone(),
                span_id: id_of(field(args, "span_id")),
                parent_id: id_of(field(args, "parent_id")),
                run_id: id_of(field(args, "run_id")),
                unit_id: id_of(field(args, "unit_id")),
            }
        })
        .collect()
}

/// The ISSUE's acceptance bar: two real agent *processes* over TCP, one
/// corpus run, and the drained trace stitches coordinator dispatch →
/// agent analyze → per-phase children for every unit.
#[test]
fn two_agent_fleet_run_stitches_dispatch_analyze_phase_tree() {
    let _rings = ring_guard();
    let _ = obs::drain_trace();
    let (_dir, units) = materialize("trace_two_agents", 4);
    let handle = FleetCoordinator::bind(&tcp0(), FleetOptions::default()).expect("bind");
    let mut a1 = process_agent(handle.endpoint(), 1, &[]);
    let mut a2 = process_agent(handle.endpoint(), 1, &[]);
    assert!(
        handle.wait_for_agents(2, Duration::from_secs(30)),
        "both agent processes join"
    );

    let run = analyze_corpus_fleet(&units, &handle).expect("fleet run completes");
    assert_eq!(run.stats.failures, 0, "all units land");
    assert_eq!(handle.stats().agents_joined, 2);
    handle.shutdown();
    let _ = a1.wait();
    let _ = a2.wait();

    let events = parse_chrome_trace(&obs::chrome_trace_json(&obs::drain_trace()));
    let root = events
        .iter()
        .find(|e| e.name == "fleet_run")
        .expect("the run recorded its root span");
    assert_eq!(root.parent_id, 0, "the run root has no parent");

    let dispatches: Vec<&Event> = events
        .iter()
        .filter(|e| e.name == "dispatch" && e.run_id == root.run_id)
        .collect();
    assert_eq!(
        dispatches.len(),
        units.len(),
        "healthy agents: one dispatch span per unit"
    );
    let mut unit_ids: Vec<u64> = dispatches.iter().map(|d| d.unit_id).collect();
    unit_ids.sort_unstable();
    unit_ids.dedup();
    assert_eq!(
        unit_ids.len(),
        units.len(),
        "each dispatch carries its own unit id"
    );
    for dispatch in &dispatches {
        assert_eq!(
            dispatch.parent_id, root.span_id,
            "every dispatch hangs off the run root"
        );
    }

    let analyzes: Vec<&Event> = events
        .iter()
        .filter(|e| e.name == "analyze" && e.run_id == root.run_id)
        .collect();
    assert_eq!(
        analyzes.len(),
        units.len(),
        "every agent-side analysis span crossed the wire home"
    );
    const PHASES: [&str; 3] = [
        "cfg_recovery",
        "wrapper_identification",
        "syscall_identification",
    ];
    for analyze in &analyzes {
        let dispatch = dispatches
            .iter()
            .find(|d| d.span_id == analyze.parent_id)
            .expect("analyze span is parented by a recorded dispatch span");
        assert_eq!(
            dispatch.unit_id, analyze.unit_id,
            "parent and child agree on which unit this is"
        );
        for phase in PHASES {
            assert!(
                events
                    .iter()
                    .any(|p| p.name == phase && p.parent_id == analyze.span_id),
                "phase `{phase}` child missing under analyze span {}",
                analyze.span_id
            );
        }
    }
}

/// A context mangled in flight costs the parent link, never the unit:
/// wrong-typed and all-zero trace triples parse as `None` on an
/// otherwise intact frame, in the open and through a sealed envelope.
#[test]
fn corrupted_trace_context_degrades_to_orphan_never_severed() {
    let ctx = obs::TraceContext {
        run_id: 7,
        unit_id: 3,
        span_id: 9,
    };
    let unit = ToAgent::Unit {
        id: 3,
        name: "u3".to_string(),
        path: "/corpus/u3.elf".to_string(),
        want: Want::Analysis,
        elf: vec![1, 2, 3],
        options: AnalyzerOptions::default(),
        trace: Some(ctx),
    };
    let line = serde_json::to_string(&unit).expect("unit serializes");

    // Baseline: a clean frame round-trips the context.
    match serde_json::from_str::<ToAgent>(&line).expect("clean frame parses") {
        ToAgent::Unit { trace, .. } => assert_eq!(trace, Some(ctx)),
        other => panic!("not a unit: {other:?}"),
    }

    // Wrong JSON type in one triple field: the context degrades to
    // `None`; id, name, and payload survive untouched.
    let mut doc: Value = serde_json::from_str(&line).expect("line parses as a value");
    let Value::Object(fields) = &mut doc else {
        panic!("frame is not an object");
    };
    for (key, value) in fields.iter_mut() {
        if key == "trace_span" {
            *value = Value::Str("garbage".to_string());
        }
    }
    let corrupted = serde_json::to_string(&doc).expect("corrupted frame re-serializes");
    match serde_json::from_str::<ToAgent>(&corrupted)
        .expect("a corrupted context must not sever the frame")
    {
        ToAgent::Unit {
            id,
            name,
            elf,
            trace,
            ..
        } => {
            assert_eq!((id, name.as_str(), elf.len()), (3, "u3", 3));
            assert_eq!(trace, None, "mangled context degrades to an orphan");
        }
        other => panic!("not a unit: {other:?}"),
    }

    // The sealed path: the MAC covers the body bytes, so a sealed frame
    // carrying a context round-trips it exactly...
    let key = [7u8; 32];
    let sealed = seal_down(&key, 1, &unit).expect("seals");
    let ToAgent::Sealed { seq, mac, body } = sealed else {
        panic!("seal_down returns an envelope");
    };
    match unseal_down(&key, seq, &mac, &body).expect("seal verifies") {
        ToAgent::Unit { trace, .. } => assert_eq!(trace, Some(ctx)),
        other => panic!("not a unit: {other:?}"),
    }
    // ...and a sealed body whose *context* was corrupted before sealing
    // (an old or buggy peer, not line noise — noise fails the MAC and
    // kills the whole frame) still unseals to an orphaned, usable unit.
    let mac = bside_fleet::auth::frame_mac(&key, 2, &corrupted);
    match unseal_down(&key, 2, &mac, &corrupted).expect("sealed orphan unseals") {
        ToAgent::Unit { id, trace, .. } => {
            assert_eq!(id, 3);
            assert_eq!(trace, None);
        }
        other => panic!("not a unit: {other:?}"),
    }

    // An all-zero triple is "no context", not a context of zeros.
    let zeroed = ToAgent::Unit {
        id: 4,
        name: "u4".to_string(),
        path: "/corpus/u4.elf".to_string(),
        want: Want::Analysis,
        elf: vec![9],
        options: AnalyzerOptions::default(),
        trace: Some(obs::TraceContext::default()),
    };
    let line = serde_json::to_string(&zeroed).expect("serializes");
    match serde_json::from_str::<ToAgent>(&line).expect("parses") {
        ToAgent::Unit { trace, .. } => assert_eq!(trace, None),
        other => panic!("not a unit: {other:?}"),
    }
}

const SECRET: &str = "trace-suite-secret";

/// RAII fault-plan installation: a panicking test clears its chaos.
struct PlanGuard;
impl PlanGuard {
    fn install(plan: FaultPlan) -> PlanGuard {
        set_plan(Some(plan));
        PlanGuard
    }
}
impl Drop for PlanGuard {
    fn drop(&mut self) {
        set_plan(None);
    }
}

/// Under seeded line noise on a sealed fleet, whatever spans land still
/// form a closed tree: every analyze span's parent resolves to a
/// dispatch span the coordinator recorded (retried dispatches included)
/// or is a clean orphan — never a dangling id.
#[test]
fn seeded_chaos_never_severs_trace_links() {
    let _rings = ring_guard();
    let _ = obs::drain_trace();
    let (_dir, units) = materialize("trace_chaos", 4);
    let handle = FleetCoordinator::bind(
        &tcp0(),
        FleetOptions {
            max_attempts: 64,
            unit_timeout: Duration::from_secs(20),
            heartbeat_interval: Duration::from_millis(200),
            heartbeat_timeout: Duration::from_secs(3),
            secret: Some(SECRET.to_string()),
            ..FleetOptions::default()
        },
    )
    .expect("bind");

    let chaos = PlanGuard::install(FaultPlan {
        corrupt: 30,
        truncate: 15,
        dup: 30,
        delay: 20,
        delay_ms: 1,
        ..FaultPlan::quiet(11)
    });
    let injected_before = faults_injected();
    let agent = |seed: u64| {
        let endpoint = handle.endpoint().clone();
        std::thread::spawn(move || {
            run_agent_loop(
                &endpoint,
                &AgentOptions {
                    slots: 1,
                    secret: Some(SECRET.to_string()),
                    backoff_base: Duration::from_millis(5),
                    backoff_cap: Duration::from_millis(50),
                    backoff_seed: Some(seed),
                    ..AgentOptions::default()
                },
            )
        })
    };
    let a1 = agent(31);
    let a2 = agent(32);
    assert!(
        handle.wait_for_agents(2, Duration::from_secs(30)),
        "agents join under line noise"
    );

    let run = analyze_corpus_fleet(&units, &handle).expect("chaos run completes");
    assert_eq!(run.stats.failures, 0, "every unit converges");
    assert!(
        faults_injected() > injected_before,
        "the dice never fired — this run proved nothing"
    );
    drop(chaos);
    handle.shutdown();
    let _ = a1.join();
    let _ = a2.join();

    let events = parse_chrome_trace(&obs::chrome_trace_json(&obs::drain_trace()));
    let root = events
        .iter()
        .find(|e| e.name == "fleet_run")
        .expect("root span recorded");
    let dispatch_ids: Vec<u64> = events
        .iter()
        .filter(|e| e.name == "dispatch" && e.run_id == root.run_id)
        .map(|e| e.span_id)
        .collect();
    assert!(
        dispatch_ids.len() >= units.len(),
        "at least one dispatch per unit (retries add more)"
    );
    let analyzes: Vec<&Event> = events
        .iter()
        .filter(|e| e.name == "analyze" && e.run_id == root.run_id)
        .collect();
    assert!(
        !analyzes.is_empty(),
        "agent spans crossed the sealed link home"
    );
    for analyze in &analyzes {
        assert!(
            analyze.parent_id == 0 || dispatch_ids.contains(&analyze.parent_id),
            "analyze span {} dangles from unknown parent {}",
            analyze.span_id,
            analyze.parent_id
        );
    }
}
