//! End-to-end fleet tests: coordinator + live TCP agents against a
//! materialized synthetic corpus.
//!
//! The acceptance bar for the fleet layer:
//!
//! * a run over ≥2 TCP agents produces a merged corpus report
//!   **byte-identical** to the in-process `analyze_corpus`;
//! * the capability hello gates admission: wrong protocol version or
//!   cache format is rejected in band;
//! * the content-addressed result cache answers re-runs without
//!   dispatching a single unit;
//! * a corpus whose units degrade (unreadable file) degrades exactly
//!   like the in-process engine, message for message.

mod common;

use bside_fleet::protocol::{
    read_message_capped, write_message, FromAgent, ToAgent, MAX_FLEET_LINE_BYTES, PROTOCOL_VERSION,
};
use bside_fleet::{analyze_corpus_fleet, FleetCoordinator, FleetOptions};
use bside_serve::{Conn, Endpoint};
use common::{in_process_report, materialize, temp_dir, thread_agent};
use std::io::BufReader;
use std::time::Duration;

fn tcp0() -> Endpoint {
    Endpoint::Tcp("127.0.0.1:0".to_string())
}

/// Every connection opens with the coordinator's challenge; hand-crafted
/// peers must consume it before the reply they actually care about.
fn expect_challenge(reader: &mut BufReader<Conn>) {
    match read_message_capped::<ToAgent>(reader, MAX_FLEET_LINE_BYTES).expect("challenge") {
        Some(ToAgent::Challenge { nonce }) => assert!(!nonce.is_empty()),
        other => panic!("expected challenge, got {other:?}"),
    }
}

#[test]
fn two_tcp_agents_reproduce_the_in_process_report() {
    let (corpus_dir, units) = materialize("two_agents", 10);
    let reference = in_process_report(&units);

    let handle = FleetCoordinator::bind(&tcp0(), FleetOptions::default()).expect("bind");
    let a1 = thread_agent(handle.endpoint(), 1);
    let a2 = thread_agent(handle.endpoint(), 2);
    assert!(
        handle.wait_for_agents(2, Duration::from_secs(10)),
        "both agents register"
    );

    let run = analyze_corpus_fleet(&units, &handle).expect("fleet run");
    assert_eq!(run.stats.units, units.len());
    assert_eq!(run.stats.failures, 0, "{:?}", run.stats);
    assert_eq!(run.stats.cache_hits, 0, "no cache configured");
    assert_eq!(
        reference,
        bside_dist::report_of_run(&run),
        "fleet merge must be byte-identical to in-process"
    );

    let stats = handle.stats();
    assert_eq!(stats.agents_joined, 2);
    assert_eq!(stats.agents_lost, 0);
    assert_eq!(stats.completed, units.len() as u64);
    // Both agents did real work: the corpus dwarfs any one slot window.
    let snapshots = handle.agents();
    assert_eq!(snapshots.len(), 2);
    assert!(
        snapshots.iter().all(|a| a.completed > 0),
        "work spread across the fleet: {snapshots:?}"
    );

    handle.shutdown();
    let r1 = a1.join().expect("agent thread").expect("clean goodbye");
    let r2 = a2.join().expect("agent thread").expect("clean goodbye");
    assert_eq!(r1.units + r2.units, units.len() as u64);
    let _ = std::fs::remove_dir_all(&corpus_dir);
}

#[test]
fn capability_hello_gates_admission() {
    let handle = FleetCoordinator::bind(&tcp0(), FleetOptions::default()).expect("bind");

    // Wrong protocol version.
    let conn = Conn::connect(handle.endpoint()).expect("dial");
    let mut writer = conn.try_clone().expect("clone");
    let mut reader = BufReader::new(conn);
    expect_challenge(&mut reader);
    write_message(
        &mut writer,
        &FromAgent::Hello {
            version: PROTOCOL_VERSION + 1,
            slots: 1,
            cache_format: bside_fleet::protocol::CACHE_FORMAT_VERSION,
            auth: None,
        },
    )
    .expect("hello");
    match read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES).expect("reply") {
        Some(ToAgent::Reject { message }) => {
            assert!(message.contains("protocol"), "got: {message}")
        }
        other => panic!("expected reject, got {other:?}"),
    }

    // Wrong cache format: the agent's analyses would not be comparable.
    let conn = Conn::connect(handle.endpoint()).expect("dial");
    let mut writer = conn.try_clone().expect("clone");
    let mut reader = BufReader::new(conn);
    expect_challenge(&mut reader);
    write_message(
        &mut writer,
        &FromAgent::Hello {
            version: PROTOCOL_VERSION,
            slots: 1,
            cache_format: bside_fleet::protocol::CACHE_FORMAT_VERSION + 7,
            auth: None,
        },
    )
    .expect("hello");
    match read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES).expect("reply") {
        Some(ToAgent::Reject { message }) => {
            assert!(message.contains("cache format"), "got: {message}")
        }
        other => panic!("expected reject, got {other:?}"),
    }

    // Not a hello at all.
    let conn = Conn::connect(handle.endpoint()).expect("dial");
    let mut writer = conn.try_clone().expect("clone");
    let mut reader = BufReader::new(conn);
    expect_challenge(&mut reader);
    write_message(&mut writer, &FromAgent::Heartbeat).expect("frame");
    match read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES).expect("reply") {
        Some(ToAgent::Reject { message }) => {
            assert!(message.contains("hello"), "got: {message}")
        }
        other => panic!("expected reject, got {other:?}"),
    }

    assert_eq!(handle.stats().agents_joined, 0, "nobody was admitted");
    handle.shutdown();
}

#[test]
fn result_cache_answers_reruns_without_dispatching() {
    let (corpus_dir, units) = materialize("fleet_cache", 5);
    let cache_dir = temp_dir("fleet_cache_store");
    let options = FleetOptions {
        cache_dir: Some(cache_dir.clone()),
        ..FleetOptions::default()
    };

    let reference = in_process_report(&units);
    let handle = FleetCoordinator::bind(&tcp0(), options.clone()).expect("bind");
    let agent = thread_agent(handle.endpoint(), 2);
    assert!(handle.wait_for_agents(1, Duration::from_secs(10)));
    let first = analyze_corpus_fleet(&units, &handle).expect("cold run");
    assert_eq!(first.stats.cache_hits, 0);
    assert_eq!(first.stats.failures, 0);
    assert_eq!(reference, bside_dist::report_of_run(&first));
    let dispatched_after_first = handle.stats().dispatched;
    assert!(dispatched_after_first >= units.len() as u64);

    // Re-run on the same coordinator: every unit answered from the
    // cache, nothing crosses the wire.
    let second = analyze_corpus_fleet(&units, &handle).expect("warm run");
    assert_eq!(second.stats.cache_hits, units.len());
    assert_eq!(
        handle.stats().dispatched,
        dispatched_after_first,
        "warm run dispatched nothing"
    );
    assert_eq!(
        reference,
        bside_dist::report_of_run(&second),
        "cache-served merge is still byte-identical"
    );
    for unit in &second.results {
        assert!(unit.from_cache);
        assert_eq!(unit.attempts, 0);
    }

    handle.shutdown();
    agent.join().expect("agent thread").expect("clean goodbye");
    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// A peer that completes the hello and then never sends another byte —
/// no heartbeat, no results — is declared dead by the silence deadline
/// and everything dispatched to it is requeued onto a live agent. This
/// is the heartbeat contract: "busy" keeps beating, "gone" goes quiet.
#[test]
fn silent_agent_is_declared_dead_and_its_units_requeued() {
    let (corpus_dir, units) = materialize("mute_agent", 6);
    let reference = in_process_report(&units);
    let options = FleetOptions {
        heartbeat_interval: Duration::from_millis(100),
        heartbeat_timeout: Duration::from_millis(600),
        ..FleetOptions::default()
    };
    let handle = FleetCoordinator::bind(&tcp0(), options).expect("bind");

    // The mute peer: a perfectly valid hello, then eternal silence. Its
    // connection must be kept alive by the test (dropping it would be
    // an honest EOF, which is the *other* failure mode).
    let mute = Conn::connect(handle.endpoint()).expect("dial");
    let mut mute_writer = mute.try_clone().expect("clone");
    let mut mute_reader = BufReader::new(mute.try_clone().expect("clone"));
    expect_challenge(&mut mute_reader);
    write_message(
        &mut mute_writer,
        &FromAgent::Hello {
            version: PROTOCOL_VERSION,
            slots: 2,
            cache_format: bside_fleet::protocol::CACHE_FORMAT_VERSION,
            auth: None,
        },
    )
    .expect("hello");
    assert!(
        matches!(
            read_message_capped::<ToAgent>(&mut mute_reader, MAX_FLEET_LINE_BYTES)
                .expect("welcome"),
            Some(ToAgent::Welcome { .. })
        ),
        "the mute peer is admitted before it goes quiet"
    );
    let live = thread_agent(handle.endpoint(), 1);
    assert!(handle.wait_for_agents(2, Duration::from_secs(10)));

    let run = analyze_corpus_fleet(&units, &handle).expect("run completes despite the mute agent");
    assert_eq!(run.stats.failures, 0, "{:?}", run.stats);
    assert!(
        run.stats.worker_crashes >= 1,
        "silence must be detected as a death: {:?}",
        run.stats
    );
    assert!(
        run.stats.retries >= 1,
        "units held by the mute agent must be requeued: {:?}",
        run.stats
    );
    assert_eq!(
        reference,
        bside_dist::report_of_run(&run),
        "silence recovery changed the merged report"
    );

    handle.shutdown();
    live.join().expect("agent thread").expect("clean goodbye");
    drop(mute);
    let _ = std::fs::remove_dir_all(&corpus_dir);
}

#[test]
fn degraded_units_render_exactly_like_the_in_process_engine() {
    let (corpus_dir, mut units) = materialize("fleet_degraded", 4);
    // A non-ELF file in the corpus: the agent reports the same parse
    // error the in-process reference renders.
    let junk = corpus_dir.join("0990_junk.elf");
    std::fs::write(&junk, b"definitely not an elf").expect("junk");
    units.push(("0990_junk".to_string(), junk));
    units.sort();

    let handle = FleetCoordinator::bind(&tcp0(), FleetOptions::default()).expect("bind");
    let agent = thread_agent(handle.endpoint(), 1);
    assert!(handle.wait_for_agents(1, Duration::from_secs(10)));
    let run = analyze_corpus_fleet(&units, &handle).expect("run completes");
    assert_eq!(run.stats.failures, 1, "exactly the junk unit fails");

    // The in-process reference path (what `bside corpus --in-process`
    // renders): read, parse, analyze, same degradation messages.
    let mut rows: Vec<(String, Result<bside_core::BinaryAnalysis, String>)> = Vec::new();
    for (name, path) in &units {
        let display = path.to_string_lossy();
        let bytes = std::fs::read(path).expect("readable");
        match bside_elf::Elf::parse(&bytes) {
            Ok(elf) => {
                let result = bside_core::Analyzer::new(bside_core::AnalyzerOptions::default())
                    .analyze_static(&elf)
                    .map_err(|e| e.to_string());
                rows.push((name.clone(), result));
            }
            Err(e) => rows.push((
                name.clone(),
                Err(bside_dist::worker::parse_error_message(&display, &e)),
            )),
        }
    }
    let reference = bside_dist::report::render_units(
        rows.iter()
            .map(|(name, r)| (name.as_str(), r.as_ref().map_err(Clone::clone))),
    );
    assert_eq!(
        reference,
        bside_dist::report_of_run(&run),
        "degraded merge must render byte-identically"
    );

    handle.shutdown();
    agent.join().expect("agent thread").expect("clean goodbye");
    let _ = std::fs::remove_dir_all(&corpus_dir);
}
