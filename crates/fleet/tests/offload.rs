//! Serve-daemon offload: `bside serve --fleet` wiring, in library form.
//! Analyze-on-miss leaders ship the whole bundle derivation to the
//! fleet; the bundle that comes back is byte-identical to a local
//! derivation, and the serve layer's single-flight still collapses a
//! cold storm into exactly one fleet unit.

mod common;

use bside_core::AnalyzerOptions;
use bside_fleet::{serve_offload, FleetCoordinator, FleetOptions};
use bside_serve::{derive_bundle, Endpoint, PolicyClient, PolicyServer, ServeOptions, Source};
use common::{materialize, temp_dir, thread_agent};
use std::time::Duration;

fn tcp0() -> Endpoint {
    Endpoint::Tcp("127.0.0.1:0".to_string())
}

#[test]
fn offloaded_bundle_is_byte_identical_and_store_backed() {
    let (corpus_dir, units) = materialize("offload", 2);
    let dir = temp_dir("offload_daemon");
    std::fs::create_dir_all(&dir).expect("scratch");

    let fleet = FleetCoordinator::bind(&tcp0(), FleetOptions::default()).expect("fleet bind");
    let agent = thread_agent(fleet.endpoint(), 2);
    assert!(fleet.wait_for_agents(1, Duration::from_secs(10)));

    let server = PolicyServer::spawn(
        &Endpoint::Unix(dir.join("bside.sock")),
        ServeOptions {
            remote_analyzer: Some(serve_offload(fleet.submitter(), Duration::from_secs(60))),
            read_timeout: Duration::from_secs(10),
            ..ServeOptions::default()
        },
    )
    .expect("daemon spawns");

    let (name, path) = &units[0];
    let path_str = path.to_str().expect("utf8");
    let mut client = PolicyClient::connect(server.endpoint()).expect("connect");

    let first = client.fetch_path(path_str).expect("cold fetch via fleet");
    assert_eq!(first.source, Source::Analyzed);
    let bytes = std::fs::read(path).expect("unit bytes");
    let local =
        derive_bundle(name, &bytes, &AnalyzerOptions::default(), None).expect("local derivation");
    assert_eq!(
        serde_json::to_string(&first.bundle).unwrap(),
        serde_json::to_string(&local).unwrap(),
        "fleet-derived bundle != local derivation"
    );
    assert_eq!(
        fleet.stats().completed,
        1,
        "exactly one unit crossed the fleet"
    );

    // The bundle landed in the daemon's store: the repeat fetch is a
    // store hit and costs the fleet nothing.
    let second = client.fetch_path(path_str).expect("warm fetch");
    assert_eq!(second.source, Source::Store);
    assert_eq!(fleet.stats().completed, 1, "no second fleet unit");

    server.shutdown();
    fleet.shutdown();
    agent.join().expect("agent thread").expect("clean goodbye");
    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cold_storm_composes_with_single_flight_into_one_fleet_unit() {
    let (corpus_dir, units) = materialize("offload_storm", 1);
    let dir = temp_dir("offload_storm_daemon");
    std::fs::create_dir_all(&dir).expect("scratch");

    let fleet = FleetCoordinator::bind(&tcp0(), FleetOptions::default()).expect("fleet bind");
    let agent = thread_agent(fleet.endpoint(), 2);
    assert!(fleet.wait_for_agents(1, Duration::from_secs(10)));

    const CLIENTS: usize = 6;
    let server = PolicyServer::spawn(
        &Endpoint::Unix(dir.join("bside.sock")),
        ServeOptions {
            remote_analyzer: Some(serve_offload(fleet.submitter(), Duration::from_secs(60))),
            // Widen the race window so every client lands in one flight.
            analysis_delay: Some(Duration::from_millis(300)),
            threads: CLIENTS + 1,
            read_timeout: Duration::from_secs(30),
            ..ServeOptions::default()
        },
    )
    .expect("daemon spawns");

    let path_str = units[0].1.to_str().expect("utf8").to_string();
    let barrier = std::sync::Barrier::new(CLIENTS);
    let sources: Vec<Source> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let barrier = &barrier;
                let path = &path_str;
                let server = &server;
                scope.spawn(move || {
                    let client = PolicyClient::connect(server.endpoint());
                    barrier.wait();
                    let mut client = client.expect("connect");
                    client.fetch_path(path).expect("storm fetch").source
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("storm client"))
            .collect()
    });

    let analyzed = sources.iter().filter(|s| **s == Source::Analyzed).count();
    assert_eq!(analyzed, 1, "exactly one leader: {sources:?}");
    assert_eq!(
        fleet.stats().completed,
        1,
        "one storm = one fleet unit, coalescing held: {sources:?}"
    );

    server.shutdown();
    fleet.shutdown();
    agent.join().expect("agent thread").expect("clean goodbye");
    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_downed_fleet_degrades_to_a_local_answer_not_an_error() {
    let (corpus_dir, units) = materialize("offload_down", 2);
    let dir = temp_dir("offload_down_daemon");
    std::fs::create_dir_all(&dir).expect("scratch");

    // Shut the fleet down before the daemon ever uses it: submissions
    // fail fast, and the daemon's circuit-breaker fallback answers
    // every request from the local pipeline instead.
    let fleet = FleetCoordinator::bind(&tcp0(), FleetOptions::default()).expect("fleet bind");
    let submitter = fleet.submitter();
    fleet.shutdown();

    let server = PolicyServer::spawn(
        &Endpoint::Unix(dir.join("bside.sock")),
        ServeOptions {
            remote_analyzer: Some(serve_offload(submitter, Duration::from_secs(60))),
            breaker_threshold: 1,
            read_timeout: Duration::from_secs(10),
            ..ServeOptions::default()
        },
    )
    .expect("daemon spawns");

    let mut client = PolicyClient::connect(server.endpoint()).expect("connect");
    for (name, path) in &units {
        let fetch = client
            .fetch_path(path.to_str().expect("utf8"))
            .expect("a downed fleet must degrade, not fail the client");
        assert_eq!(fetch.source, Source::Analyzed);
        let bytes = std::fs::read(path).expect("unit bytes");
        let local = derive_bundle(name, &bytes, &AnalyzerOptions::default(), None)
            .expect("local derivation");
        assert_eq!(
            serde_json::to_string(&fetch.bundle).unwrap(),
            serde_json::to_string(&local).unwrap(),
            "degraded bundle for {name} differs from a local derivation"
        );
    }
    let stats = client.stats().expect("stats");
    assert!(
        stats.degraded >= 1,
        "degradation must be counted: {stats:?}"
    );
    assert_eq!(stats.breaker_state, 1, "threshold 1: one failure opens it");
    assert_eq!(stats.errors, 0, "no client-visible failures");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The zero-agent hazard: a daemon offloading to a fleet nobody has
/// joined must answer cold fetches within a bounded wait — the offload
/// budget expires, the unit is abandoned, and the local fallback
/// derives the bundle — instead of pinning a pool worker forever on a
/// unit no agent will ever pull.
#[test]
fn offload_with_no_agents_degrades_within_the_budget_and_stays_serviceable() {
    let (corpus_dir, units) = materialize("offload_empty", 1);
    let dir = temp_dir("offload_empty_daemon");
    std::fs::create_dir_all(&dir).expect("scratch");

    // A live coordinator with zero agents, and a short offload budget.
    let fleet = FleetCoordinator::bind(&tcp0(), FleetOptions::default()).expect("fleet bind");
    let server = PolicyServer::spawn(
        &Endpoint::Unix(dir.join("bside.sock")),
        ServeOptions {
            remote_analyzer: Some(serve_offload(fleet.submitter(), Duration::from_secs(2))),
            read_timeout: Duration::from_secs(30),
            ..ServeOptions::default()
        },
    )
    .expect("daemon spawns");

    let mut client = PolicyClient::connect(server.endpoint()).expect("connect");
    let t0 = std::time::Instant::now();
    let fetch = client
        .fetch_path(units[0].1.to_str().expect("utf8"))
        .expect("no agents: the budget expires and the local fallback answers");
    assert_eq!(fetch.source, Source::Analyzed);
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "the wait is bounded by the offload budget plus one local analysis"
    );
    let stats = client.stats().expect("stats");
    assert_eq!(stats.degraded, 1, "the timed-out offload is degradation");
    // The pool worker is free again, and shutdown completes.
    client.ping().expect("daemon still serviceable");
    server.shutdown();
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
