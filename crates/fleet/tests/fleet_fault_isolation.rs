//! Machine-level fault isolation: an agent that dies mid-unit, severs
//! its connection mid-result-frame, or keeps crashing loses only what
//! it held — the corpus run completes via requeue onto surviving
//! agents, and the merged report still matches the in-process engine
//! byte-for-byte.
//!
//! The faults are injected through the `bside-agent` process hooks
//! (`BSIDE_AGENT_CRASH_UNIT` / `BSIDE_AGENT_SEVER_UNIT` /
//! `BSIDE_AGENT_FAULT_MARKER`), so these tests drive real agent
//! processes over real TCP sockets — the same machinery a fleet
//! operator runs.

mod common;

use bside_fleet::{analyze_corpus_fleet, FleetCoordinator, FleetOptions};
use bside_serve::Endpoint;
use common::{in_process_report, materialize, process_agent, temp_dir};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tcp0() -> Endpoint {
    Endpoint::Tcp("127.0.0.1:0".to_string())
}

/// Reaps an agent process without failing the test if it already exited.
fn reap(mut child: std::process::Child) {
    let _ = child.kill();
    let _ = child.wait();
}

#[test]
fn killed_agent_loses_only_its_units_and_survivors_finish_the_corpus() {
    let (corpus_dir, units) = materialize("agent_crash", 8);
    let reference = in_process_report(&units);
    let marker = temp_dir("agent_crash_marker").with_extension("flag");
    let victim = units[3].0.clone();

    let handle = FleetCoordinator::bind(&tcp0(), FleetOptions::default()).expect("bind");
    // Both agents carry the crash hook with a shared one-shot marker:
    // whichever pulls the victim dies (a SIGABRT is a fair model of a
    // machine going away mid-unit), and the retry lands on the survivor,
    // which by then sees the marker and behaves.
    let fault_env = vec![
        ("BSIDE_AGENT_CRASH_UNIT".to_string(), victim.clone()),
        (
            "BSIDE_AGENT_FAULT_MARKER".to_string(),
            marker.display().to_string(),
        ),
    ];
    let a1 = process_agent(handle.endpoint(), 1, &fault_env);
    let a2 = process_agent(handle.endpoint(), 1, &fault_env);
    assert!(
        handle.wait_for_agents(2, Duration::from_secs(20)),
        "both agent processes register"
    );

    let run = analyze_corpus_fleet(&units, &handle).expect("run completes despite the crash");
    assert!(
        run.stats.worker_crashes >= 1,
        "the killed agent must be observed: {:?}",
        run.stats
    );
    assert!(run.stats.retries >= 1, "the lost unit must be requeued");
    assert_eq!(run.stats.failures, 0, "the requeue must recover the unit");
    let recovered = run
        .results
        .iter()
        .find(|r| r.name == victim)
        .expect("victim present in merged results");
    assert!(recovered.result.is_ok());
    assert_eq!(
        recovered.attempts, 2,
        "first attempt died with its agent, second succeeded elsewhere"
    );
    assert_eq!(
        reference,
        bside_dist::report_of_run(&run),
        "fault recovery changed the merged report"
    );
    let stats = handle.stats();
    assert!(stats.agents_lost >= 1, "{stats:?}");

    handle.shutdown();
    reap(a1);
    reap(a2);
    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_file(&marker);
}

#[test]
fn connection_severed_mid_result_frame_is_requeued_on_a_survivor() {
    let (corpus_dir, units) = materialize("agent_sever", 8);
    let reference = in_process_report(&units);
    let marker = temp_dir("agent_sever_marker").with_extension("flag");
    let victim = units[2].0.clone();

    let handle = FleetCoordinator::bind(&tcp0(), FleetOptions::default()).expect("bind");
    // The sever hook flushes *half* the victim's result frame onto the
    // wire and aborts: the coordinator reads a torn line + EOF — framing
    // gone, unit requeued.
    let fault_env = vec![
        ("BSIDE_AGENT_SEVER_UNIT".to_string(), victim.clone()),
        (
            "BSIDE_AGENT_FAULT_MARKER".to_string(),
            marker.display().to_string(),
        ),
    ];
    let a1 = process_agent(handle.endpoint(), 1, &fault_env);
    let a2 = process_agent(handle.endpoint(), 1, &fault_env);
    assert!(
        handle.wait_for_agents(2, Duration::from_secs(20)),
        "both agent processes register"
    );

    let run = analyze_corpus_fleet(&units, &handle).expect("run completes despite the sever");
    assert!(run.stats.retries >= 1, "the torn unit must be requeued");
    assert_eq!(run.stats.failures, 0, "{:?}", run.stats);
    let recovered = run
        .results
        .iter()
        .find(|r| r.name == victim)
        .expect("victim present in merged results");
    assert!(recovered.result.is_ok());
    assert_eq!(recovered.attempts, 2, "torn frame spent one attempt");
    assert_eq!(
        reference,
        bside_dist::report_of_run(&run),
        "mid-frame sever changed the merged report"
    );

    handle.shutdown();
    reap(a1);
    reap(a2);
    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_file(&marker);
}

#[test]
fn poison_unit_with_a_respawning_fleet_becomes_a_per_unit_failure() {
    let (corpus_dir, units) = materialize("agent_poison", 6);
    let victim = units[1].0.clone();

    let handle = FleetCoordinator::bind(&tcp0(), FleetOptions::default()).expect("bind");
    // No marker: every agent that pulls the victim dies. Unlike the dist
    // coordinator, a fleet cannot respawn remote machines — an operator's
    // supervisor (systemd, a k8s ReplicaSet) does. Model it: keep one
    // fresh agent process coming until the run completes. The victim
    // burns its attempt budget across two agent generations and is
    // recorded as a per-unit failure; every other unit completes.
    let stop = Arc::new(AtomicBool::new(false));
    let supervisor = {
        let stop = Arc::clone(&stop);
        let endpoint = handle.endpoint().clone();
        let fault_env = vec![("BSIDE_AGENT_CRASH_UNIT".to_string(), victim.clone())];
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let mut child = process_agent(&endpoint, 1, &fault_env);
                loop {
                    if stop.load(Ordering::SeqCst) {
                        let _ = child.kill();
                        let _ = child.wait();
                        return;
                    }
                    match child.try_wait() {
                        Ok(Some(_)) => break, // died (the poison): respawn
                        Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                        Err(_) => break,
                    }
                }
            }
        })
    };

    let run = analyze_corpus_fleet(&units, &handle).expect("run completes despite a poison unit");
    stop.store(true, Ordering::SeqCst);

    assert_eq!(run.stats.units, units.len());
    assert_eq!(run.stats.failures, 1, "exactly the poison unit fails");
    let poisoned = run
        .results
        .iter()
        .find(|r| r.name == victim)
        .expect("victim present in merged results");
    let failure = poisoned.result.as_ref().expect_err("victim must fail");
    assert_eq!(failure.attempts, 2, "one retry, then terminal");
    for report in run.results.iter().filter(|r| r.name != victim) {
        assert!(
            report.result.is_ok(),
            "{} must be isolated from the poison unit",
            report.name
        );
    }
    assert!(
        handle.stats().agents_lost >= 2,
        "each poison attempt took an agent generation with it: {:?}",
        handle.stats()
    );

    handle.shutdown();
    supervisor.join().expect("supervisor thread");
    let _ = std::fs::remove_dir_all(&corpus_dir);
}
