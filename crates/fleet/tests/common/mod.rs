//! Helpers shared by the fleet integration tests.

// Each integration-test binary compiles this module separately and uses
// a different subset of the helpers.
#![allow(dead_code)]

use bside_core::{Analyzer, AnalyzerOptions};
use bside_dist::report_of_in_process;
use bside_gen::corpus::{corpus_with_size, DEFAULT_SEED};
use std::path::PathBuf;

/// The `bside-agent` binary Cargo built alongside these tests.
pub fn agent_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_bside-agent"))
}

/// A per-test, per-process scratch path (removed first if it exists).
pub fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bside_fleet_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Materializes `n` static default-seed corpus binaries under a fresh
/// scratch directory.
pub fn materialize(tag: &str, n: usize) -> (PathBuf, Vec<(String, PathBuf)>) {
    let dir = temp_dir(tag);
    let units = corpus_with_size(DEFAULT_SEED, n, 0, 0)
        .materialize_static(&dir)
        .expect("corpus materializes");
    (dir, units)
}

/// The in-process reference report over materialized units — what every
/// fleet run must reproduce byte-for-byte.
pub fn in_process_report(units: &[(String, PathBuf)]) -> String {
    let images: Vec<(String, Vec<u8>)> = units
        .iter()
        .map(|(name, path)| (name.clone(), std::fs::read(path).expect("unit file reads")))
        .collect();
    let elfs: Vec<(String, bside_elf::Elf)> = images
        .iter()
        .map(|(name, bytes)| {
            (
                name.clone(),
                bside_elf::Elf::parse(bytes).expect("unit parses"),
            )
        })
        .collect();
    let refs: Vec<(&str, &bside_elf::Elf)> = elfs.iter().map(|(n, e)| (n.as_str(), e)).collect();
    let results = Analyzer::new(AnalyzerOptions::default()).analyze_corpus(&refs);
    report_of_in_process(&results)
}

/// Spawns an in-thread agent against `endpoint` (for tests that need
/// live agents but no process-level faults).
pub fn thread_agent(
    endpoint: &bside_serve::Endpoint,
    slots: usize,
) -> std::thread::JoinHandle<std::io::Result<bside_fleet::AgentReport>> {
    let endpoint = endpoint.clone();
    std::thread::spawn(move || {
        bside_fleet::run_agent(
            &endpoint,
            &bside_fleet::AgentOptions {
                slots,
                dial_timeout: Some(std::time::Duration::from_secs(10)),
                ..bside_fleet::AgentOptions::default()
            },
        )
    })
}

/// Spawns a real `bside-agent` process against `endpoint` with extra
/// environment variables (the fault hooks).
pub fn process_agent(
    endpoint: &bside_serve::Endpoint,
    slots: usize,
    env: &[(String, String)],
) -> std::process::Child {
    let addr = match endpoint {
        bside_serve::Endpoint::Tcp(addr) => addr.clone(),
        bside_serve::Endpoint::Unix(path) => format!("unix:{}", path.display()),
    };
    let mut command = std::process::Command::new(agent_bin());
    command
        .arg("--connect")
        .arg(&addr)
        .arg("--slots")
        .arg(slots.to_string())
        .stderr(std::process::Stdio::null());
    for (key, value) in env {
        command.env(key, value);
    }
    command.spawn().expect("agent process spawns")
}
