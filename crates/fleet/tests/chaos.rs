//! Chaos suites: the trustable-fleet acceptance tests.
//!
//! Three storylines, all seed-deterministic and socket-real:
//!
//! 1. **Authentication holds the line** — unauthenticated and
//!    wrong-secret agents are rejected in band; a mid-session injector
//!    forging a result frame (valid body, wrong MAC) is severed and
//!    lands **nothing** in the content-addressed result cache.
//! 2. **Line noise cannot change answers** — under a seeded
//!    [`bside_dist::fault::FaultPlan`] (corruption, truncation, resets,
//!    duplicates, delays at the shared codec), a secured fleet of
//!    reconnecting agents still converges to a merged report
//!    byte-identical to the in-process engine.
//! 3. **A bounced coordinator is survivable** — agents ride out a
//!    coordinator that dies without a goodbye, re-dial under backoff,
//!    and the rerun on the reborn coordinator reproduces the reference
//!    report; the eventual in-band goodbye ends them cleanly.
//!
//! The fault plan is process-global state, so every test here takes one
//! shared lock — chaos must never leak into a neighboring test.

mod common;

use bside_dist::fault::{faults_injected, set_plan, FaultPlan};
use bside_fleet::protocol::{
    read_message_capped, seal, unseal_down, write_message, FromAgent, ToAgent, Want,
    CACHE_FORMAT_VERSION, MAX_FLEET_LINE_BYTES, PROTOCOL_VERSION,
};
use bside_fleet::{
    analyze_corpus_fleet, auth, run_agent, run_agent_loop, AgentOptions, AgentReport,
    FleetCoordinator, FleetOptions,
};
use bside_serve::{Conn, Endpoint};
use common::{in_process_report, materialize, temp_dir};
use std::io::BufReader;
use std::sync::Mutex;
use std::time::Duration;

/// Serializes the whole suite: the fault plan is process-global.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_guard() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// RAII fault-plan installation: a panicking test clears its chaos.
struct PlanGuard;
impl PlanGuard {
    fn install(plan: FaultPlan) -> PlanGuard {
        set_plan(Some(plan));
        PlanGuard
    }
}
impl Drop for PlanGuard {
    fn drop(&mut self) {
        set_plan(None);
    }
}

fn tcp0() -> Endpoint {
    Endpoint::Tcp("127.0.0.1:0".to_string())
}

const SECRET: &str = "chaos-suite-secret";

fn secured_options() -> FleetOptions {
    FleetOptions {
        secret: Some(SECRET.to_string()),
        ..FleetOptions::default()
    }
}

/// An in-thread agent running the given options under the reconnect
/// supervisor.
fn loop_agent(
    endpoint: &Endpoint,
    options: AgentOptions,
) -> std::thread::JoinHandle<std::io::Result<AgentReport>> {
    let endpoint = endpoint.clone();
    std::thread::spawn(move || run_agent_loop(&endpoint, &options))
}

fn secured_agent(slots: usize, seed: u64) -> AgentOptions {
    AgentOptions {
        slots,
        secret: Some(SECRET.to_string()),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        backoff_seed: Some(seed),
        ..AgentOptions::default()
    }
}

#[test]
fn unauthenticated_and_wrong_secret_agents_are_rejected_in_band() {
    let _chaos = chaos_guard();
    let handle = FleetCoordinator::bind(&tcp0(), secured_options()).expect("bind");

    // No secret at all.
    let err = run_agent(handle.endpoint(), &AgentOptions::default())
        .expect_err("a secretless agent must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
    assert!(
        err.to_string().contains("requires authentication"),
        "got: {err}"
    );

    // The wrong secret.
    let err = run_agent(
        handle.endpoint(),
        &AgentOptions {
            secret: Some("not-the-secret".to_string()),
            ..AgentOptions::default()
        },
    )
    .expect_err("a wrong-secret agent must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);

    // Rejection ends the reconnect supervisor too — after a few
    // consecutive tries (one reject could be a corrupted challenge
    // nonce, not a wrong secret), the loop surfaces the verdict instead
    // of hammering the coordinator forever.
    let err = run_agent_loop(
        handle.endpoint(),
        &AgentOptions {
            secret: Some("still-wrong".to_string()),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            backoff_seed: Some(1),
            ..AgentOptions::default()
        },
    )
    .expect_err("the reconnect loop must surface the reject");
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);

    let stats = handle.stats();
    // Two direct rejects plus the loop's three consecutive tries.
    assert_eq!(stats.agents_rejected, 5, "{stats:?}");
    assert_eq!(stats.agents_joined, 0, "nobody was admitted");
    handle.shutdown();
}

/// The injector storyline: a session whose hello was legitimate (the
/// wire belongs to a real agent) but whose result frame arrives with a
/// wrong MAC — what an on-path attacker without the session key can
/// best produce. The body is a perfectly valid, cache-ready result;
/// only the seal stands between it and the content-addressed cache.
#[test]
fn forged_result_frames_are_severed_and_land_nothing_in_the_cache() {
    let _chaos = chaos_guard();
    let (corpus_dir, units) = materialize("chaos_forge", 1);
    let reference = in_process_report(&units);
    let cache_dir = temp_dir("chaos_forge_cache");
    let handle = FleetCoordinator::bind(
        &tcp0(),
        FleetOptions {
            cache_dir: Some(cache_dir.clone()),
            max_attempts: 1, // one forged attempt is the whole story
            ..secured_options()
        },
    )
    .expect("bind");

    // The forger: a hand-driven peer that completes the authenticated
    // hello, pulls the unit, analyzes it for real — and sends the
    // result with a forged MAC.
    let forger = {
        let endpoint = handle.endpoint().clone();
        std::thread::spawn(move || {
            let conn = Conn::connect(&endpoint).expect("dial");
            let mut writer = conn.try_clone().expect("clone");
            let mut reader = BufReader::new(conn);
            let nonce = match read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES)
                .expect("challenge")
            {
                Some(ToAgent::Challenge { nonce }) => nonce,
                other => panic!("expected challenge, got {other:?}"),
            };
            write_message(
                &mut writer,
                &FromAgent::Hello {
                    version: PROTOCOL_VERSION,
                    slots: 1,
                    cache_format: CACHE_FORMAT_VERSION,
                    auth: Some(auth::hello_mac(
                        SECRET,
                        &nonce,
                        PROTOCOL_VERSION,
                        1,
                        CACHE_FORMAT_VERSION,
                    )),
                },
            )
            .expect("hello");
            match read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES)
                .expect("welcome")
            {
                Some(ToAgent::Welcome { sealed: true, .. }) => {}
                other => panic!("expected sealed welcome, got {other:?}"),
            }
            // Post-welcome frames arrive sealed on a secured fleet; this
            // peer holds the real secret, so it can unseal the unit.
            let key = auth::session_key(SECRET, &nonce);
            let (id, elf, options) =
                match read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES)
                    .expect("unit")
                {
                    Some(ToAgent::Sealed { seq, mac, body }) => {
                        match unseal_down(&key, seq, &mac, &body).expect("sealed unit") {
                            ToAgent::Unit {
                                id,
                                want: Want::Analysis,
                                elf,
                                options,
                                ..
                            } => (id, elf, options),
                            other => panic!("expected a unit, got {other:?}"),
                        }
                    }
                    other => panic!("expected a sealed unit, got {other:?}"),
                };
            let parsed = bside_elf::Elf::parse(&elf).expect("unit parses");
            let analysis = bside_core::Analyzer::new(options)
                .analyze_static(&parsed)
                .expect("unit analyzes");
            // A structurally perfect sealed frame with a forged MAC:
            // exactly what an injector without the session key can
            // produce at best.
            let genuine = seal(
                &[0u8; 32], // not the session key
                1,
                &FromAgent::Result {
                    id,
                    analysis: Box::new(analysis),
                    trace: None,
                    spans: Vec::new(),
                },
            )
            .expect("seal under the wrong key");
            write_message(&mut writer, &genuine).expect("forged frame sent");
            // The coordinator must sever us — wait for the EOF.
            while let Ok(Some(_)) =
                read_message_capped::<ToAgent>(&mut reader, MAX_FLEET_LINE_BYTES)
            {}
        })
    };

    let run = analyze_corpus_fleet(&units, &handle).expect("run completes");
    forger.join().expect("forger thread");
    assert_eq!(
        run.stats.failures, 1,
        "the forged unit must fail, not succeed: {:?}",
        run.stats
    );
    assert_eq!(
        handle.stats().completed,
        0,
        "a forged result must never count as completed"
    );

    // The forged analysis must not be in the cache: a rerun with an
    // honest agent sees zero cache hits and reproduces the reference.
    let honest = loop_agent(handle.endpoint(), secured_agent(1, 7));
    assert!(handle.wait_for_agents(1, Duration::from_secs(10)));
    let rerun = analyze_corpus_fleet(&units, &handle).expect("honest rerun");
    assert_eq!(
        rerun.stats.cache_hits, 0,
        "the forger must have landed nothing in the cache"
    );
    assert_eq!(rerun.stats.failures, 0);
    assert_eq!(reference, bside_dist::report_of_run(&rerun));

    handle.shutdown();
    let report = honest.join().expect("agent thread").expect("clean goodbye");
    assert_eq!(report.units, 1);
    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// An agent holding a secret must refuse an unsealing coordinator: the
/// downgrade (silently dropping frame integrity) fails loudly instead.
#[test]
fn secret_holding_agent_refuses_an_unsealed_coordinator() {
    let _chaos = chaos_guard();
    let handle = FleetCoordinator::bind(&tcp0(), FleetOptions::default()).expect("bind");
    let err = run_agent(
        handle.endpoint(),
        &AgentOptions {
            secret: Some(SECRET.to_string()),
            ..AgentOptions::default()
        },
    )
    .expect_err("running unsealed with a secret configured is a downgrade");
    assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
    assert!(err.to_string().contains("seal"), "got: {err}");
    handle.shutdown();
}

/// The headline chaos theorem: under seeded line noise on every codec
/// write — corruption, truncation, resets, duplicates, delays, on both
/// directions of every link — a secured fleet of reconnecting agents
/// still converges, and the merged report is byte-identical to the
/// in-process engine. The MACs turn every corruption into a detected
/// sever; the retry budget and the reconnect loops absorb the rest.
#[test]
fn seeded_line_noise_still_converges_byte_identically() {
    let _chaos = chaos_guard();
    let (corpus_dir, units) = materialize("chaos_noise", 8);
    let reference = in_process_report(&units);
    let handle = FleetCoordinator::bind(
        &tcp0(),
        FleetOptions {
            // Generous budgets: the dice *will* burn attempts.
            max_attempts: 64,
            unit_timeout: Duration::from_secs(20),
            heartbeat_interval: Duration::from_millis(200),
            heartbeat_timeout: Duration::from_secs(3),
            ..secured_options()
        },
    )
    .expect("bind");

    let plan = FaultPlan {
        corrupt: 40,
        truncate: 20,
        reset: 20,
        dup: 40,
        delay: 30,
        delay_ms: 1,
        ..FaultPlan::quiet(7)
    };
    let chaos = PlanGuard::install(plan);
    let injected_before = faults_injected();
    let a1 = loop_agent(handle.endpoint(), secured_agent(1, 21));
    let a2 = loop_agent(handle.endpoint(), secured_agent(2, 22));
    assert!(
        handle.wait_for_agents(2, Duration::from_secs(30)),
        "agents join even under line noise"
    );

    let run = analyze_corpus_fleet(&units, &handle).expect("chaos run completes");
    assert!(
        faults_injected() > injected_before,
        "the dice never fired — this run proved nothing"
    );
    assert_eq!(
        run.stats.failures, 0,
        "every unit must converge within the budget: {:?}",
        run.stats
    );
    assert_eq!(
        reference,
        bside_dist::report_of_run(&run),
        "line noise changed the merged report"
    );

    // Calm the wire before saying goodbye: with the plan still armed,
    // the shutdown frames themselves could be eaten, and a severed
    // agent would re-dial a dead endpoint forever.
    drop(chaos);
    assert!(
        handle.wait_for_agents(2, Duration::from_secs(10)),
        "both agents settle back into healthy sessions"
    );
    handle.shutdown();
    let r1 = a1.join().expect("agent thread").expect("clean goodbye");
    let r2 = a2.join().expect("agent thread").expect("clean goodbye");
    // Exact per-agent unit counts are dice-dependent (duplicated frames
    // and severed-then-retried units both shift them), but together the
    // agents must have served at least every unit once.
    assert!(
        r1.units + r2.units >= run.stats.units as u64,
        "agents under-report their work: {r1:?} + {r2:?} vs {:?}",
        run.stats
    );
    let _ = std::fs::remove_dir_all(&corpus_dir);
}

/// The bounced-coordinator storyline: the coordinator dies without a
/// goodbye (crash model), is reborn on the same port, and the
/// reconnecting agent serves it — the rerun reproduces the reference
/// report, and only the in-band goodbye ends the agent.
#[test]
fn a_bounced_coordinator_is_rejoined_and_the_rerun_is_byte_identical() {
    let _chaos = chaos_guard();
    let (corpus_dir, units) = materialize("chaos_bounce", 5);
    let reference = in_process_report(&units);

    let first = FleetCoordinator::bind(&tcp0(), secured_options()).expect("bind");
    let endpoint = first.endpoint().clone();
    let agent = loop_agent(
        &endpoint,
        AgentOptions {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            ..secured_agent(2, 33)
        },
    );
    assert!(first.wait_for_agents(1, Duration::from_secs(10)));
    let before = analyze_corpus_fleet(&units, &first).expect("first run");
    assert_eq!(reference, bside_dist::report_of_run(&before));

    // Crash: no goodbye frames, just severed links.
    first.abort();

    // Rebirth on the very same port (the OS may need a moment).
    let reborn = {
        let mut attempt = 0;
        loop {
            match FleetCoordinator::bind(&endpoint, secured_options()) {
                Ok(handle) => break handle,
                Err(e) if attempt < 50 => {
                    attempt += 1;
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => panic!("rebinding {endpoint:?}: {e}"),
            }
        }
    };
    assert!(
        reborn.wait_for_agents(1, Duration::from_secs(15)),
        "the agent must re-dial the reborn coordinator on its own"
    );
    let after = analyze_corpus_fleet(&units, &reborn).expect("rerun");
    assert_eq!(after.stats.failures, 0);
    assert_eq!(
        reference,
        bside_dist::report_of_run(&after),
        "the bounce changed the merged report"
    );

    reborn.shutdown();
    let report = agent.join().expect("agent thread").expect("clean goodbye");
    assert!(
        report.sessions >= 2,
        "the agent must have served both coordinator incarnations: {report:?}"
    );
    assert_eq!(report.units, (units.len() * 2) as u64);
    let _ = std::fs::remove_dir_all(&corpus_dir);
}
