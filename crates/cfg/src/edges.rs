//! Edge construction and reachability.

use crate::blocks::BasicBlock;
use crate::{plt_stub_got_slot, EdgeKind, FunctionSym};
use bside_x86::{Op, Target};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

type EdgeMap = HashMap<u64, Vec<(u64, EdgeKind)>>;

/// Builds successor and predecessor maps plus PLT-stub classification,
/// resolving indirect branches to `indirect_targets`.
pub(crate) fn build(
    blocks: &BTreeMap<u64, BasicBlock>,
    functions: &[FunctionSym],
    indirect_targets: &BTreeSet<u64>,
) -> (EdgeMap, EdgeMap, HashMap<u64, u64>) {
    let mut succs: EdgeMap = HashMap::new();
    let mut plt_stubs: HashMap<u64, u64> = HashMap::new();
    // (caller function-return bookkeeping) call edges: (callee entry, fallthrough block)
    let mut calls: Vec<(u64, u64)> = Vec::new();

    let block_at = |addr: u64| blocks.contains_key(&addr).then_some(addr);

    for (&start, block) in blocks {
        let term = block.terminator();
        let mut out: Vec<(u64, EdgeKind)> = Vec::new();
        match term.op {
            Op::Jmp(Target::Rel(_)) => {
                if let Some(t) = term.branch_target().and_then(block_at) {
                    out.push((t, EdgeKind::Branch));
                }
            }
            Op::Jmp(Target::Reg(_)) | Op::Jmp(Target::Mem(_)) => {
                if let Some(slot) = plt_stub_got_slot(block) {
                    // PLT stub: external control flow, no internal edges.
                    plt_stubs.insert(start, slot);
                } else {
                    for &t in indirect_targets {
                        if let Some(t) = block_at(t) {
                            out.push((t, EdgeKind::Indirect));
                        }
                    }
                }
            }
            Op::Jcc(..) => {
                if let Some(t) = term.branch_target().and_then(block_at) {
                    out.push((t, EdgeKind::Branch));
                }
                if let Some(f) = block_at(term.end()) {
                    out.push((f, EdgeKind::FallThrough));
                }
            }
            Op::Call(Target::Rel(_)) => {
                if let Some(t) = term.branch_target().and_then(block_at) {
                    out.push((t, EdgeKind::Call));
                    if let Some(f) = block_at(term.end()) {
                        calls.push((t, f));
                    }
                }
                if let Some(f) = block_at(term.end()) {
                    out.push((f, EdgeKind::FallThrough));
                }
            }
            Op::Call(Target::Reg(_)) | Op::Call(Target::Mem(_)) => {
                for &t in indirect_targets {
                    if let Some(t) = block_at(t) {
                        out.push((t, EdgeKind::Indirect));
                        if let Some(f) = block_at(term.end()) {
                            calls.push((t, f));
                        }
                    }
                }
                if let Some(f) = block_at(term.end()) {
                    out.push((f, EdgeKind::FallThrough));
                }
            }
            Op::Ret | Op::Ud2 | Op::Hlt => {}
            _ => {
                // Block ended by a leader split: plain fall-through.
                if let Some(f) = block_at(block.end()) {
                    out.push((f, EdgeKind::FallThrough));
                }
            }
        }
        succs.insert(start, out);
    }

    // Return edges: from each `ret` block of a called function back to the
    // post-call block of each caller.
    let func_range = |entry: u64| -> (u64, u64) {
        let f = functions.iter().find(|f| f.entry == entry);
        match f {
            Some(f) if f.size > 0 => (f.entry, f.entry + f.size),
            _ => {
                // Fall back: until the next function entry.
                let next = functions
                    .iter()
                    .map(|f| f.entry)
                    .filter(|&e| e > entry)
                    .min()
                    .unwrap_or(u64::MAX);
                (entry, next)
            }
        }
    };
    let mut ret_edges: Vec<(u64, u64)> = Vec::new();
    for &(callee, fallthrough) in &calls {
        let (lo, hi) = func_range(callee);
        for (&start, block) in blocks.range(lo..hi) {
            if matches!(block.terminator().op, Op::Ret) {
                ret_edges.push((start, fallthrough));
            }
        }
    }
    for (from, to) in ret_edges {
        let out = succs.entry(from).or_default();
        if !out.contains(&(to, EdgeKind::Return)) {
            out.push((to, EdgeKind::Return));
        }
    }

    // Predecessors.
    let mut preds: EdgeMap = HashMap::new();
    for (&from, outs) in &succs {
        for &(to, kind) in outs {
            preds.entry(to).or_default().push((from, kind));
        }
    }
    for outs in preds.values_mut() {
        outs.sort_unstable();
        outs.dedup();
    }
    for outs in succs.values_mut() {
        outs.sort_unstable();
        outs.dedup();
    }

    (succs, preds, plt_stubs)
}

/// Block-level BFS from the blocks containing `entries`.
///
/// `Return` edges are *not* followed: they over-approximate (a shared
/// helper's `ret` points at every caller's continuation, so following
/// them would mark a dead caller's continuation reachable through any
/// live call into the helper). Post-call continuations are covered by
/// the call block's own `FallThrough` edge, so skipping returns loses no
/// genuinely reachable block.
pub(crate) fn reachable_from(
    entries: &[u64],
    blocks: &BTreeMap<u64, BasicBlock>,
    succs: &EdgeMap,
) -> BTreeSet<u64> {
    let block_containing = |addr: u64| -> Option<u64> {
        let (&start, block) = blocks.range(..=addr).next_back()?;
        (addr < block.end()).then_some(start)
    };
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut queue: VecDeque<u64> = entries
        .iter()
        .filter_map(|&e| block_containing(e))
        .collect();
    seen.extend(queue.iter().copied());
    while let Some(b) = queue.pop_front() {
        for &(to, kind) in succs.get(&b).map(Vec::as_slice).unwrap_or(&[]) {
            if kind == EdgeKind::Return {
                continue;
            }
            if seen.insert(to) {
                queue.push_back(to);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::disassemble;
    use bside_x86::{Assembler, Cond, Reg};

    fn setup(
        asm: Assembler,
        funcs: &[FunctionSym],
        indirect: &[u64],
    ) -> (
        BTreeMap<u64, BasicBlock>,
        EdgeMap,
        EdgeMap,
        HashMap<u64, u64>,
    ) {
        let code = asm.finish().expect("assemble");
        let mut roots: BTreeSet<u64> = [0x1000].into_iter().collect();
        roots.extend(funcs.iter().map(|f| f.entry));
        roots.extend(indirect.iter().copied());
        let blocks = disassemble(&code, 0x1000, &roots);
        let targets: BTreeSet<u64> = indirect.iter().copied().collect();
        let (s, p, stubs) = build(&blocks, funcs, &targets);
        (blocks, s, p, stubs)
    }

    #[test]
    fn jcc_has_branch_and_fallthrough() {
        let mut a = Assembler::new(0x1000);
        let t = a.new_label();
        a.cmp_reg_imm32(Reg::Rax, 0);
        a.jcc_label(Cond::E, t);
        a.nop();
        a.bind(t).unwrap();
        a.ret();
        let (_b, succs, preds, _) = setup(a, &[], &[]);
        let out = &succs[&0x1000];
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|&(_, k)| k == EdgeKind::Branch));
        assert!(out.iter().any(|&(_, k)| k == EdgeKind::FallThrough));
        // The target block has the entry block as a predecessor.
        let t_addr = out.iter().find(|&&(_, k)| k == EdgeKind::Branch).unwrap().0;
        assert!(preds[&t_addr].iter().any(|&(p, _)| p == 0x1000));
    }

    #[test]
    fn call_produces_call_fallthrough_and_return_edges() {
        let mut a = Assembler::new(0x1000);
        let f = a.new_label();
        a.call_label(f); // block A @0x1000 (5 bytes)
        a.ret(); // block B @0x1005
        a.bind(f).unwrap();
        a.ret(); // callee @0x1006
        let funcs = vec![
            FunctionSym {
                name: "main".into(),
                entry: 0x1000,
                size: 6,
            },
            FunctionSym {
                name: "f".into(),
                entry: 0x1006,
                size: 1,
            },
        ];
        let (_b, succs, _preds, _) = setup(a, &funcs, &[]);
        let out = &succs[&0x1000];
        assert!(out.contains(&(0x1006, EdgeKind::Call)));
        assert!(out.contains(&(0x1005, EdgeKind::FallThrough)));
        // Return edge: callee ret block → post-call block.
        assert!(succs[&0x1006].contains(&(0x1005, EdgeKind::Return)));
    }

    #[test]
    fn indirect_call_fans_out_to_targets() {
        let mut a = Assembler::new(0x1000);
        let f1 = a.new_label();
        let f2 = a.new_label();
        a.call_reg(Reg::Rbx); // 0x1000..0x1002(+rex?) — call rbx = ff d3 (2 bytes)
        a.ret();
        a.bind(f1).unwrap();
        a.ret();
        a.bind(f2).unwrap();
        a.ret();
        // f1 at 0x1003, f2 at 0x1004.
        let (_b, succs, _p, _) = setup(a, &[], &[0x1003, 0x1004]);
        let out = &succs[&0x1000];
        assert!(out.contains(&(0x1003, EdgeKind::Indirect)));
        assert!(out.contains(&(0x1004, EdgeKind::Indirect)));
        assert!(out.iter().any(|&(_, k)| k == EdgeKind::FallThrough));
    }

    #[test]
    fn plt_stub_is_classified_not_edged() {
        let mut a = Assembler::new(0x1000);
        let got = a.new_label();
        a.bind_at(got, 0x3000).unwrap();
        a.endbr64();
        a.jmp_riplabel(got);
        let (_b, succs, _p, stubs) = setup(a, &[], &[]);
        assert_eq!(stubs.get(&0x1000), Some(&0x3000));
        assert!(succs[&0x1000].is_empty());
    }

    #[test]
    fn reachability_stops_at_dead_code() {
        let mut a = Assembler::new(0x1000);
        a.ret(); // entry
        a.syscall(); // dead
        a.ret();
        let code = a.finish().unwrap();
        let roots: BTreeSet<u64> = [0x1000, 0x1001].into_iter().collect();
        let blocks = disassemble(&code, 0x1000, &roots);
        let (succs, _p, _s) = build(&blocks, &[], &BTreeSet::new());
        let reach = reachable_from(&[0x1000], &blocks, &succs);
        assert!(reach.contains(&0x1000));
        assert!(!reach.contains(&0x1001));
    }
}
