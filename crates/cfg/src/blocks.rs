//! Basic-block discovery by recursive-traversal disassembly.

use bside_x86::{decode, Instruction, Op};
use std::collections::{BTreeMap, BTreeSet};

/// A maximal straight-line run of instructions: entered only at the top,
/// left only at the bottom.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: u64,
    /// The instructions, in address order. Never empty.
    pub insns: Vec<Instruction>,
}

impl BasicBlock {
    /// Address one past the last instruction.
    pub fn end(&self) -> u64 {
        self.insns.last().map(|i| i.end()).unwrap_or(self.start)
    }

    /// Size of the block in bytes (used for the phase-size column of
    /// Table 4).
    pub fn byte_size(&self) -> u64 {
        self.end() - self.start
    }

    /// The final instruction.
    pub fn terminator(&self) -> &Instruction {
        self.insns.last().expect("blocks are never empty")
    }

    /// `true` if the block contains a `syscall` instruction.
    pub fn has_syscall(&self) -> bool {
        self.insns.iter().any(|i| matches!(i.op, Op::Syscall))
    }
}

/// A memo of decode results keyed by address, shared across the repeated
/// disassembly passes of the active-address-taken fixpoint.
///
/// The fixpoint re-disassembles the text after every round that discovers
/// new indirect targets; without a cache each round re-decodes (almost)
/// every instruction from raw bytes. The code bytes never change within
/// one CFG construction, so decode results are safe to memoize —
/// including failures (`None`), which would otherwise be retried every
/// round.
#[derive(Debug, Default)]
pub(crate) struct DecodeCache {
    decoded: std::collections::HashMap<u64, Option<Instruction>>,
}

impl DecodeCache {
    fn decode_at(&mut self, code: &[u8], base: u64, addr: u64) -> Option<Instruction> {
        *self.decoded.entry(addr).or_insert_with(|| {
            let off = (addr - base) as usize;
            decode(&code[off..], addr).ok()
        })
    }
}

/// Disassembles `code` (loaded at `base`) starting from every root,
/// following direct control flow, and splits blocks at every discovered
/// leader (branch target or post-branch address).
///
/// Convenience over [`disassemble_cached`] for one-shot callers (tests);
/// the builder's fixpoint holds a [`DecodeCache`] across passes instead.
#[cfg(test)]
pub(crate) fn disassemble(
    code: &[u8],
    base: u64,
    roots: &BTreeSet<u64>,
) -> BTreeMap<u64, BasicBlock> {
    disassemble_cached(code, base, roots, &mut DecodeCache::default())
}

/// [`disassemble`] with a caller-held [`DecodeCache`], so the fixpoint's
/// repeated passes reuse decoded instructions instead of re-decoding.
pub(crate) fn disassemble_cached(
    code: &[u8],
    base: u64,
    roots: &BTreeSet<u64>,
    cache: &mut DecodeCache,
) -> BTreeMap<u64, BasicBlock> {
    let end = base + code.len() as u64;
    let in_range = |addr: u64| addr >= base && addr < end;

    // Pass 1: discover instructions and leaders.
    let mut insn_at: BTreeMap<u64, Instruction> = BTreeMap::new();
    let mut leaders: BTreeSet<u64> = BTreeSet::new();
    let mut worklist: Vec<u64> = roots.iter().copied().filter(|&a| in_range(a)).collect();
    leaders.extend(worklist.iter().copied());

    while let Some(start) = worklist.pop() {
        let mut addr = start;
        loop {
            if !in_range(addr) {
                break;
            }
            if insn_at.contains_key(&addr) {
                break; // already visited this run
            }
            let Some(insn) = cache.decode_at(code, base, addr) else {
                break; // undecodable: stop this run
            };
            insn_at.insert(addr, insn);

            // Control flow handling.
            match insn.op {
                Op::Jmp(_) | Op::Ret | Op::Ud2 | Op::Hlt => {
                    if let Some(t) = insn.branch_target() {
                        if in_range(t) {
                            leaders.insert(t);
                            worklist.push(t);
                        }
                    }
                    break;
                }
                Op::Jcc(..) => {
                    if let Some(t) = insn.branch_target() {
                        if in_range(t) {
                            leaders.insert(t);
                            worklist.push(t);
                        }
                    }
                    leaders.insert(insn.end());
                    // fall through continues the linear scan
                }
                Op::Call(_) => {
                    if let Some(t) = insn.branch_target() {
                        if in_range(t) {
                            leaders.insert(t);
                            worklist.push(t);
                        }
                    }
                    leaders.insert(insn.end());
                    // calls fall through (the callee returns)
                }
                Op::Syscall => {
                    // One syscall site per block: phase detection labels
                    // a block's outgoing edges with its site's syscalls,
                    // which only models execution if each site sits at a
                    // block boundary.
                    leaders.insert(insn.end());
                }
                _ => {}
            }
            addr = insn.end();
        }
    }

    // Pass 2: group instructions into blocks split at leaders.
    let mut blocks: BTreeMap<u64, BasicBlock> = BTreeMap::new();
    let mut current: Option<BasicBlock> = None;
    let mut expected_next: Option<u64> = None;

    for (&addr, insn) in &insn_at {
        let starts_new =
            leaders.contains(&addr) || current.is_none() || expected_next != Some(addr);
        if starts_new {
            if let Some(b) = current.take() {
                blocks.insert(b.start, b);
            }
            current = Some(BasicBlock {
                start: addr,
                insns: Vec::new(),
            });
        }
        let block = current.as_mut().expect("just ensured");
        block.insns.push(*insn);
        expected_next = Some(insn.end());
        if insn.is_terminator() || matches!(insn.op, Op::Jcc(..) | Op::Call(_) | Op::Syscall) {
            let b = current.take().expect("in block");
            blocks.insert(b.start, b);
        }
    }
    if let Some(b) = current.take() {
        blocks.insert(b.start, b);
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use bside_x86::{Assembler, Cond, Reg};

    fn blocks_of(asm: Assembler, roots: &[u64]) -> BTreeMap<u64, BasicBlock> {
        let code = asm.finish().expect("assemble");
        disassemble(&code, 0x1000, &roots.iter().copied().collect())
    }

    #[test]
    fn straight_line_splits_after_syscall() {
        let mut a = Assembler::new(0x1000);
        a.mov_reg_imm32(Reg::Rax, 60);
        a.syscall();
        a.ret();
        let blocks = blocks_of(a, &[0x1000]);
        // The syscall ends its block so each block holds ≤ 1 site.
        assert_eq!(blocks.len(), 2);
        let b = &blocks[&0x1000];
        assert_eq!(b.insns.len(), 2);
        assert!(b.has_syscall());
        assert!(!blocks[&0x1009].has_syscall());
    }

    #[test]
    fn branch_splits_blocks() {
        let mut a = Assembler::new(0x1000);
        let tgt = a.new_label();
        a.cmp_reg_imm32(Reg::Rdi, 0); // block 1
        a.jcc_label(Cond::E, tgt);
        a.nop(); // block 2 (fallthrough)
        a.bind(tgt).unwrap();
        a.ret(); // block 3 (branch target)
        let blocks = blocks_of(a, &[0x1000]);
        assert_eq!(blocks.len(), 3);
    }

    #[test]
    fn call_target_becomes_a_block() {
        let mut a = Assembler::new(0x1000);
        let f = a.new_label();
        a.call_label(f); // block 1
        a.ret(); // block 2 (post-call)
        a.bind(f).unwrap();
        a.syscall(); // block 3 (callee)
        a.ret();
        let blocks = blocks_of(a, &[0x1000]);
        assert_eq!(blocks.len(), 4, "call split + syscall split + callee ret");
        assert!(blocks.values().any(|b| b.has_syscall()));
    }

    #[test]
    fn jump_into_middle_splits_existing_block() {
        // A backward jump into the middle of an already-decoded run must
        // split that run into two blocks.
        let mut a = Assembler::new(0x1000);
        let mid = a.new_label();
        a.nop(); // 0x1000
        a.bind(mid).unwrap();
        a.nop(); // 0x1001 ← jump target
        a.nop();
        a.jmp_label(mid);
        let blocks = blocks_of(a, &[0x1000]);
        assert_eq!(blocks.len(), 2);
        assert!(blocks.contains_key(&0x1000));
        assert!(blocks.contains_key(&0x1001));
    }

    #[test]
    fn unreached_roots_outside_range_are_ignored() {
        let mut a = Assembler::new(0x1000);
        a.ret();
        let blocks = blocks_of(a, &[0x1000, 0x9999]);
        assert_eq!(blocks.len(), 1);
    }

    #[test]
    fn undecodable_bytes_stop_the_run() {
        let mut code = vec![0x90]; // nop
        code.push(0x06); // invalid
        let blocks = disassemble(&code, 0x1000, &[0x1000].into_iter().collect());
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[&0x1000].insns.len(), 1);
    }

    #[test]
    fn block_byte_size() {
        let mut a = Assembler::new(0x1000);
        a.mov_reg_imm32(Reg::Rax, 1); // 7 bytes
        a.ret(); // 1 byte
        let blocks = blocks_of(a, &[0x1000]);
        assert_eq!(blocks[&0x1000].byte_size(), 8);
    }
}
