//! Control-flow-graph recovery (§4.3 of the B-Side paper).
//!
//! Disassembly alone yields an *incomplete* CFG: indirect calls and jumps
//! (function pointers) have no statically obvious targets. B-Side
//! conservatively over-approximates them with the *address taken*
//! heuristic inherited from SysFilter — every indirect branch may go to
//! any code address that is the operand of an address-forming instruction
//! (`lea reg, [rip+disp]`) — and refines it into *active addresses taken*:
//! only `lea`s in blocks **reachable from the entry point** count, computed
//! to a fixpoint because resolving indirect branches can make new `lea`s
//! reachable (Fig. 4).
//!
//! The crate exposes:
//!
//! * [`Cfg`] — basic blocks, intra-/inter-procedural edges with
//!   [`EdgeKind`]s, function table, PLT-stub classification;
//! * [`CfgOptions`] / [`IndirectResolution`] — plain vs. active
//!   address-taken (the ablation of the paper's refinement);
//! * [`CfgStats`] — deterministic cost counters (blocks, fixpoint
//!   iterations) used by the Table 3 harness.
//!
//! # Examples
//!
//! ```
//! use bside_x86::{Assembler, Reg};
//! use bside_cfg::{Cfg, CfgOptions, FunctionSym};
//!
//! // entry: mov rax, 60; syscall (fallthrough into a second block via jmp)
//! let mut asm = Assembler::new(0x1000);
//! let done = asm.new_label();
//! asm.mov_reg_imm32(Reg::Rax, 60);
//! asm.jmp_label(done);
//! asm.bind(done).unwrap();
//! asm.syscall();
//! asm.ret();
//! let code = asm.finish().unwrap();
//!
//! let funcs = vec![FunctionSym { name: "_start".into(), entry: 0x1000, size: code.len() as u64 }];
//! let cfg = Cfg::build(&code, 0x1000, &[0x1000], &funcs, &CfgOptions::default());
//! assert_eq!(cfg.syscall_sites().len(), 1);
//! assert!(cfg.reachable().contains(&cfg.block_containing(cfg.syscall_sites()[0]).unwrap()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ataken;
mod blocks;
mod edges;

pub use blocks::BasicBlock;

use bside_x86::{Mem, Op, Target};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// How indirect branch targets are over-approximated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndirectResolution {
    /// Leave indirect branches unresolved (misses code — the naive
    /// baseline shape; kept for ablations).
    None,
    /// SysFilter-style: every `lea`-taken code address anywhere in the
    /// binary is a potential target.
    AddressTaken,
    /// B-Side's refinement: only addresses taken in blocks reachable from
    /// the entry points, iterated to a fixpoint (§4.3, Fig. 4).
    #[default]
    ActiveAddressTaken,
}

serde::impl_serde_unit_enum!(IndirectResolution {
    None,
    AddressTaken,
    ActiveAddressTaken,
});

/// CFG construction options.
#[derive(Debug, Clone, Default)]
pub struct CfgOptions {
    /// Indirect-branch resolution strategy.
    pub indirect: IndirectResolution,
}

serde::impl_serde_struct!(CfgOptions { indirect });

/// A function symbol: the boundary metadata the paper assumes the
/// disassembler recovers (§4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSym {
    /// Symbol name.
    pub name: String,
    /// Entry address.
    pub entry: u64,
    /// Size in bytes (0 = unknown).
    pub size: u64,
}

/// The kind of a CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// Taken direct branch (`jmp`/`jcc`).
    Branch,
    /// Sequential fall-through (including the not-taken side of `jcc` and
    /// the post-`call` continuation).
    FallThrough,
    /// Call edge into a function entry.
    Call,
    /// Return edge from a `ret` block back to a post-call block.
    Return,
    /// Edge added by the address-taken over-approximation of an indirect
    /// branch.
    Indirect,
}

/// Deterministic cost counters for Table 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CfgStats {
    /// Number of basic blocks discovered.
    pub blocks: usize,
    /// Number of instructions decoded.
    pub instructions: usize,
    /// Fixpoint iterations of the active-address-taken refinement.
    pub ataken_iterations: usize,
    /// Number of (active) addresses taken used to resolve indirect
    /// branches.
    pub addresses_taken: usize,
}

serde::impl_serde_struct!(CfgStats {
    blocks,
    instructions,
    ataken_iterations,
    addresses_taken,
});

/// A recovered control-flow graph.
///
/// The `Default` impl builds an **empty** graph (no blocks, no edges, no
/// functions). It exists for results that cross a serialization boundary:
/// the analysis wire format carries every observable *except* the CFG, so
/// a deserialized `bside-core` analysis holds an empty graph. Consumers
/// that need the live graph (phase detection) must analyze in-process.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    blocks: BTreeMap<u64, BasicBlock>,
    succs: HashMap<u64, Vec<(u64, EdgeKind)>>,
    preds: HashMap<u64, Vec<(u64, EdgeKind)>>,
    functions: Vec<FunctionSym>,
    entries: Vec<u64>,
    reachable: BTreeSet<u64>,
    addresses_taken: BTreeSet<u64>,
    /// Blocks that are PLT stubs (`jmp [rip+disp]` into a GOT slot),
    /// mapping block start → GOT slot address. Symbol resolution happens
    /// in `bside-core` where relocations are available.
    plt_stubs: HashMap<u64, u64>,
    stats: CfgStats,
}

impl Cfg {
    /// Builds a CFG from raw text bytes.
    ///
    /// * `code`/`base` — the `.text` contents and load address;
    /// * `entries` — disassembly roots and reachability sources: the
    ///   program entry point, or a shared library's exposed functions;
    /// * `functions` — function boundary symbols;
    /// * `options` — indirect-branch resolution strategy.
    pub fn build(
        code: &[u8],
        base: u64,
        entries: &[u64],
        functions: &[FunctionSym],
        options: &CfgOptions,
    ) -> Cfg {
        builder::build(code, base, entries, functions, options)
    }

    /// All basic blocks, keyed by start address.
    pub fn blocks(&self) -> &BTreeMap<u64, BasicBlock> {
        &self.blocks
    }

    /// The block starting exactly at `addr`.
    pub fn block(&self, addr: u64) -> Option<&BasicBlock> {
        self.blocks.get(&addr)
    }

    /// The start address of the block containing `addr`, if any.
    pub fn block_containing(&self, addr: u64) -> Option<u64> {
        let (&start, block) = self.blocks.range(..=addr).next_back()?;
        (addr < block.end()).then_some(start)
    }

    /// Successor edges of the block starting at `addr`.
    pub fn succs(&self, addr: u64) -> &[(u64, EdgeKind)] {
        self.succs.get(&addr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Predecessor edges of the block starting at `addr`.
    pub fn preds(&self, addr: u64) -> &[(u64, EdgeKind)] {
        self.preds.get(&addr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The function symbols supplied at construction.
    pub fn functions(&self) -> &[FunctionSym] {
        &self.functions
    }

    /// The function containing `addr`, resolved by symbol ranges (with a
    /// fallback to the nearest preceding entry when sizes are absent).
    pub fn function_of(&self, addr: u64) -> Option<&FunctionSym> {
        let mut best: Option<&FunctionSym> = None;
        for f in &self.functions {
            if addr >= f.entry {
                let in_range = if f.size > 0 {
                    addr < f.entry + f.size
                } else {
                    true
                };
                if in_range && best.is_none_or(|b| f.entry > b.entry) {
                    best = Some(f);
                }
            }
        }
        best
    }

    /// The disassembly/reachability roots.
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// Blocks reachable from the entries (block start addresses).
    pub fn reachable(&self) -> &BTreeSet<u64> {
        &self.reachable
    }

    /// The (active) address-taken set used to resolve indirect branches.
    pub fn addresses_taken(&self) -> &BTreeSet<u64> {
        &self.addresses_taken
    }

    /// Addresses of every *reachable* `syscall` instruction (§4.4 step F:
    /// only occurrences reachable from the entry point are considered).
    pub fn syscall_sites(&self) -> Vec<u64> {
        let mut sites = Vec::new();
        for start in &self.reachable {
            let block = &self.blocks[start];
            for insn in &block.insns {
                if matches!(insn.op, Op::Syscall) {
                    sites.push(insn.addr);
                }
            }
        }
        sites
    }

    /// All `syscall` sites, reachable or not (used by baselines that skip
    /// the reachability filter).
    pub fn all_syscall_sites(&self) -> Vec<u64> {
        self.blocks
            .values()
            .flat_map(|b| b.insns.iter())
            .filter(|i| matches!(i.op, Op::Syscall))
            .map(|i| i.addr)
            .collect()
    }

    /// Block starts of PLT stubs, with the GOT slot each jumps through.
    pub fn plt_stubs(&self) -> &HashMap<u64, u64> {
        &self.plt_stubs
    }

    /// Call sites (block start, call instruction) whose direct target is
    /// `func_entry`.
    pub fn callers_of(&self, func_entry: u64) -> Vec<u64> {
        self.preds(self.block_containing(func_entry).unwrap_or(func_entry))
            .iter()
            .filter(|(_, k)| matches!(k, EdgeKind::Call | EdgeKind::Indirect))
            .map(|&(p, _)| p)
            .collect()
    }

    /// Cost counters.
    pub fn stats(&self) -> CfgStats {
        self.stats
    }

    /// Functions reachable from the entries (by entry address).
    pub fn reachable_functions(&self) -> Vec<&FunctionSym> {
        self.functions
            .iter()
            .filter(|f| {
                self.block_containing(f.entry)
                    .is_some_and(|b| self.reachable.contains(&b))
            })
            .collect()
    }
}

mod builder {
    use super::*;
    use crate::{ataken, blocks, edges};

    pub(super) fn build(
        code: &[u8],
        base: u64,
        entries: &[u64],
        functions: &[FunctionSym],
        options: &CfgOptions,
    ) -> Cfg {
        // Roots: explicit entries plus all function symbols, so the whole
        // binary is disassembled (as angr/Capstone do); reachability below
        // distinguishes live code.
        let mut roots: BTreeSet<u64> = entries.iter().copied().collect();
        roots.extend(functions.iter().map(|f| f.entry));

        let mut iterations = 0usize;
        let mut indirect_targets: BTreeSet<u64> = BTreeSet::new();

        // One decode memo for every disassembly pass below: the fixpoint
        // re-disassembles after each round of newly-discovered indirect
        // targets, and the raw bytes never change within a build.
        let mut cache = blocks::DecodeCache::default();

        // Initial disassembly + plain address-taken scan.
        let mut block_map = blocks::disassemble_cached(code, base, &roots, &mut cache);
        let all_taken = ataken::scan(&block_map, base, code.len() as u64);

        match options.indirect {
            IndirectResolution::None => {}
            IndirectResolution::AddressTaken => {
                indirect_targets = all_taken.clone();
                // Addresses taken may point at not-yet-disassembled code.
                let mut new_roots = roots.clone();
                new_roots.extend(indirect_targets.iter().copied());
                block_map = blocks::disassemble_cached(code, base, &new_roots, &mut cache);
                iterations = 1;
            }
            IndirectResolution::ActiveAddressTaken => {
                // Fixpoint: reachable blocks → active addresses taken →
                // new indirect edges → possibly more reachable blocks.
                loop {
                    iterations += 1;
                    let (succs, _preds, _stubs) =
                        edges::build(&block_map, functions, &indirect_targets);
                    let reachable = edges::reachable_from(entries, &block_map, &succs);
                    let active =
                        ataken::scan_reachable(&block_map, &reachable, base, code.len() as u64);
                    if active == indirect_targets {
                        break;
                    }
                    indirect_targets = active;
                    let mut new_roots = roots.clone();
                    new_roots.extend(indirect_targets.iter().copied());
                    block_map = blocks::disassemble_cached(code, base, &new_roots, &mut cache);
                    if iterations > 64 {
                        break; // defensive bound; fixpoint is monotone
                    }
                }
            }
        }

        let (succs, preds, plt_stubs) = edges::build(&block_map, functions, &indirect_targets);
        let reachable = edges::reachable_from(entries, &block_map, &succs);

        let instructions = block_map.values().map(|b| b.insns.len()).sum();
        let stats = CfgStats {
            blocks: block_map.len(),
            instructions,
            ataken_iterations: iterations,
            addresses_taken: indirect_targets.len(),
        };

        Cfg {
            blocks: block_map,
            succs,
            preds,
            functions: functions.to_vec(),
            entries: entries.to_vec(),
            reachable,
            addresses_taken: indirect_targets,
            plt_stubs,
            stats,
        }
    }
}

/// Returns the GOT slot address if `block` is a PLT stub
/// (`jmp [rip+disp]` as its only real instruction).
pub(crate) fn plt_stub_got_slot(block: &BasicBlock) -> Option<u64> {
    let insn = block
        .insns
        .iter()
        .find(|i| !matches!(i.op, Op::Endbr64 | Op::Nop))?;
    match insn.op {
        Op::Jmp(Target::Mem(mem)) if mem.rip_relative => mem.rip_target(insn.addr, insn.len),
        _ => None,
    }
}

/// Extracts the RIP-relative `lea` target of an instruction, if any.
pub(crate) fn lea_target(insn: &bside_x86::Instruction) -> Option<u64> {
    match insn.op {
        Op::Lea { addr, .. } if addr.rip_relative => addr.rip_target(insn.addr, insn.len),
        // `movabs reg, imm64` of a code address is the non-PIC equivalent.
        Op::MovImm64 { imm, .. } => Some(imm),
        Op::Mov {
            src: bside_x86::Operand::Imm(imm),
            ..
        } if imm > 0 => Some(imm as u64),
        _ => None,
    }
}

/// Convenience: is this a RIP-relative memory operand?
#[allow(dead_code)]
pub(crate) fn is_rip_mem(mem: &Mem) -> bool {
    mem.rip_relative
}
