//! Address-taken scanning (§4.3).
//!
//! An *address taken* is a code address used as the operand of an
//! address-forming instruction — on x86-64, `lea reg, [rip+disp]` in PIC
//! code, or an immediate code address moved into a register in non-PIC
//! code. These mark function-pointer creation sites; the CFG heuristic
//! resolves every indirect branch to the set of addresses taken.

use crate::blocks::BasicBlock;
use crate::lea_target;
use std::collections::{BTreeMap, BTreeSet};

/// Scans every decoded block for addresses taken that land inside the
/// text range (SysFilter's plain variant).
pub(crate) fn scan(blocks: &BTreeMap<u64, BasicBlock>, base: u64, text_len: u64) -> BTreeSet<u64> {
    scan_filtered(blocks.values(), base, text_len)
}

/// Scans only blocks in `reachable` (B-Side's *active* variant).
pub(crate) fn scan_reachable(
    blocks: &BTreeMap<u64, BasicBlock>,
    reachable: &BTreeSet<u64>,
    base: u64,
    text_len: u64,
) -> BTreeSet<u64> {
    scan_filtered(
        reachable.iter().filter_map(|s| blocks.get(s)),
        base,
        text_len,
    )
}

fn scan_filtered<'a>(
    blocks: impl Iterator<Item = &'a BasicBlock>,
    base: u64,
    text_len: u64,
) -> BTreeSet<u64> {
    let end = base + text_len;
    let mut taken = BTreeSet::new();
    for block in blocks {
        for insn in &block.insns {
            if let Some(target) = lea_target(insn) {
                if target >= base && target < end {
                    taken.insert(target);
                }
            }
        }
    }
    taken
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::disassemble;
    use bside_x86::{Assembler, Reg};

    #[test]
    fn lea_of_code_address_is_taken() {
        let mut a = Assembler::new(0x1000);
        let f = a.new_label();
        a.lea_riplabel(Reg::Rdi, f);
        a.ret();
        a.bind(f).unwrap();
        a.ret();
        let code = a.finish().unwrap();
        let len = code.len() as u64;
        let blocks = disassemble(&code, 0x1000, &[0x1000].into_iter().collect());
        let taken = scan(&blocks, 0x1000, len);
        assert_eq!(taken.len(), 1);
        assert_eq!(taken.iter().next(), Some(&0x1008)); // lea(7) + ret(1)
    }

    #[test]
    fn lea_of_data_address_is_not_taken() {
        let mut a = Assembler::new(0x1000);
        let data = a.new_label();
        a.bind_at(data, 0x20_0000).unwrap(); // outside text
        a.lea_riplabel(Reg::Rdi, data);
        a.ret();
        let code = a.finish().unwrap();
        let len = code.len() as u64;
        let blocks = disassemble(&code, 0x1000, &[0x1000].into_iter().collect());
        assert!(scan(&blocks, 0x1000, len).is_empty());
    }

    #[test]
    fn movabs_code_immediate_is_taken() {
        // Non-PIC function pointer: movabs rdi, 0x1005.
        let mut a = Assembler::new(0x1000);
        a.mov_reg_imm64(Reg::Rdi, 0x100b);
        a.ret();
        a.ret(); // 0x100b
        let code = a.finish().unwrap();
        let len = code.len() as u64;
        let blocks = disassemble(&code, 0x1000, &[0x1000].into_iter().collect());
        let taken = scan(&blocks, 0x1000, len);
        assert!(taken.contains(&0x100b));
    }

    #[test]
    fn reachable_scan_ignores_dead_blocks() {
        let mut a = Assembler::new(0x1000);
        let f = a.new_label();
        let dead = a.new_label();
        a.ret(); // entry block: no lea
        a.bind(dead).unwrap();
        a.lea_riplabel(Reg::Rdi, f); // dead code holding the only lea
        a.ret();
        a.bind(f).unwrap();
        a.ret();
        let code = a.finish().unwrap();
        let len = code.len() as u64;
        let blocks = disassemble(&code, 0x1000, &[0x1000, 0x1001].into_iter().collect());
        let all = scan(&blocks, 0x1000, len);
        assert_eq!(all.len(), 1, "plain scan sees the dead lea");
        let reachable: BTreeSet<u64> = [0x1000].into_iter().collect();
        let active = scan_reachable(&blocks, &reachable, 0x1000, len);
        assert!(active.is_empty(), "active scan does not");
    }
}
