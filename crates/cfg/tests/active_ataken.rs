//! Integration tests for CFG recovery, centred on the active-address-taken
//! refinement of §4.3 (Fig. 4): only `lea`s reachable from the entry point
//! resolve indirect branches, iterated to a fixpoint.

use bside_cfg::{Cfg, CfgOptions, FunctionSym, IndirectResolution};
use bside_x86::{Assembler, Reg};

/// Builds the Fig. 4 style program:
///
/// ```text
/// entry:   lea rbx, [f1]; jmp *rbx            (f1 is actively taken)
/// f1:      lea rbx, [f2]; jmp *rbx            (f2 becomes active in iter 2)
/// f2:      syscall(39); ret
/// dead:    lea rbx, [f3]; ret                 (never reachable)
/// f3:      syscall(59); ret                   (must stay unreachable)
/// ```
fn fig4_program() -> (Vec<u8>, Vec<FunctionSym>, [u64; 5]) {
    let base = 0x1000;
    let mut a = Assembler::new(base);
    let f1 = a.new_label();
    let f2 = a.new_label();
    let f3 = a.new_label();

    let entry = a.cursor();
    a.lea_riplabel(Reg::Rbx, f1);
    a.jmp_reg(Reg::Rbx);

    let f1_addr = a.cursor();
    a.bind(f1).unwrap();
    a.lea_riplabel(Reg::Rbx, f2);
    a.jmp_reg(Reg::Rbx);

    let f2_addr = a.cursor();
    a.bind(f2).unwrap();
    a.mov_reg_imm32(Reg::Rax, 39);
    a.syscall();
    a.ret();

    let dead_addr = a.cursor();
    a.lea_riplabel(Reg::Rbx, f3);
    a.ret();

    let f3_addr = a.cursor();
    a.bind(f3).unwrap();
    a.mov_reg_imm32(Reg::Rax, 59);
    a.syscall();
    a.ret();

    let code = a.finish().unwrap();
    let funcs = vec![
        FunctionSym {
            name: "_start".into(),
            entry,
            size: f1_addr - entry,
        },
        FunctionSym {
            name: "f1".into(),
            entry: f1_addr,
            size: f2_addr - f1_addr,
        },
        FunctionSym {
            name: "f2".into(),
            entry: f2_addr,
            size: dead_addr - f2_addr,
        },
        FunctionSym {
            name: "dead".into(),
            entry: dead_addr,
            size: f3_addr - dead_addr,
        },
        FunctionSym {
            name: "f3".into(),
            entry: f3_addr,
            size: 0,
        },
    ];
    (code, funcs, [entry, f1_addr, f2_addr, dead_addr, f3_addr])
}

#[test]
fn active_ataken_reaches_chained_function_pointers() {
    let (code, funcs, [entry, f1, f2, _dead, _f3]) = fig4_program();
    let cfg = Cfg::build(&code, 0x1000, &[entry], &funcs, &CfgOptions::default());

    // The fixpoint needs ≥2 iterations: f2's lea only becomes reachable
    // after f1 is resolved as an indirect target.
    assert!(cfg.stats().ataken_iterations >= 2, "{:?}", cfg.stats());
    assert!(cfg.addresses_taken().contains(&f1));
    assert!(cfg.addresses_taken().contains(&f2));

    let reachable_funcs: Vec<&str> = cfg
        .reachable_functions()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    assert!(reachable_funcs.contains(&"f2"));
    assert!(!reachable_funcs.contains(&"dead"));
    assert!(
        !reachable_funcs.contains(&"f3"),
        "dead lea must not activate f3"
    );

    // Only f2's syscall is reachable.
    assert_eq!(cfg.syscall_sites().len(), 1);
    assert_eq!(cfg.all_syscall_sites().len(), 2);
}

#[test]
fn plain_ataken_overapproximates_dead_leas() {
    let (code, funcs, [entry, _f1, _f2, _dead, f3]) = fig4_program();
    let opts = CfgOptions {
        indirect: IndirectResolution::AddressTaken,
    };
    let cfg = Cfg::build(&code, 0x1000, &[entry], &funcs, &opts);

    // SysFilter-style plain scan also takes the dead lea's target, so both
    // syscalls become reachable: strictly more conservative.
    assert!(cfg.addresses_taken().contains(&f3));
    assert_eq!(cfg.syscall_sites().len(), 2);
}

#[test]
fn no_resolution_misses_indirect_code() {
    let (code, funcs, [entry, ..]) = fig4_program();
    let opts = CfgOptions {
        indirect: IndirectResolution::None,
    };
    let cfg = Cfg::build(&code, 0x1000, &[entry], &funcs, &opts);

    // Without indirect resolution nothing past `jmp *rbx` is reachable:
    // the false-negative shape static tools must avoid.
    assert_eq!(cfg.syscall_sites().len(), 0);
}

#[test]
fn active_is_subset_of_plain() {
    let (code, funcs, [entry, ..]) = fig4_program();
    let active = Cfg::build(&code, 0x1000, &[entry], &funcs, &CfgOptions::default());
    let plain = Cfg::build(
        &code,
        0x1000,
        &[entry],
        &funcs,
        &CfgOptions {
            indirect: IndirectResolution::AddressTaken,
        },
    );
    assert!(active.addresses_taken().is_subset(plain.addresses_taken()));
    assert!(active.addresses_taken().len() < plain.addresses_taken().len());
}

#[test]
fn function_of_resolves_by_range() {
    let (code, funcs, [entry, f1, ..]) = fig4_program();
    let cfg = Cfg::build(&code, 0x1000, &[entry], &funcs, &CfgOptions::default());
    assert_eq!(cfg.function_of(entry).unwrap().name, "_start");
    assert_eq!(cfg.function_of(f1 + 1).unwrap().name, "f1");
    assert!(cfg.function_of(0x500).is_none());
}

#[test]
fn stats_count_blocks_and_instructions() {
    let (code, funcs, [entry, ..]) = fig4_program();
    let cfg = Cfg::build(&code, 0x1000, &[entry], &funcs, &CfgOptions::default());
    let s = cfg.stats();
    assert!(s.blocks >= 5);
    assert!(s.instructions > s.blocks);
    assert_eq!(s.addresses_taken, cfg.addresses_taken().len());
}
