//! Structural CFG invariants over generated corpus binaries: these hold
//! for *every* input or downstream analyses (symbolic search, phase
//! automaton) silently break.

use bside_cfg::{Cfg, CfgOptions, EdgeKind, FunctionSym, IndirectResolution};
use bside_gen::corpus::corpus_with_size;

fn cfgs_of_corpus(seed: u64) -> Vec<(String, Cfg)> {
    let corpus = corpus_with_size(seed, 4, 4, 3);
    let mut out = Vec::new();
    for binary in &corpus.binaries {
        let elf = &binary.program.elf;
        let (text, vaddr) = elf.text().expect(".text");
        let funcs: Vec<FunctionSym> = elf
            .function_symbols()
            .into_iter()
            .map(|s| FunctionSym {
                name: s.name.clone(),
                entry: s.value,
                size: s.size,
            })
            .collect();
        let cfg = Cfg::build(
            text,
            vaddr,
            &[elf.entry_point()],
            &funcs,
            &CfgOptions::default(),
        );
        out.push((binary.program.spec.name.clone(), cfg));
    }
    out
}

#[test]
fn blocks_are_disjoint_and_sorted() {
    for (name, cfg) in cfgs_of_corpus(101) {
        let mut prev_end = 0u64;
        for (&start, block) in cfg.blocks() {
            assert_eq!(start, block.start, "{name}");
            assert!(
                start >= prev_end,
                "{name}: block {start:#x} overlaps previous"
            );
            assert!(!block.insns.is_empty(), "{name}: empty block {start:#x}");
            assert!(block.end() > start, "{name}");
            prev_end = block.end();
        }
    }
}

#[test]
fn preds_are_exact_inverse_of_succs() {
    for (name, cfg) in cfgs_of_corpus(102) {
        for &from in cfg.blocks().keys() {
            for &(to, kind) in cfg.succs(from) {
                assert!(
                    cfg.preds(to).contains(&(from, kind)),
                    "{name}: edge {from:#x}->{to:#x} ({kind:?}) missing inverse"
                );
            }
        }
        for &to in cfg.blocks().keys() {
            for &(from, kind) in cfg.preds(to) {
                assert!(
                    cfg.succs(from).contains(&(to, kind)),
                    "{name}: pred {from:#x}->{to:#x} ({kind:?}) missing forward edge"
                );
            }
        }
    }
}

#[test]
fn edges_land_on_block_starts() {
    for (name, cfg) in cfgs_of_corpus(103) {
        for &from in cfg.blocks().keys() {
            for &(to, _) in cfg.succs(from) {
                assert!(
                    cfg.block(to).is_some(),
                    "{name}: edge into non-block {to:#x}"
                );
            }
        }
    }
}

#[test]
fn block_containing_agrees_with_block_ranges() {
    for (name, cfg) in cfgs_of_corpus(104) {
        for (&start, block) in cfg.blocks() {
            for insn in &block.insns {
                assert_eq!(
                    cfg.block_containing(insn.addr),
                    Some(start),
                    "{name}: {:#x} not attributed to its block",
                    insn.addr
                );
            }
            assert_ne!(
                cfg.block_containing(block.end() - 1),
                None,
                "{name}: last byte address resolves"
            );
        }
    }
}

#[test]
fn reachable_blocks_exist_and_include_entry() {
    for (name, cfg) in cfgs_of_corpus(105) {
        for &b in cfg.reachable() {
            assert!(cfg.block(b).is_some(), "{name}");
        }
        let entry_block = cfg
            .block_containing(cfg.entries()[0])
            .expect("entry decodes");
        assert!(cfg.reachable().contains(&entry_block), "{name}");
    }
}

#[test]
fn active_ataken_is_subset_of_plain_on_corpus() {
    let corpus = corpus_with_size(106, 4, 0, 0);
    for binary in &corpus.binaries {
        let elf = &binary.program.elf;
        let (text, vaddr) = elf.text().expect(".text");
        let funcs: Vec<FunctionSym> = elf
            .function_symbols()
            .into_iter()
            .map(|s| FunctionSym {
                name: s.name.clone(),
                entry: s.value,
                size: s.size,
            })
            .collect();
        let active = Cfg::build(
            text,
            vaddr,
            &[elf.entry_point()],
            &funcs,
            &CfgOptions::default(),
        );
        let plain = Cfg::build(
            text,
            vaddr,
            &[elf.entry_point()],
            &funcs,
            &CfgOptions {
                indirect: IndirectResolution::AddressTaken,
            },
        );
        assert!(
            active.addresses_taken().is_subset(plain.addresses_taken()),
            "{}",
            binary.program.spec.name
        );
        // Reachable sites under active resolution never exceed plain.
        assert!(
            active.syscall_sites().len() <= plain.syscall_sites().len(),
            "{}",
            binary.program.spec.name
        );
    }
}

#[test]
fn syscall_sites_are_reachable_subset_of_all_sites() {
    for (name, cfg) in cfgs_of_corpus(107) {
        let reachable = cfg.syscall_sites();
        let all = cfg.all_syscall_sites();
        assert!(reachable.len() <= all.len(), "{name}");
        for site in &reachable {
            assert!(all.contains(site), "{name}");
            let b = cfg.block_containing(*site).expect("site in a block");
            assert!(cfg.reachable().contains(&b), "{name}");
        }
    }
}

#[test]
fn return_edges_pair_with_call_edges() {
    // Every Return edge's destination must also be the FallThrough target
    // of some call block (the invariant that makes skipping Return edges
    // in reachability lossless).
    for (name, cfg) in cfgs_of_corpus(108) {
        for &from in cfg.blocks().keys() {
            for &(to, kind) in cfg.succs(from) {
                if kind != EdgeKind::Return {
                    continue;
                }
                let has_call_fallthrough = cfg.preds(to).iter().any(|&(p, k)| {
                    k == EdgeKind::FallThrough && {
                        cfg.block(p)
                            .is_some_and(|b| matches!(b.terminator().op, bside_x86::Op::Call(_)))
                    }
                });
                assert!(
                    has_call_fallthrough,
                    "{name}: return edge {from:#x}->{to:#x} without a call fall-through"
                );
            }
        }
    }
}
