//! Property tests: everything the builder emits, the parser reads back.
//!
//! The build environment has no registry access, so instead of proptest
//! these properties run over seeded pseudo-random inputs (64 cases per
//! test; failures print the case index for replay).

use bside_elf::{Elf, ElfBuilder, ElfKind, PltReloc, SymbolSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn kind(rng: &mut SmallRng) -> ElfKind {
    match rng.gen_range(0..3) {
        0 => ElfKind::Executable,
        1 => ElfKind::PieExecutable,
        _ => ElfKind::SharedObject,
    }
}

fn random_bytes(rng: &mut SmallRng, lo: usize, hi: usize) -> Vec<u8> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| rng.gen_range(0u32..256) as u8).collect()
}

#[test]
fn text_and_symbols_round_trip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xE1F0 + case);
        let kind = kind(&mut rng);
        let text = random_bytes(&mut rng, 1, 4096);
        let nsyms = rng.gen_range(0usize..24);

        let text_vaddr = 0x401000u64;
        let mut b = ElfBuilder::new(kind);
        b.text(text.clone(), text_vaddr);
        if matches!(kind, ElfKind::Executable | ElfKind::PieExecutable) {
            b.entry(text_vaddr);
        }
        let mut expected = Vec::new();
        for i in 0..nsyms {
            let addr = text_vaddr + (i as u64 % text.len() as u64);
            let name = format!("fn_{i}");
            expected.push((name.clone(), addr));
            b.symbol(SymbolSpec::function(name, addr, 1));
        }

        let image = b.build().expect("build");
        let elf = Elf::parse(&image).expect("parse");

        let (got_text, got_vaddr) = elf.text().expect(".text");
        assert_eq!(got_text, &text[..], "case {case}");
        assert_eq!(got_vaddr, text_vaddr, "case {case}");

        let funcs = elf.function_symbols();
        assert_eq!(funcs.len(), expected.len(), "case {case}");
        for (sym, (name, addr)) in funcs.iter().zip(expected.iter()) {
            assert_eq!(&sym.name, name, "case {case}");
            assert_eq!(sym.value, *addr, "case {case}");
        }
    }
}

#[test]
fn dynamic_metadata_round_trips() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD1A0 + case);
        let nlibs = rng.gen_range(0usize..5);
        let libs: Vec<String> = (0..nlibs)
            .map(|_| {
                let len = rng.gen_range(1usize..13);
                let name: String = (0..len)
                    .map(|_| (b'a' + rng.gen_range(0u32..26) as u8) as char)
                    .collect();
                format!("{name}.so")
            })
            .collect();
        let nimports = rng.gen_range(0usize..16);

        let mut b = ElfBuilder::new(ElfKind::PieExecutable);
        b.text(vec![0xc3; 64], 0x1000).entry(0x1000);
        for lib in &libs {
            b.needed(lib.clone());
        }
        let got_base = 0x3000u64;
        b.got(got_base, (nimports as u64) * 8);
        let mut imports = Vec::new();
        for i in 0..nimports {
            let name = format!("import_{i}");
            imports.push(name.clone());
            b.plt_reloc(PltReloc {
                got_slot: got_base + 8 * i as u64,
                symbol: name,
            });
        }
        // A dynamic image needs at least one of: needed / plt / export.
        if libs.is_empty() && nimports == 0 {
            b.symbol(SymbolSpec::exported_function("anchor", 0x1000, 1));
        }

        let image = b.build().expect("build");
        let elf = Elf::parse(&image).expect("parse");

        assert!(elf.is_dynamic(), "case {case}");
        assert_eq!(elf.needed_libraries().to_vec(), libs, "case {case}");
        let relocs = elf.plt_relocations();
        assert_eq!(relocs.len(), imports.len(), "case {case}");
        for (r, name) in relocs.iter().zip(imports.iter()) {
            assert_eq!(&r.symbol_name, name, "case {case}");
        }
        // Every import shows up as an undefined dynamic symbol.
        for name in &imports {
            assert!(
                elf.dynamic_symbols()
                    .iter()
                    .any(|s| &s.name == name && s.is_undefined()),
                "case {case}: missing undefined dynsym {name}"
            );
        }
    }
}

#[test]
fn arbitrary_bytes_never_panic() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF422 + case);
        let bytes = random_bytes(&mut rng, 0, 2048);
        let _ = Elf::parse(&bytes);
    }
    let _ = Elf::parse(&[]);
}

#[test]
fn elf_prefixed_garbage_never_panics() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x6A4B + case);
        let mut bytes = b"\x7fELF\x02\x01\x01".to_vec();
        bytes.extend(random_bytes(&mut rng, 0, 2048));
        let _ = Elf::parse(&bytes);
    }
}
