//! Property tests: everything the builder emits, the parser reads back.

use bside_elf::{Elf, ElfBuilder, ElfKind, PltReloc, SymbolSpec};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = ElfKind> {
    prop_oneof![
        Just(ElfKind::Executable),
        Just(ElfKind::PieExecutable),
        Just(ElfKind::SharedObject),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_and_symbols_round_trip(
        kind in kind_strategy(),
        text in prop::collection::vec(any::<u8>(), 1..4096),
        nsyms in 0usize..24,
    ) {
        let text_vaddr = 0x401000u64;
        let mut b = ElfBuilder::new(kind);
        b.text(text.clone(), text_vaddr);
        if matches!(kind, ElfKind::Executable | ElfKind::PieExecutable) {
            b.entry(text_vaddr);
        }
        let mut expected = Vec::new();
        for i in 0..nsyms {
            let addr = text_vaddr + (i as u64 % text.len() as u64);
            let name = format!("fn_{i}");
            expected.push((name.clone(), addr));
            b.symbol(SymbolSpec::function(name, addr, 1));
        }

        let image = b.build().expect("build");
        let elf = Elf::parse(&image).expect("parse");

        let (got_text, got_vaddr) = elf.text().expect(".text");
        prop_assert_eq!(got_text, &text[..]);
        prop_assert_eq!(got_vaddr, text_vaddr);

        let funcs = elf.function_symbols();
        prop_assert_eq!(funcs.len(), expected.len());
        for (sym, (name, addr)) in funcs.iter().zip(expected.iter()) {
            prop_assert_eq!(&sym.name, name);
            prop_assert_eq!(sym.value, *addr);
        }
    }

    #[test]
    fn dynamic_metadata_round_trips(
        libs in prop::collection::vec("[a-z]{1,12}\\.so", 0..5),
        nimports in 0usize..16,
    ) {
        let mut b = ElfBuilder::new(ElfKind::PieExecutable);
        b.text(vec![0xc3; 64], 0x1000).entry(0x1000);
        for lib in &libs {
            b.needed(lib.clone());
        }
        let got_base = 0x3000u64;
        b.got(got_base, (nimports as u64) * 8);
        let mut imports = Vec::new();
        for i in 0..nimports {
            let name = format!("import_{i}");
            imports.push(name.clone());
            b.plt_reloc(PltReloc { got_slot: got_base + 8 * i as u64, symbol: name });
        }
        // A dynamic image needs at least one of: needed / plt / export.
        if libs.is_empty() && nimports == 0 {
            b.symbol(SymbolSpec::exported_function("anchor", 0x1000, 1));
        }

        let image = b.build().expect("build");
        let elf = Elf::parse(&image).expect("parse");

        prop_assert!(elf.is_dynamic());
        prop_assert_eq!(elf.needed_libraries().to_vec(), libs);
        let relocs = elf.plt_relocations();
        prop_assert_eq!(relocs.len(), imports.len());
        for (r, name) in relocs.iter().zip(imports.iter()) {
            prop_assert_eq!(&r.symbol_name, name);
        }
        // Every import shows up as an undefined dynamic symbol.
        for name in &imports {
            prop_assert!(
                elf.dynamic_symbols().iter().any(|s| &s.name == name && s.is_undefined()),
                "missing undefined dynsym {}", name
            );
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Elf::parse(&bytes);
    }

    #[test]
    fn elf_prefixed_garbage_never_panics(tail in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut bytes = b"\x7fELF\x02\x01\x01".to_vec();
        bytes.extend(tail);
        let _ = Elf::parse(&bytes);
    }
}
