//! ELF64 object-file reader and writer.
//!
//! B-Side consumes x86-64 ELF executables and shared objects without any
//! access to sources (§4.1 of the paper), so the very first substrate it
//! needs is an ELF parser. This crate provides:
//!
//! * [`Elf`] / [`Elf::parse`] — a reader for the structures the analysis
//!   needs: file/program/section headers, `.symtab` and `.dynsym` symbols,
//!   the dynamic section (`DT_NEEDED` dependencies), and PLT relocations
//!   (used to resolve calls into shared libraries);
//! * [`ElfBuilder`] — a writer used by the synthetic-corpus generator
//!   (`bside-gen`) to emit well-formed static executables, dynamically
//!   linked executables, and shared objects.
//!
//! The writer and reader round-trip: everything `ElfBuilder` emits,
//! `Elf::parse` reads back structurally identical (see the property tests).
//!
//! # Examples
//!
//! ```
//! use bside_elf::{Elf, ElfBuilder, ElfKind, SymbolSpec};
//!
//! let image = ElfBuilder::new(ElfKind::Executable)
//!     .text(vec![0x0f, 0x05, 0xc3], 0x401000) // syscall; ret
//!     .entry(0x401000)
//!     .symbol(SymbolSpec::function("_start", 0x401000, 3))
//!     .build()?;
//!
//! let elf = Elf::parse(&image)?;
//! assert_eq!(elf.entry_point(), 0x401000);
//! let (text, vaddr) = elf.text().expect("has .text");
//! assert_eq!(vaddr, 0x401000);
//! assert_eq!(text, &[0x0f, 0x05, 0xc3]);
//! # Ok::<(), bside_elf::ElfError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod read;
mod types;
mod write;

pub use read::{Elf, Section};
pub use types::{
    Dyn, FileHeader, ProgramHeader, Rela, SectionHeader, Symbol, DT_NEEDED, DT_NULL, DT_PLTRELSZ,
    DT_STRTAB, DT_SYMTAB, ET_DYN, ET_EXEC, PT_DYNAMIC, PT_LOAD, R_X86_64_GLOB_DAT,
    R_X86_64_JUMP_SLOT, SHT_DYNAMIC, SHT_DYNSYM, SHT_NOBITS, SHT_NULL, SHT_PROGBITS, SHT_RELA,
    SHT_STRTAB, SHT_SYMTAB, STB_GLOBAL, STB_LOCAL, STT_FUNC, STT_NOTYPE, STT_OBJECT,
};
pub use write::{ElfBuilder, ElfKind, PltReloc, SymbolSpec};

use std::fmt;

/// Errors produced while parsing an ELF image.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ElfError {
    /// The image is smaller than the structure being read requires.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Byte offset at which the read was attempted.
        offset: usize,
    },
    /// The magic bytes are not `\x7fELF`.
    BadMagic,
    /// The file is not 64-bit little-endian ELF for x86-64.
    UnsupportedFormat(&'static str),
    /// An offset/size pair points outside the image.
    OutOfBounds {
        /// What the pointer was for.
        what: &'static str,
    },
    /// A string table index does not point at a NUL-terminated string.
    BadString,
    /// A structural invariant is violated (e.g. entry size mismatch).
    Malformed(&'static str),
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::Truncated { what, offset } => {
                write!(
                    f,
                    "truncated ELF image while reading {what} at offset {offset:#x}"
                )
            }
            ElfError::BadMagic => f.write_str("missing ELF magic"),
            ElfError::UnsupportedFormat(what) => write!(f, "unsupported ELF format: {what}"),
            ElfError::OutOfBounds { what } => write!(f, "{what} points outside the image"),
            ElfError::BadString => f.write_str("invalid string table reference"),
            ElfError::Malformed(what) => write!(f, "malformed ELF: {what}"),
        }
    }
}

impl std::error::Error for ElfError {}
