//! ELF64 emission.
//!
//! The builder produces well-formed ELF64 images for the three shapes the
//! B-Side evaluation needs (§5.2: 231 static executables, 326 dynamic
//! executables, 59 shared libraries):
//!
//! * [`ElfKind::Executable`] — non-PIC static executable (`ET_EXEC`); the
//!   shape SysFilter rejects (§5.2 "its failure is due to its lack of
//!   support for non-PIC binaries");
//! * [`ElfKind::PieExecutable`] — position-independent executable
//!   (`ET_DYN` + entry point);
//! * [`ElfKind::SharedObject`] — shared library (`ET_DYN`, exports).

use crate::types::*;
use crate::ElfError;
use bytes::{BufMut, BytesMut};

/// The flavour of image to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElfKind {
    /// Non-PIC static executable (`ET_EXEC`).
    Executable,
    /// Position-independent executable (`ET_DYN` with an entry point).
    PieExecutable,
    /// Shared library (`ET_DYN`).
    SharedObject,
}

/// A symbol to place in the emitted tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolSpec {
    /// Symbol name.
    pub name: String,
    /// Value (virtual address for functions).
    pub value: u64,
    /// Size in bytes.
    pub size: u64,
    /// ELF symbol type (`STT_FUNC`, `STT_OBJECT`, …).
    pub sym_type: u8,
    /// ELF binding (`STB_LOCAL` / `STB_GLOBAL`).
    pub binding: u8,
    /// Also export through `.dynsym` (shared-library interface).
    pub export: bool,
}

impl SymbolSpec {
    /// A local function symbol (appears in `.symtab` only).
    pub fn function(name: impl Into<String>, addr: u64, size: u64) -> Self {
        SymbolSpec {
            name: name.into(),
            value: addr,
            size,
            sym_type: STT_FUNC,
            binding: STB_LOCAL,
            export: false,
        }
    }

    /// A global function symbol exported through `.dynsym` as well — one
    /// entry of a shared library's public interface.
    pub fn exported_function(name: impl Into<String>, addr: u64, size: u64) -> Self {
        SymbolSpec {
            name: name.into(),
            value: addr,
            size,
            sym_type: STT_FUNC,
            binding: STB_GLOBAL,
            export: true,
        }
    }

    /// A data object symbol.
    pub fn object(name: impl Into<String>, addr: u64, size: u64) -> Self {
        SymbolSpec {
            name: name.into(),
            value: addr,
            size,
            sym_type: STT_OBJECT,
            binding: STB_LOCAL,
            export: false,
        }
    }
}

/// A PLT relocation to emit in `.rela.plt`: an imported function plus the
/// GOT slot its PLT stub jumps through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PltReloc {
    /// Virtual address of the GOT slot (`r_offset`).
    pub got_slot: u64,
    /// Name of the imported function.
    pub symbol: String,
}

/// Builder for ELF64 images. See the crate-level example.
///
/// The builder is non-consuming: configuration methods take and return
/// `&mut self`, and [`ElfBuilder::build`] borrows the builder, so one
/// builder can stamp out variants.
#[derive(Debug, Clone)]
pub struct ElfBuilder {
    kind: ElfKind,
    text: Vec<u8>,
    text_vaddr: u64,
    rodata: Vec<u8>,
    rodata_vaddr: u64,
    entry: u64,
    symbols: Vec<SymbolSpec>,
    needed: Vec<String>,
    plt_relocs: Vec<PltReloc>,
    got_vaddr: u64,
    got_size: u64,
}

const PAGE: u64 = 0x1000;

impl ElfBuilder {
    /// Creates a builder for the given image kind.
    pub fn new(kind: ElfKind) -> Self {
        ElfBuilder {
            kind,
            text: Vec::new(),
            text_vaddr: 0,
            rodata: Vec::new(),
            rodata_vaddr: 0,
            entry: 0,
            symbols: Vec::new(),
            needed: Vec::new(),
            plt_relocs: Vec::new(),
            got_vaddr: 0,
            got_size: 0,
        }
    }

    /// Sets the `.text` contents and its virtual address.
    pub fn text(&mut self, bytes: Vec<u8>, vaddr: u64) -> &mut Self {
        self.text = bytes;
        self.text_vaddr = vaddr;
        self
    }

    /// Sets the `.rodata` contents and its virtual address.
    pub fn rodata(&mut self, bytes: Vec<u8>, vaddr: u64) -> &mut Self {
        self.rodata = bytes;
        self.rodata_vaddr = vaddr;
        self
    }

    /// Sets the entry point.
    pub fn entry(&mut self, vaddr: u64) -> &mut Self {
        self.entry = vaddr;
        self
    }

    /// Adds a symbol.
    pub fn symbol(&mut self, spec: SymbolSpec) -> &mut Self {
        self.symbols.push(spec);
        self
    }

    /// Adds a `DT_NEEDED` dependency on a shared library.
    pub fn needed(&mut self, lib: impl Into<String>) -> &mut Self {
        self.needed.push(lib.into());
        self
    }

    /// Adds a PLT relocation for an imported function.
    pub fn plt_reloc(&mut self, reloc: PltReloc) -> &mut Self {
        self.plt_relocs.push(reloc);
        self
    }

    /// Places the `.got.plt` section (writable, zero-filled).
    pub fn got(&mut self, vaddr: u64, size: u64) -> &mut Self {
        self.got_vaddr = vaddr;
        self.got_size = size;
        self
    }

    fn is_dynamic(&self) -> bool {
        !self.needed.is_empty()
            || !self.plt_relocs.is_empty()
            || self.symbols.iter().any(|s| s.export)
    }

    /// Emits the image.
    ///
    /// # Errors
    ///
    /// Returns [`ElfError::Malformed`] when the configuration is
    /// inconsistent: an entry point outside `.text` on an executable, a GOT
    /// requested without an address, or overlapping section ranges.
    pub fn build(&self) -> Result<Vec<u8>, ElfError> {
        let is_exec = matches!(self.kind, ElfKind::Executable | ElfKind::PieExecutable);
        if is_exec {
            let end = self.text_vaddr + self.text.len() as u64;
            if self.entry < self.text_vaddr || self.entry >= end {
                return Err(ElfError::Malformed("entry point outside .text"));
            }
        }
        let has_got = !self.plt_relocs.is_empty() || self.got_size > 0;
        if has_got && self.got_vaddr == 0 {
            return Err(ElfError::Malformed("GOT requested without an address"));
        }
        if !self.rodata.is_empty() && self.rodata_vaddr < self.text_vaddr + self.text.len() as u64 {
            return Err(ElfError::Malformed(".rodata overlaps .text"));
        }

        let dynamic = self.is_dynamic();

        // ---- string tables -------------------------------------------------
        let mut strtab = StrTab::new();
        for s in &self.symbols {
            strtab.intern(&s.name);
        }
        let mut dynstr = StrTab::new();
        for lib in &self.needed {
            dynstr.intern(lib);
        }
        let mut dynsyms: Vec<&SymbolSpec> = Vec::new();
        let exported: Vec<&SymbolSpec> = self.symbols.iter().filter(|s| s.export).collect();
        // Imported functions referenced by PLT relocations come first so the
        // relocation entries can index them.
        let mut import_names: Vec<&str> = self
            .plt_relocs
            .iter()
            .map(|r| r.symbol.as_str())
            .collect::<Vec<_>>();
        import_names.dedup();
        for name in &import_names {
            dynstr.intern(name);
        }
        for s in &exported {
            dynstr.intern(&s.name);
            dynsyms.push(s);
        }

        // ---- layout ---------------------------------------------------------
        // File: ehdr | phdrs | pad | .text | .rodata | pad | .got.plt |
        //       non-alloc tables | shstrtab | shdrs
        let phnum: u16 = {
            let mut n = 1; // RX LOAD
            if has_got {
                n += 1; // RW LOAD
            }
            if dynamic {
                n += 1; // PT_DYNAMIC
            }
            n
        };
        let text_off = PAGE as usize;
        let rodata_off = text_off + self.text.len();
        let got_off = align_up(rodata_off + self.rodata.len(), PAGE as usize);
        let got_len = if has_got {
            self.got_size.max(self.plt_relocs.len() as u64 * 8) as usize
        } else {
            0
        };
        let mut cursor = got_off + got_len;

        // Symbol table bytes (.symtab): null + all symbols.
        let symtab_off = cursor;
        let symtab_bytes = encode_symbols(
            self.symbols.iter(),
            |name| strtab.offset_of(name),
            self.section_index_for_symbols(),
        );
        cursor += symtab_bytes.len();
        let strtab_off = cursor;
        cursor += strtab.bytes.len();

        // Dynamic symbol table (.dynsym): null + imports + exports.
        let mut dynsym_bytes = Vec::new();
        let mut rela_bytes = Vec::new();
        let mut dynamic_bytes = Vec::new();
        let (dynsym_off, dynstr_off, rela_off, dynamic_off);
        if dynamic {
            let imports: Vec<SymbolSpec> = import_names
                .iter()
                .map(|&name| SymbolSpec {
                    name: name.to_string(),
                    value: 0,
                    size: 0,
                    sym_type: STT_FUNC,
                    binding: STB_GLOBAL,
                    export: false,
                })
                .collect();
            let all: Vec<&SymbolSpec> = imports.iter().chain(dynsyms.iter().copied()).collect();
            dynsym_bytes = encode_symbols(
                all.iter().copied(),
                |name| dynstr.offset_of(name),
                self.section_index_for_symbols(),
            );
            // Imports keep shndx = 0 (SHN_UNDEF): patch them back.
            for (i, _) in imports.iter().enumerate() {
                let entry = 24 * (i + 1); // skip null symbol
                dynsym_bytes[entry + 6] = 0;
                dynsym_bytes[entry + 7] = 0;
            }

            for reloc in &self.plt_relocs {
                let sym_index = 1 + import_names
                    .iter()
                    .position(|&n| n == reloc.symbol)
                    .expect("import interned above") as u64;
                rela_bytes.extend_from_slice(&reloc.got_slot.to_le_bytes());
                let r_info = (sym_index << 32) | R_X86_64_JUMP_SLOT as u64;
                rela_bytes.extend_from_slice(&r_info.to_le_bytes());
                rela_bytes.extend_from_slice(&0i64.to_le_bytes());
            }

            for lib in &self.needed {
                push_dyn(&mut dynamic_bytes, DT_NEEDED, dynstr.offset_of(lib) as u64);
            }
            push_dyn(&mut dynamic_bytes, DT_PLTRELSZ, rela_bytes.len() as u64);
            push_dyn(&mut dynamic_bytes, DT_STRTAB, 0);
            push_dyn(&mut dynamic_bytes, DT_SYMTAB, 0);
            push_dyn(&mut dynamic_bytes, DT_NULL, 0);

            dynsym_off = cursor;
            cursor += dynsym_bytes.len();
            dynstr_off = cursor;
            cursor += dynstr.bytes.len();
            rela_off = cursor;
            cursor += rela_bytes.len();
            dynamic_off = cursor;
            cursor += dynamic_bytes.len();
        } else {
            dynsym_off = 0;
            dynstr_off = 0;
            rela_off = 0;
            dynamic_off = 0;
        }

        // Section name table.
        let mut shstrtab = StrTab::new();
        let mut section_names = vec![".text"];
        if !self.rodata.is_empty() {
            section_names.push(".rodata");
        }
        if has_got {
            section_names.push(".got.plt");
        }
        section_names.push(".symtab");
        section_names.push(".strtab");
        if dynamic {
            section_names.extend([".dynsym", ".dynstr", ".rela.plt", ".dynamic"]);
        }
        section_names.push(".shstrtab");
        for n in &section_names {
            shstrtab.intern(n);
        }
        let shstrtab_off = cursor;
        cursor += shstrtab.bytes.len();
        let shoff = align_up(cursor, 8);

        // ---- section headers -------------------------------------------------
        let mut shdrs: Vec<SectionHeader> = vec![SectionHeader {
            sh_name: 0,
            sh_type: SHT_NULL,
            sh_flags: 0,
            sh_addr: 0,
            sh_offset: 0,
            sh_size: 0,
            sh_link: 0,
            sh_info: 0,
            sh_entsize: 0,
        }];
        let mut index_of = std::collections::HashMap::new();
        let push_section = |shdrs: &mut Vec<SectionHeader>,
                            index_of: &mut std::collections::HashMap<&'static str, u32>,
                            name: &'static str,
                            sh: SectionHeader| {
            index_of.insert(name, shdrs.len() as u32);
            shdrs.push(sh);
        };

        push_section(
            &mut shdrs,
            &mut index_of,
            ".text",
            SectionHeader {
                sh_name: shstrtab.offset_of(".text") as u32,
                sh_type: SHT_PROGBITS,
                sh_flags: 2 | 4, // ALLOC | EXECINSTR
                sh_addr: self.text_vaddr,
                sh_offset: text_off as u64,
                sh_size: self.text.len() as u64,
                sh_link: 0,
                sh_info: 0,
                sh_entsize: 0,
            },
        );
        if !self.rodata.is_empty() {
            push_section(
                &mut shdrs,
                &mut index_of,
                ".rodata",
                SectionHeader {
                    sh_name: shstrtab.offset_of(".rodata") as u32,
                    sh_type: SHT_PROGBITS,
                    sh_flags: 2,
                    sh_addr: self.rodata_vaddr,
                    sh_offset: rodata_off as u64,
                    sh_size: self.rodata.len() as u64,
                    sh_link: 0,
                    sh_info: 0,
                    sh_entsize: 0,
                },
            );
        }
        if has_got {
            push_section(
                &mut shdrs,
                &mut index_of,
                ".got.plt",
                SectionHeader {
                    sh_name: shstrtab.offset_of(".got.plt") as u32,
                    sh_type: SHT_PROGBITS,
                    sh_flags: 2 | 1, // ALLOC | WRITE
                    sh_addr: self.got_vaddr,
                    sh_offset: got_off as u64,
                    sh_size: got_len as u64,
                    sh_link: 0,
                    sh_info: 0,
                    sh_entsize: 8,
                },
            );
        }
        let symtab_index_placeholder = shdrs.len() as u32;
        push_section(
            &mut shdrs,
            &mut index_of,
            ".symtab",
            SectionHeader {
                sh_name: shstrtab.offset_of(".symtab") as u32,
                sh_type: SHT_SYMTAB,
                sh_flags: 0,
                sh_addr: 0,
                sh_offset: symtab_off as u64,
                sh_size: symtab_bytes.len() as u64,
                sh_link: symtab_index_placeholder + 1, // .strtab follows
                sh_info: 1,
                sh_entsize: 24,
            },
        );
        push_section(
            &mut shdrs,
            &mut index_of,
            ".strtab",
            SectionHeader {
                sh_name: shstrtab.offset_of(".strtab") as u32,
                sh_type: SHT_STRTAB,
                sh_flags: 0,
                sh_addr: 0,
                sh_offset: strtab_off as u64,
                sh_size: strtab.bytes.len() as u64,
                sh_link: 0,
                sh_info: 0,
                sh_entsize: 0,
            },
        );
        if dynamic {
            let dynsym_index = shdrs.len() as u32;
            push_section(
                &mut shdrs,
                &mut index_of,
                ".dynsym",
                SectionHeader {
                    sh_name: shstrtab.offset_of(".dynsym") as u32,
                    sh_type: SHT_DYNSYM,
                    sh_flags: 2,
                    sh_addr: 0,
                    sh_offset: dynsym_off as u64,
                    sh_size: dynsym_bytes.len() as u64,
                    sh_link: dynsym_index + 1, // .dynstr follows
                    sh_info: 1,
                    sh_entsize: 24,
                },
            );
            push_section(
                &mut shdrs,
                &mut index_of,
                ".dynstr",
                SectionHeader {
                    sh_name: shstrtab.offset_of(".dynstr") as u32,
                    sh_type: SHT_STRTAB,
                    sh_flags: 2,
                    sh_addr: 0,
                    sh_offset: dynstr_off as u64,
                    sh_size: dynstr.bytes.len() as u64,
                    sh_link: 0,
                    sh_info: 0,
                    sh_entsize: 0,
                },
            );
            push_section(
                &mut shdrs,
                &mut index_of,
                ".rela.plt",
                SectionHeader {
                    sh_name: shstrtab.offset_of(".rela.plt") as u32,
                    sh_type: SHT_RELA,
                    sh_flags: 2,
                    sh_addr: 0,
                    sh_offset: rela_off as u64,
                    sh_size: rela_bytes.len() as u64,
                    sh_link: dynsym_index,
                    sh_info: 0,
                    sh_entsize: 24,
                },
            );
            push_section(
                &mut shdrs,
                &mut index_of,
                ".dynamic",
                SectionHeader {
                    sh_name: shstrtab.offset_of(".dynamic") as u32,
                    sh_type: SHT_DYNAMIC,
                    sh_flags: 2 | 1,
                    sh_addr: 0,
                    sh_offset: dynamic_off as u64,
                    sh_size: dynamic_bytes.len() as u64,
                    sh_link: dynsym_index + 1,
                    sh_info: 0,
                    sh_entsize: 16,
                },
            );
        }
        push_section(
            &mut shdrs,
            &mut index_of,
            ".shstrtab",
            SectionHeader {
                sh_name: shstrtab.offset_of(".shstrtab") as u32,
                sh_type: SHT_STRTAB,
                sh_flags: 0,
                sh_addr: 0,
                sh_offset: shstrtab_off as u64,
                sh_size: shstrtab.bytes.len() as u64,
                sh_link: 0,
                sh_info: 0,
                sh_entsize: 0,
            },
        );
        let shstrndx = (shdrs.len() - 1) as u16;

        // ---- serialize --------------------------------------------------------
        let mut out = BytesMut::with_capacity(shoff + shdrs.len() * 64);
        out.put_slice(b"\x7fELF");
        out.put_u8(2); // ELFCLASS64
        out.put_u8(1); // little-endian
        out.put_u8(1); // EV_CURRENT
        out.put_slice(&[0u8; 9]);
        let e_type = match self.kind {
            ElfKind::Executable => ET_EXEC,
            ElfKind::PieExecutable | ElfKind::SharedObject => ET_DYN,
        };
        out.put_u16_le(e_type);
        out.put_u16_le(62); // EM_X86_64
        out.put_u32_le(1); // e_version
        out.put_u64_le(self.entry);
        out.put_u64_le(64); // e_phoff
        out.put_u64_le(shoff as u64);
        out.put_u32_le(0); // e_flags
        out.put_u16_le(64); // e_ehsize
        out.put_u16_le(56); // e_phentsize
        out.put_u16_le(phnum);
        out.put_u16_le(64); // e_shentsize
        out.put_u16_le(shdrs.len() as u16);
        out.put_u16_le(shstrndx);

        // Program headers.
        let put_phdr = |out: &mut BytesMut, ph: ProgramHeader| {
            out.put_u32_le(ph.p_type);
            out.put_u32_le(ph.p_flags);
            out.put_u64_le(ph.p_offset);
            out.put_u64_le(ph.p_vaddr);
            out.put_u64_le(ph.p_vaddr); // p_paddr
            out.put_u64_le(ph.p_filesz);
            out.put_u64_le(ph.p_memsz);
            out.put_u64_le(PAGE); // p_align
        };
        let rx_filesz = (rodata_off + self.rodata.len() - text_off) as u64;
        put_phdr(
            &mut out,
            ProgramHeader {
                p_type: PT_LOAD,
                p_flags: 5, // R+X
                p_offset: text_off as u64,
                p_vaddr: self.text_vaddr,
                p_filesz: rx_filesz,
                p_memsz: rx_filesz,
            },
        );
        if has_got {
            put_phdr(
                &mut out,
                ProgramHeader {
                    p_type: PT_LOAD,
                    p_flags: 6, // R+W
                    p_offset: got_off as u64,
                    p_vaddr: self.got_vaddr,
                    p_filesz: got_len as u64,
                    p_memsz: got_len as u64,
                },
            );
        }
        if dynamic {
            put_phdr(
                &mut out,
                ProgramHeader {
                    p_type: PT_DYNAMIC,
                    p_flags: 4,
                    p_offset: dynamic_off as u64,
                    p_vaddr: 0,
                    p_filesz: dynamic_bytes.len() as u64,
                    p_memsz: dynamic_bytes.len() as u64,
                },
            );
        }

        // Section bodies.
        pad_to(&mut out, text_off);
        out.put_slice(&self.text);
        out.put_slice(&self.rodata);
        pad_to(&mut out, got_off);
        out.put_slice(&vec![0u8; got_len]);
        out.put_slice(&symtab_bytes);
        out.put_slice(&strtab.bytes);
        if dynamic {
            out.put_slice(&dynsym_bytes);
            out.put_slice(&dynstr.bytes);
            out.put_slice(&rela_bytes);
            out.put_slice(&dynamic_bytes);
        }
        out.put_slice(&shstrtab.bytes);
        pad_to(&mut out, shoff);

        for sh in &shdrs {
            out.put_u32_le(sh.sh_name);
            out.put_u32_le(sh.sh_type);
            out.put_u64_le(sh.sh_flags);
            out.put_u64_le(sh.sh_addr);
            out.put_u64_le(sh.sh_offset);
            out.put_u64_le(sh.sh_size);
            out.put_u32_le(sh.sh_link);
            out.put_u32_le(sh.sh_info);
            out.put_u64_le(1); // sh_addralign
            out.put_u64_le(sh.sh_entsize);
        }

        Ok(out.to_vec())
    }

    /// Section index assigned to defined symbols: `.text` is always
    /// section 1 in the emitted layout.
    fn section_index_for_symbols(&self) -> u16 {
        1
    }
}

fn align_up(v: usize, align: usize) -> usize {
    v.div_ceil(align) * align
}

fn pad_to(out: &mut BytesMut, offset: usize) {
    assert!(
        out.len() <= offset,
        "layout overflow: {} > {offset}",
        out.len()
    );
    out.put_slice(&vec![0u8; offset - out.len()]);
}

fn push_dyn(bytes: &mut Vec<u8>, tag: i64, val: u64) {
    bytes.extend_from_slice(&tag.to_le_bytes());
    bytes.extend_from_slice(&val.to_le_bytes());
}

fn encode_symbols<'a>(
    symbols: impl Iterator<Item = &'a SymbolSpec>,
    offset_of: impl Fn(&str) -> usize,
    text_shndx: u16,
) -> Vec<u8> {
    let mut bytes = vec![0u8; 24]; // null symbol
    for s in symbols {
        bytes.extend_from_slice(&(offset_of(&s.name) as u32).to_le_bytes());
        bytes.push((s.binding << 4) | (s.sym_type & 0xf));
        bytes.push(0); // st_other
        bytes.extend_from_slice(&text_shndx.to_le_bytes());
        bytes.extend_from_slice(&s.value.to_le_bytes());
        bytes.extend_from_slice(&s.size.to_le_bytes());
    }
    bytes
}

#[derive(Debug, Default)]
struct StrTab {
    bytes: Vec<u8>,
    offsets: std::collections::HashMap<String, usize>,
}

impl StrTab {
    fn new() -> Self {
        StrTab {
            bytes: vec![0],
            offsets: std::collections::HashMap::new(),
        }
    }

    fn intern(&mut self, s: &str) -> usize {
        if let Some(&off) = self.offsets.get(s) {
            return off;
        }
        let off = self.bytes.len();
        self.bytes.extend_from_slice(s.as_bytes());
        self.bytes.push(0);
        self.offsets.insert(s.to_string(), off);
        off
    }

    fn offset_of(&self, s: &str) -> usize {
        self.offsets.get(s).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::Elf;

    #[test]
    fn static_executable_round_trip() {
        let image = ElfBuilder::new(ElfKind::Executable)
            .text(vec![0x90, 0x0f, 0x05, 0xc3], 0x401000)
            .entry(0x401001)
            .symbol(SymbolSpec::function("_start", 0x401000, 4))
            .build()
            .expect("build");
        let elf = Elf::parse(&image).expect("parse");
        assert_eq!(elf.header.e_type, ET_EXEC);
        assert!(!elf.is_pic());
        assert!(!elf.is_dynamic());
        assert_eq!(elf.entry_point(), 0x401001);
        assert_eq!(elf.text().unwrap().0, &[0x90, 0x0f, 0x05, 0xc3]);
        let syms = elf.function_symbols();
        assert_eq!(syms.len(), 1);
        assert_eq!(syms[0].name, "_start");
        assert_eq!(syms[0].value, 0x401000);
        assert_eq!(syms[0].size, 4);
    }

    #[test]
    fn dynamic_executable_round_trip() {
        let image = ElfBuilder::new(ElfKind::PieExecutable)
            .text(vec![0xc3; 16], 0x1000)
            .entry(0x1000)
            .needed("libfoo.so")
            .needed("libbar.so")
            .got(0x3000, 16)
            .plt_reloc(PltReloc {
                got_slot: 0x3000,
                symbol: "foo_read".into(),
            })
            .plt_reloc(PltReloc {
                got_slot: 0x3008,
                symbol: "bar_write".into(),
            })
            .build()
            .expect("build");
        let elf = Elf::parse(&image).expect("parse");
        assert!(elf.is_pic());
        assert!(elf.is_dynamic());
        assert_eq!(elf.needed_libraries(), &["libfoo.so", "libbar.so"]);
        let relocs = elf.plt_relocations();
        assert_eq!(relocs.len(), 2);
        assert_eq!(relocs[0].symbol_name, "foo_read");
        assert_eq!(relocs[0].r_offset, 0x3000);
        assert_eq!(relocs[0].r_type, R_X86_64_JUMP_SLOT);
        assert_eq!(relocs[1].symbol_name, "bar_write");
        // The imports are undefined dynsym entries.
        let undef: Vec<_> = elf
            .dynamic_symbols()
            .iter()
            .filter(|s| s.is_undefined() && !s.name.is_empty())
            .collect();
        assert_eq!(undef.len(), 2);
    }

    #[test]
    fn shared_object_exports() {
        let image = ElfBuilder::new(ElfKind::SharedObject)
            .text(vec![0xc3; 8], 0x1000)
            .symbol(SymbolSpec::exported_function("lib_write", 0x1000, 4))
            .symbol(SymbolSpec::exported_function("lib_read", 0x1004, 4))
            .symbol(SymbolSpec::function("internal", 0x1006, 2))
            .build()
            .expect("build");
        let elf = Elf::parse(&image).expect("parse");
        assert!(elf.is_pic());
        let exports = elf.exported_functions();
        let names: Vec<_> = exports.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["lib_write", "lib_read"]);
        // Internal symbol is in .symtab but not exported.
        assert_eq!(elf.function_symbols().len(), 3);
    }

    #[test]
    fn entry_outside_text_is_rejected() {
        let err = ElfBuilder::new(ElfKind::Executable)
            .text(vec![0xc3], 0x401000)
            .entry(0x500000)
            .build()
            .unwrap_err();
        assert!(matches!(err, ElfError::Malformed(_)));
    }

    #[test]
    fn shared_object_needs_no_entry() {
        let image = ElfBuilder::new(ElfKind::SharedObject)
            .text(vec![0xc3], 0x1000)
            .symbol(SymbolSpec::exported_function("f", 0x1000, 1))
            .build()
            .expect("build");
        let elf = Elf::parse(&image).expect("parse");
        assert_eq!(elf.entry_point(), 0);
    }

    #[test]
    fn rodata_round_trip() {
        let image = ElfBuilder::new(ElfKind::Executable)
            .text(vec![0xc3; 4], 0x401000)
            .rodata(vec![1, 2, 3], 0x401004)
            .entry(0x401000)
            .build()
            .expect("build");
        let elf = Elf::parse(&image).expect("parse");
        let ro = elf.section_by_name(".rodata").expect(".rodata");
        assert_eq!(ro.data, vec![1, 2, 3]);
        assert_eq!(ro.header.sh_addr, 0x401004);
    }

    #[test]
    fn rodata_overlapping_text_is_rejected() {
        let err = ElfBuilder::new(ElfKind::Executable)
            .text(vec![0xc3; 8], 0x401000)
            .rodata(vec![1], 0x401004)
            .entry(0x401000)
            .build()
            .unwrap_err();
        assert!(matches!(err, ElfError::Malformed(_)));
    }

    #[test]
    fn got_without_address_is_rejected() {
        let err = ElfBuilder::new(ElfKind::PieExecutable)
            .text(vec![0xc3], 0x1000)
            .entry(0x1000)
            .plt_reloc(PltReloc {
                got_slot: 0x3000,
                symbol: "f".into(),
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ElfError::Malformed(_)));
    }

    #[test]
    fn builder_is_reusable() {
        let mut b = ElfBuilder::new(ElfKind::Executable);
        b.text(vec![0xc3; 2], 0x401000).entry(0x401000);
        let a = b.build().expect("first");
        let c = b.build().expect("second");
        assert_eq!(a, c, "build is deterministic and non-consuming");
    }
}
