//! Raw ELF64 structures and constants.
//!
//! Field names follow the ELF specification (`e_*`, `p_*`, `sh_*`, `st_*`)
//! so they can be cross-checked against `readelf` output directly.

/// Relocatable/executable/shared type: executable (`ET_EXEC`).
pub const ET_EXEC: u16 = 2;
/// Shared object or PIE (`ET_DYN`).
pub const ET_DYN: u16 = 3;

/// Loadable program segment.
pub const PT_LOAD: u32 = 1;
/// Dynamic linking information segment.
pub const PT_DYNAMIC: u32 = 2;

/// Inactive section header.
pub const SHT_NULL: u32 = 0;
/// Program-defined contents.
pub const SHT_PROGBITS: u32 = 1;
/// Symbol table.
pub const SHT_SYMTAB: u32 = 2;
/// String table.
pub const SHT_STRTAB: u32 = 3;
/// Relocations with addends.
pub const SHT_RELA: u32 = 4;
/// Dynamic linking information.
pub const SHT_DYNAMIC: u32 = 6;
/// Section occupying no file space (e.g. `.bss`).
pub const SHT_NOBITS: u32 = 8;
/// Dynamic symbol table.
pub const SHT_DYNSYM: u32 = 11;

/// Local symbol binding.
pub const STB_LOCAL: u8 = 0;
/// Global symbol binding.
pub const STB_GLOBAL: u8 = 1;

/// Untyped symbol.
pub const STT_NOTYPE: u8 = 0;
/// Data object symbol.
pub const STT_OBJECT: u8 = 1;
/// Function symbol.
pub const STT_FUNC: u8 = 2;

/// End of the dynamic array.
pub const DT_NULL: i64 = 0;
/// Name of a needed shared library (offset into `.dynstr`).
pub const DT_NEEDED: i64 = 1;
/// Size in bytes of PLT relocations.
pub const DT_PLTRELSZ: i64 = 2;
/// Address of the dynamic string table.
pub const DT_STRTAB: i64 = 5;
/// Address of the dynamic symbol table.
pub const DT_SYMTAB: i64 = 6;

/// PLT jump-slot relocation (lazy-bound imported function).
pub const R_X86_64_JUMP_SLOT: u32 = 7;
/// GOT data relocation (imported data object).
pub const R_X86_64_GLOB_DAT: u32 = 6;

/// ELF file header (`Elf64_Ehdr`), minus the identification bytes that the
/// parser validates and discards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHeader {
    /// Object file type (`ET_EXEC`, `ET_DYN`, …).
    pub e_type: u16,
    /// Machine architecture; always `EM_X86_64` (62) for accepted files.
    pub e_machine: u16,
    /// Entry point virtual address.
    pub e_entry: u64,
    /// Program header table file offset.
    pub e_phoff: u64,
    /// Section header table file offset.
    pub e_shoff: u64,
    /// Number of program headers.
    pub e_phnum: u16,
    /// Number of section headers.
    pub e_shnum: u16,
    /// Section header string table index.
    pub e_shstrndx: u16,
}

/// Program header (`Elf64_Phdr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramHeader {
    /// Segment type (`PT_LOAD`, `PT_DYNAMIC`, …).
    pub p_type: u32,
    /// Segment flags (R=4, W=2, X=1).
    pub p_flags: u32,
    /// File offset of the segment.
    pub p_offset: u64,
    /// Virtual address of the segment.
    pub p_vaddr: u64,
    /// Size of the segment in the file.
    pub p_filesz: u64,
    /// Size of the segment in memory.
    pub p_memsz: u64,
}

impl ProgramHeader {
    /// `true` if the segment is mapped executable.
    pub fn is_executable(&self) -> bool {
        self.p_flags & 1 != 0
    }

    /// `true` if the segment is mapped writable.
    pub fn is_writable(&self) -> bool {
        self.p_flags & 2 != 0
    }
}

/// Section header (`Elf64_Shdr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionHeader {
    /// Offset of the section name in `.shstrtab`.
    pub sh_name: u32,
    /// Section type (`SHT_*`).
    pub sh_type: u32,
    /// Section flags (ALLOC=2, EXECINSTR=4, WRITE=1).
    pub sh_flags: u64,
    /// Virtual address when loaded (0 for non-alloc sections).
    pub sh_addr: u64,
    /// File offset of the section contents.
    pub sh_offset: u64,
    /// Size of the section in bytes.
    pub sh_size: u64,
    /// Section-type-specific link (e.g. symtab → strtab index).
    pub sh_link: u32,
    /// Section-type-specific extra info.
    pub sh_info: u32,
    /// Entry size for table sections.
    pub sh_entsize: u64,
}

/// Symbol table entry (`Elf64_Sym`) with its name resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Resolved symbol name (may be empty for the null symbol).
    pub name: String,
    /// Symbol value; for functions, the virtual address.
    pub value: u64,
    /// Size in bytes (0 when unknown).
    pub size: u64,
    /// Binding (`STB_LOCAL` / `STB_GLOBAL`).
    pub binding: u8,
    /// Type (`STT_FUNC`, `STT_OBJECT`, …).
    pub sym_type: u8,
    /// Defining section index; 0 (`SHN_UNDEF`) for imports.
    pub shndx: u16,
}

impl Symbol {
    /// `true` for function symbols.
    pub fn is_function(&self) -> bool {
        self.sym_type == STT_FUNC
    }

    /// `true` for symbols imported from another object (`SHN_UNDEF`).
    pub fn is_undefined(&self) -> bool {
        self.shndx == 0
    }

    /// `true` for globally visible symbols.
    pub fn is_global(&self) -> bool {
        self.binding == STB_GLOBAL
    }
}

/// Dynamic section entry (`Elf64_Dyn`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dyn {
    /// Entry tag (`DT_*`).
    pub d_tag: i64,
    /// Tag-dependent value or pointer.
    pub d_val: u64,
}

/// Relocation with addend (`Elf64_Rela`), with the symbol name resolved
/// against `.dynsym`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rela {
    /// Location to be relocated (virtual address, e.g. a GOT slot).
    pub r_offset: u64,
    /// Relocation type (`R_X86_64_*`).
    pub r_type: u32,
    /// Index of the referenced symbol in `.dynsym`.
    pub r_sym: u32,
    /// Resolved name of the referenced symbol.
    pub symbol_name: String,
    /// Constant addend.
    pub r_addend: i64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_header_flag_helpers() {
        let ph = ProgramHeader {
            p_type: PT_LOAD,
            p_flags: 5, // R+X
            p_offset: 0,
            p_vaddr: 0,
            p_filesz: 0,
            p_memsz: 0,
        };
        assert!(ph.is_executable());
        assert!(!ph.is_writable());
    }

    #[test]
    fn symbol_helpers() {
        let sym = Symbol {
            name: "write".into(),
            value: 0,
            size: 0,
            binding: STB_GLOBAL,
            sym_type: STT_FUNC,
            shndx: 0,
        };
        assert!(sym.is_function());
        assert!(sym.is_undefined());
        assert!(sym.is_global());
    }
}
