//! ELF64 parsing.

use crate::types::*;
use crate::ElfError;

/// A named section together with its raw contents.
#[derive(Debug, Clone)]
pub struct Section {
    /// Section name (from `.shstrtab`).
    pub name: String,
    /// The raw section header.
    pub header: SectionHeader,
    /// Section contents (empty for `SHT_NOBITS`).
    pub data: Vec<u8>,
}

/// A parsed ELF64 image.
///
/// Only the structures the B-Side analyses need are materialized eagerly:
/// headers, sections with contents, both symbol tables, the dynamic array
/// and PLT relocations. Everything is owned, so the source buffer can be
/// dropped after parsing.
#[derive(Debug, Clone)]
pub struct Elf {
    /// File header.
    pub header: FileHeader,
    /// Program headers, in file order.
    pub program_headers: Vec<ProgramHeader>,
    /// Sections, in file order, with contents.
    pub sections: Vec<Section>,
    symtab: Vec<Symbol>,
    dynsym: Vec<Symbol>,
    dynamic: Vec<Dyn>,
    needed: Vec<String>,
    plt_relocs: Vec<Rela>,
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn bytes(&self, offset: usize, len: usize, what: &'static str) -> Result<&'a [u8], ElfError> {
        self.buf
            .get(
                offset
                    ..offset
                        .checked_add(len)
                        .ok_or(ElfError::OutOfBounds { what })?,
            )
            .ok_or(ElfError::Truncated { what, offset })
    }

    fn u16(&self, offset: usize, what: &'static str) -> Result<u16, ElfError> {
        let b = self.bytes(offset, 2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&self, offset: usize, what: &'static str) -> Result<u32, ElfError> {
        let b = self.bytes(offset, 4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&self, offset: usize, what: &'static str) -> Result<u64, ElfError> {
        let b = self.bytes(offset, 8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("len 8")))
    }
}

fn str_at(table: &[u8], offset: usize) -> Result<String, ElfError> {
    let tail = table.get(offset..).ok_or(ElfError::BadString)?;
    let end = tail
        .iter()
        .position(|&b| b == 0)
        .ok_or(ElfError::BadString)?;
    String::from_utf8(tail[..end].to_vec()).map_err(|_| ElfError::BadString)
}

impl Elf {
    /// Parses an ELF64 little-endian x86-64 image.
    ///
    /// # Errors
    ///
    /// Returns [`ElfError`] when the image is truncated, has the wrong
    /// magic/class/machine, or contains out-of-bounds table references.
    pub fn parse(buf: &[u8]) -> Result<Elf, ElfError> {
        let r = Reader { buf };

        let ident = r.bytes(0, 16, "ELF identification")?;
        if &ident[0..4] != b"\x7fELF" {
            return Err(ElfError::BadMagic);
        }
        if ident[4] != 2 {
            return Err(ElfError::UnsupportedFormat("not 64-bit (ELFCLASS64)"));
        }
        if ident[5] != 1 {
            return Err(ElfError::UnsupportedFormat("not little-endian"));
        }

        let header = FileHeader {
            e_type: r.u16(16, "e_type")?,
            e_machine: r.u16(18, "e_machine")?,
            e_entry: r.u64(24, "e_entry")?,
            e_phoff: r.u64(32, "e_phoff")?,
            e_shoff: r.u64(40, "e_shoff")?,
            e_phnum: r.u16(56, "e_phnum")?,
            e_shnum: r.u16(60, "e_shnum")?,
            e_shstrndx: r.u16(62, "e_shstrndx")?,
        };
        if header.e_machine != 62 {
            return Err(ElfError::UnsupportedFormat("machine is not EM_X86_64"));
        }

        let mut program_headers = Vec::with_capacity(header.e_phnum as usize);
        for i in 0..header.e_phnum as usize {
            let off = header.e_phoff as usize + i * 56;
            program_headers.push(ProgramHeader {
                p_type: r.u32(off, "p_type")?,
                p_flags: r.u32(off + 4, "p_flags")?,
                p_offset: r.u64(off + 8, "p_offset")?,
                p_vaddr: r.u64(off + 16, "p_vaddr")?,
                p_filesz: r.u64(off + 32, "p_filesz")?,
                p_memsz: r.u64(off + 40, "p_memsz")?,
            });
        }

        let mut headers = Vec::with_capacity(header.e_shnum as usize);
        for i in 0..header.e_shnum as usize {
            let off = header.e_shoff as usize + i * 64;
            headers.push(SectionHeader {
                sh_name: r.u32(off, "sh_name")?,
                sh_type: r.u32(off + 4, "sh_type")?,
                sh_flags: r.u64(off + 8, "sh_flags")?,
                sh_addr: r.u64(off + 16, "sh_addr")?,
                sh_offset: r.u64(off + 24, "sh_offset")?,
                sh_size: r.u64(off + 32, "sh_size")?,
                sh_link: r.u32(off + 40, "sh_link")?,
                sh_info: r.u32(off + 44, "sh_info")?,
                sh_entsize: r.u64(off + 56, "sh_entsize")?,
            });
        }

        let shstrtab: Vec<u8> = match headers.get(header.e_shstrndx as usize) {
            Some(sh) if sh.sh_type == SHT_STRTAB => r
                .bytes(sh.sh_offset as usize, sh.sh_size as usize, ".shstrtab")?
                .to_vec(),
            Some(_) => return Err(ElfError::Malformed("e_shstrndx is not a string table")),
            None if header.e_shnum == 0 => Vec::new(),
            None => return Err(ElfError::Malformed("e_shstrndx out of range")),
        };

        let mut sections = Vec::with_capacity(headers.len());
        for sh in &headers {
            let name = if shstrtab.is_empty() {
                String::new()
            } else {
                str_at(&shstrtab, sh.sh_name as usize)?
            };
            let data = if sh.sh_type == SHT_NOBITS || sh.sh_type == SHT_NULL {
                Vec::new()
            } else {
                r.bytes(
                    sh.sh_offset as usize,
                    sh.sh_size as usize,
                    "section contents",
                )?
                .to_vec()
            };
            sections.push(Section {
                name,
                header: *sh,
                data,
            });
        }

        let symtab = Self::parse_symbols(&sections, SHT_SYMTAB)?;
        let dynsym = Self::parse_symbols(&sections, SHT_DYNSYM)?;

        let mut dynamic = Vec::new();
        let mut needed = Vec::new();
        if let Some(dyn_sec) = sections.iter().find(|s| s.header.sh_type == SHT_DYNAMIC) {
            let dynstr = sections
                .iter()
                .find(|s| s.name == ".dynstr")
                .map(|s| s.data.clone())
                .unwrap_or_default();
            let mut off = 0;
            while off + 16 <= dyn_sec.data.len() {
                let d_tag = i64::from_le_bytes(dyn_sec.data[off..off + 8].try_into().expect("len"));
                let d_val =
                    u64::from_le_bytes(dyn_sec.data[off + 8..off + 16].try_into().expect("len"));
                dynamic.push(Dyn { d_tag, d_val });
                if d_tag == DT_NULL {
                    break;
                }
                if d_tag == DT_NEEDED {
                    needed.push(str_at(&dynstr, d_val as usize)?);
                }
                off += 16;
            }
        }

        let mut plt_relocs = Vec::new();
        if let Some(rela) = sections.iter().find(|s| s.name == ".rela.plt") {
            if rela.header.sh_entsize != 0 && rela.header.sh_entsize != 24 {
                return Err(ElfError::Malformed(".rela.plt entry size is not 24"));
            }
            let mut off = 0;
            while off + 24 <= rela.data.len() {
                let r_offset = u64::from_le_bytes(rela.data[off..off + 8].try_into().expect("len"));
                let r_info =
                    u64::from_le_bytes(rela.data[off + 8..off + 16].try_into().expect("len"));
                let r_addend =
                    i64::from_le_bytes(rela.data[off + 16..off + 24].try_into().expect("len"));
                let r_sym = (r_info >> 32) as u32;
                let r_type = (r_info & 0xffff_ffff) as u32;
                let symbol_name = dynsym
                    .get(r_sym as usize)
                    .map(|s| s.name.clone())
                    .unwrap_or_default();
                plt_relocs.push(Rela {
                    r_offset,
                    r_type,
                    r_sym,
                    symbol_name,
                    r_addend,
                });
                off += 24;
            }
        }

        Ok(Elf {
            header,
            program_headers,
            sections,
            symtab,
            dynsym,
            dynamic,
            needed,
            plt_relocs,
        })
    }

    fn parse_symbols(sections: &[Section], sh_type: u32) -> Result<Vec<Symbol>, ElfError> {
        let Some(tab) = sections.iter().find(|s| s.header.sh_type == sh_type) else {
            return Ok(Vec::new());
        };
        let strtab = sections
            .get(tab.header.sh_link as usize)
            .map(|s| s.data.clone())
            .ok_or(ElfError::Malformed("symbol table sh_link out of range"))?;
        if tab.header.sh_entsize != 0 && tab.header.sh_entsize != 24 {
            return Err(ElfError::Malformed("symbol entry size is not 24"));
        }
        let mut out = Vec::new();
        let mut off = 0;
        while off + 24 <= tab.data.len() {
            let d = &tab.data[off..off + 24];
            let st_name = u32::from_le_bytes(d[0..4].try_into().expect("len"));
            let st_info = d[4];
            let st_shndx = u16::from_le_bytes(d[6..8].try_into().expect("len"));
            let st_value = u64::from_le_bytes(d[8..16].try_into().expect("len"));
            let st_size = u64::from_le_bytes(d[16..24].try_into().expect("len"));
            out.push(Symbol {
                name: str_at(&strtab, st_name as usize)?,
                value: st_value,
                size: st_size,
                binding: st_info >> 4,
                sym_type: st_info & 0xf,
                shndx: st_shndx,
            });
            off += 24;
        }
        Ok(out)
    }

    /// Entry point virtual address (`e_entry`).
    pub fn entry_point(&self) -> u64 {
        self.header.e_entry
    }

    /// `true` for position-independent images (`ET_DYN`): PIE executables
    /// and shared objects.
    pub fn is_pic(&self) -> bool {
        self.header.e_type == ET_DYN
    }

    /// `true` for images with dynamic-linking metadata.
    pub fn is_dynamic(&self) -> bool {
        !self.dynamic.is_empty()
    }

    /// Finds a section by name.
    pub fn section_by_name(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// The `.text` contents and its load address.
    pub fn text(&self) -> Option<(&[u8], u64)> {
        self.section_by_name(".text")
            .map(|s| (s.data.as_slice(), s.header.sh_addr))
    }

    /// The `.symtab` symbols (empty if stripped).
    pub fn symbols(&self) -> &[Symbol] {
        &self.symtab
    }

    /// The `.dynsym` symbols (empty for static executables).
    pub fn dynamic_symbols(&self) -> &[Symbol] {
        &self.dynsym
    }

    /// Raw dynamic array entries.
    pub fn dynamic_entries(&self) -> &[Dyn] {
        &self.dynamic
    }

    /// Names of shared libraries this image depends on (`DT_NEEDED`).
    pub fn needed_libraries(&self) -> &[String] {
        &self.needed
    }

    /// PLT relocations (`.rela.plt`), each naming an imported function and
    /// the GOT slot its PLT stub jumps through.
    pub fn plt_relocations(&self) -> &[Rela] {
        &self.plt_relocs
    }

    /// Function symbols defined in this image, from `.symtab` if present,
    /// falling back to `.dynsym` exports (the "stripped binary" case the
    /// paper assumes function-boundary metadata for).
    pub fn function_symbols(&self) -> Vec<&Symbol> {
        let from = if self.symtab.iter().any(|s| s.is_function()) {
            &self.symtab
        } else {
            &self.dynsym
        };
        from.iter()
            .filter(|s| s.is_function() && !s.is_undefined())
            .collect()
    }

    /// Exported (global, defined) function symbols — a shared library's
    /// public interface.
    pub fn exported_functions(&self) -> Vec<&Symbol> {
        self.dynsym
            .iter()
            .filter(|s| s.is_function() && s.is_global() && !s.is_undefined())
            .collect()
    }

    /// Maps a virtual address to the file image segment containing it,
    /// returning the contained bytes.
    pub fn bytes_at_vaddr(&self, vaddr: u64, len: usize) -> Option<&[u8]> {
        for s in &self.sections {
            if s.header.sh_addr != 0
                && vaddr >= s.header.sh_addr
                && vaddr + len as u64 <= s.header.sh_addr + s.header.sh_size
            {
                let start = (vaddr - s.header.sh_addr) as usize;
                return s.data.get(start..start + len);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::{ElfBuilder, ElfKind, SymbolSpec};

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            Elf::parse(b"not an elf file....."),
            Err(ElfError::BadMagic)
        ));
    }

    #[test]
    fn rejects_truncated_header() {
        assert!(matches!(
            Elf::parse(b"\x7fELF"),
            Err(ElfError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_32_bit() {
        let mut buf = vec![0u8; 64];
        buf[..4].copy_from_slice(b"\x7fELF");
        buf[4] = 1; // ELFCLASS32
        buf[5] = 1;
        assert!(matches!(
            Elf::parse(&buf),
            Err(ElfError::UnsupportedFormat(_))
        ));
    }

    #[test]
    fn rejects_wrong_machine() {
        let mut buf = vec![0u8; 64];
        buf[..4].copy_from_slice(b"\x7fELF");
        buf[4] = 2;
        buf[5] = 1;
        buf[18] = 40; // EM_ARM
        assert!(matches!(
            Elf::parse(&buf),
            Err(ElfError::UnsupportedFormat(_))
        ));
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let image = ElfBuilder::new(ElfKind::Executable)
            .text(vec![0x90; 32], 0x401000)
            .entry(0x401000)
            .symbol(SymbolSpec::function("_start", 0x401000, 32))
            .build()
            .expect("build");
        // Every prefix must either parse (unlikely) or fail cleanly.
        for cut in 0..image.len() {
            let _ = Elf::parse(&image[..cut]);
        }
    }

    #[test]
    fn bytes_at_vaddr_resolves_text() {
        let image = ElfBuilder::new(ElfKind::Executable)
            .text(vec![1, 2, 3, 4], 0x401000)
            .entry(0x401000)
            .build()
            .expect("build");
        let elf = Elf::parse(&image).expect("parse");
        assert_eq!(elf.bytes_at_vaddr(0x401001, 2), Some(&[2u8, 3][..]));
        assert_eq!(elf.bytes_at_vaddr(0x401003, 2), None, "crosses the end");
        assert_eq!(elf.bytes_at_vaddr(0xdead, 1), None);
    }
}
