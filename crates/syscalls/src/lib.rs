//! Linux x86-64 system call knowledge base.
//!
//! This crate provides the substrate shared by every other B-Side crate:
//!
//! * [`Sysno`] — a typed system call number;
//! * [`table`] — the x86-64 system call table (number ↔ name);
//! * [`SyscallSet`] — a dense bit-set of system call numbers, the currency in
//!   which analyses report their results;
//! * [`cve`] — the kernel CVE database of Table 5 of the B-Side paper,
//!   mapping CVEs to the system calls that trigger them.
//!
//! # Examples
//!
//! ```
//! use bside_syscalls::{Sysno, SyscallSet};
//!
//! let read = Sysno::from_name("read").unwrap();
//! assert_eq!(read.raw(), 0);
//! assert_eq!(read.name(), Some("read"));
//!
//! let mut set = SyscallSet::new();
//! set.insert(read);
//! assert!(set.contains(read));
//! assert_eq!(set.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cve;
pub mod table;

mod set;

pub use set::SyscallSet;

use std::fmt;

/// The highest system call number (exclusive) tracked by [`SyscallSet`].
///
/// x86-64 Linux assigns classic system calls in `0..=334` and resumes at
/// 424 for newer additions; 512 comfortably covers both ranges.
pub const MAX_SYSNO: u32 = 512;

/// A Linux x86-64 system call number.
///
/// `Sysno` is a thin, always-valid-by-range wrapper: constructing one does
/// not require the number to be *assigned* in the kernel table (analyses can
/// legitimately report reserved or future numbers), but it must be below
/// [`MAX_SYSNO`].
///
/// # Examples
///
/// ```
/// use bside_syscalls::Sysno;
///
/// let openat = Sysno::from_name("openat").unwrap();
/// assert_eq!(openat.raw(), 257);
/// assert_eq!(format!("{openat}"), "openat");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sysno(u32);

// Serialized transparently as its raw number; deserialization re-checks
// the range invariant instead of trusting the input.
serde::impl_serde_transparent!(Sysno(u32), validate = |raw: u32| Sysno::new(raw));

impl Sysno {
    /// Creates a system call number from its raw value.
    ///
    /// Returns `None` if `raw` is not below [`MAX_SYSNO`].
    pub fn new(raw: u32) -> Option<Self> {
        (raw < MAX_SYSNO).then_some(Sysno(raw))
    }

    /// Looks a system call up by name in the x86-64 table.
    ///
    /// ```
    /// use bside_syscalls::Sysno;
    /// assert_eq!(Sysno::from_name("write").unwrap().raw(), 1);
    /// assert!(Sysno::from_name("not_a_syscall").is_none());
    /// ```
    pub fn from_name(name: &str) -> Option<Self> {
        table::number_of(name).map(Sysno)
    }

    /// The raw numeric value.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The kernel name of this system call, if the number is assigned.
    pub fn name(self) -> Option<&'static str> {
        table::name_of(self.0)
    }
}

impl fmt::Display for Sysno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(name) => f.write_str(name),
            None => write!(f, "sys_{}", self.0),
        }
    }
}

/// Well-known system calls used throughout the workspace and in tests.
///
/// Only a convenience surface: anything in the table is reachable through
/// [`Sysno::from_name`].
pub mod well_known {
    use super::Sysno;

    /// `read` (0).
    pub const READ: Sysno = Sysno(0);
    /// `write` (1).
    pub const WRITE: Sysno = Sysno(1);
    /// `open` (2).
    pub const OPEN: Sysno = Sysno(2);
    /// `close` (3).
    pub const CLOSE: Sysno = Sysno(3);
    /// `mmap` (9).
    pub const MMAP: Sysno = Sysno(9);
    /// `brk` (12).
    pub const BRK: Sysno = Sysno(12);
    /// `ioctl` (16).
    pub const IOCTL: Sysno = Sysno(16);
    /// `socket` (41).
    pub const SOCKET: Sysno = Sysno(41);
    /// `accept` (43).
    pub const ACCEPT: Sysno = Sysno(43);
    /// `clone` (56).
    pub const CLONE: Sysno = Sysno(56);
    /// `fork` (57).
    pub const FORK: Sysno = Sysno(57);
    /// `execve` (59).
    pub const EXECVE: Sysno = Sysno(59);
    /// `exit` (60).
    pub const EXIT: Sysno = Sysno(60);
    /// `kill` (62).
    pub const KILL: Sysno = Sysno(62);
    /// `ptrace` (101).
    pub const PTRACE: Sysno = Sysno(101);
    /// `setsockopt` (54).
    pub const SETSOCKOPT: Sysno = Sysno(54);
    /// `openat` (257).
    pub const OPENAT: Sysno = Sysno(257);
    /// `execveat` (322).
    pub const EXECVEAT: Sysno = Sysno(322);
    /// `exit_group` (231).
    pub const EXIT_GROUP: Sysno = Sysno(231);
}

/// System calls the B-Side paper (following Chestnut) singles out as
/// *dangerous*: calls whose absence from a filter meaningfully shrinks the
/// attack surface (§5.2: "we confirmed that B-Side is able to filter out
/// execve on Nginx/Memcached, and execveat on all popular applications").
pub fn dangerous_syscalls() -> SyscallSet {
    let names = [
        "execve",
        "execveat",
        "fork",
        "vfork",
        "clone",
        "ptrace",
        "mprotect",
        "setuid",
        "setgid",
        "init_module",
        "finit_module",
        "delete_module",
        "bpf",
        "keyctl",
        "mount",
        "pivot_root",
        "kexec_load",
    ];
    names.iter().filter_map(|n| Sysno::from_name(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sysno_rejects_out_of_range() {
        assert!(Sysno::new(MAX_SYSNO).is_none());
        assert!(Sysno::new(u32::MAX).is_none());
        assert!(Sysno::new(0).is_some());
        assert!(Sysno::new(MAX_SYSNO - 1).is_some());
    }

    #[test]
    fn display_uses_name_when_assigned() {
        assert_eq!(well_known::READ.to_string(), "read");
        assert_eq!(well_known::EXECVEAT.to_string(), "execveat");
    }

    #[test]
    fn display_falls_back_to_number() {
        // 400 is in-range but unassigned on x86-64.
        let s = Sysno::new(400).unwrap();
        assert_eq!(s.to_string(), "sys_400");
    }

    #[test]
    fn well_known_numbers_match_table() {
        for (sysno, name) in [
            (well_known::READ, "read"),
            (well_known::WRITE, "write"),
            (well_known::MMAP, "mmap"),
            (well_known::SOCKET, "socket"),
            (well_known::SETSOCKOPT, "setsockopt"),
            (well_known::PTRACE, "ptrace"),
            (well_known::OPENAT, "openat"),
            (well_known::EXECVEAT, "execveat"),
            (well_known::EXIT_GROUP, "exit_group"),
        ] {
            assert_eq!(Sysno::from_name(name), Some(sysno), "{name}");
        }
    }

    #[test]
    fn dangerous_contains_exec_family() {
        let d = dangerous_syscalls();
        assert!(d.contains(well_known::EXECVE));
        assert!(d.contains(well_known::EXECVEAT));
        assert!(!d.contains(well_known::READ));
    }
}
