//! The Linux x86-64 system call table.
//!
//! Numbers follow `arch/x86/entry/syscalls/syscall_64.tbl`. The classic
//! range `0..=334` is fully populated; the post-5.0 range starting at 424 is
//! included up to `landlock_restrict_self` (446) plus a handful of later
//! additions that appear in modern seccomp policies.

/// Returns the kernel name for a raw system call number, if assigned.
///
/// ```
/// assert_eq!(bside_syscalls::table::name_of(59), Some("execve"));
/// assert_eq!(bside_syscalls::table::name_of(400), None);
/// ```
pub fn name_of(raw: u32) -> Option<&'static str> {
    let raw = raw as usize;
    if raw < CLASSIC.len() {
        return Some(CLASSIC[raw]);
    }
    MODERN
        .iter()
        .find_map(|&(n, name)| (n as usize == raw).then_some(name))
}

/// Returns the raw number for a system call name, if assigned.
///
/// ```
/// assert_eq!(bside_syscalls::table::number_of("pivot_root"), Some(155));
/// assert_eq!(bside_syscalls::table::number_of("bogus"), None);
/// ```
pub fn number_of(name: &str) -> Option<u32> {
    if let Some(idx) = CLASSIC.iter().position(|&n| n == name) {
        return Some(idx as u32);
    }
    MODERN.iter().find_map(|&(n, nm)| (nm == name).then_some(n))
}

/// Iterates over every assigned `(number, name)` pair in ascending order.
pub fn iter() -> impl Iterator<Item = (u32, &'static str)> {
    CLASSIC
        .iter()
        .enumerate()
        .map(|(i, &n)| (i as u32, n))
        .chain(MODERN.iter().copied())
}

/// Number of assigned system calls in the table.
pub fn count() -> usize {
    CLASSIC.len() + MODERN.len()
}

/// Classic x86-64 table: index == system call number.
static CLASSIC: [&str; 335] = [
    "read",                   // 0
    "write",                  // 1
    "open",                   // 2
    "close",                  // 3
    "stat",                   // 4
    "fstat",                  // 5
    "lstat",                  // 6
    "poll",                   // 7
    "lseek",                  // 8
    "mmap",                   // 9
    "mprotect",               // 10
    "munmap",                 // 11
    "brk",                    // 12
    "rt_sigaction",           // 13
    "rt_sigprocmask",         // 14
    "rt_sigreturn",           // 15
    "ioctl",                  // 16
    "pread64",                // 17
    "pwrite64",               // 18
    "readv",                  // 19
    "writev",                 // 20
    "access",                 // 21
    "pipe",                   // 22
    "select",                 // 23
    "sched_yield",            // 24
    "mremap",                 // 25
    "msync",                  // 26
    "mincore",                // 27
    "madvise",                // 28
    "shmget",                 // 29
    "shmat",                  // 30
    "shmctl",                 // 31
    "dup",                    // 32
    "dup2",                   // 33
    "pause",                  // 34
    "nanosleep",              // 35
    "getitimer",              // 36
    "alarm",                  // 37
    "setitimer",              // 38
    "getpid",                 // 39
    "sendfile",               // 40
    "socket",                 // 41
    "connect",                // 42
    "accept",                 // 43
    "sendto",                 // 44
    "recvfrom",               // 45
    "sendmsg",                // 46
    "recvmsg",                // 47
    "shutdown",               // 48
    "bind",                   // 49
    "listen",                 // 50
    "getsockname",            // 51
    "getpeername",            // 52
    "socketpair",             // 53
    "setsockopt",             // 54
    "getsockopt",             // 55
    "clone",                  // 56
    "fork",                   // 57
    "vfork",                  // 58
    "execve",                 // 59
    "exit",                   // 60
    "wait4",                  // 61
    "kill",                   // 62
    "uname",                  // 63
    "semget",                 // 64
    "semop",                  // 65
    "semctl",                 // 66
    "shmdt",                  // 67
    "msgget",                 // 68
    "msgsnd",                 // 69
    "msgrcv",                 // 70
    "msgctl",                 // 71
    "fcntl",                  // 72
    "flock",                  // 73
    "fsync",                  // 74
    "fdatasync",              // 75
    "truncate",               // 76
    "ftruncate",              // 77
    "getdents",               // 78
    "getcwd",                 // 79
    "chdir",                  // 80
    "fchdir",                 // 81
    "rename",                 // 82
    "mkdir",                  // 83
    "rmdir",                  // 84
    "creat",                  // 85
    "link",                   // 86
    "unlink",                 // 87
    "symlink",                // 88
    "readlink",               // 89
    "chmod",                  // 90
    "fchmod",                 // 91
    "chown",                  // 92
    "fchown",                 // 93
    "lchown",                 // 94
    "umask",                  // 95
    "gettimeofday",           // 96
    "getrlimit",              // 97
    "getrusage",              // 98
    "sysinfo",                // 99
    "times",                  // 100
    "ptrace",                 // 101
    "getuid",                 // 102
    "syslog",                 // 103
    "getgid",                 // 104
    "setuid",                 // 105
    "setgid",                 // 106
    "geteuid",                // 107
    "getegid",                // 108
    "setpgid",                // 109
    "getppid",                // 110
    "getpgrp",                // 111
    "setsid",                 // 112
    "setreuid",               // 113
    "setregid",               // 114
    "getgroups",              // 115
    "setgroups",              // 116
    "setresuid",              // 117
    "getresuid",              // 118
    "setresgid",              // 119
    "getresgid",              // 120
    "getpgid",                // 121
    "setfsuid",               // 122
    "setfsgid",               // 123
    "getsid",                 // 124
    "capget",                 // 125
    "capset",                 // 126
    "rt_sigpending",          // 127
    "rt_sigtimedwait",        // 128
    "rt_sigqueueinfo",        // 129
    "rt_sigsuspend",          // 130
    "sigaltstack",            // 131
    "utime",                  // 132
    "mknod",                  // 133
    "uselib",                 // 134
    "personality",            // 135
    "ustat",                  // 136
    "statfs",                 // 137
    "fstatfs",                // 138
    "sysfs",                  // 139
    "getpriority",            // 140
    "setpriority",            // 141
    "sched_setparam",         // 142
    "sched_getparam",         // 143
    "sched_setscheduler",     // 144
    "sched_getscheduler",     // 145
    "sched_get_priority_max", // 146
    "sched_get_priority_min", // 147
    "sched_rr_get_interval",  // 148
    "mlock",                  // 149
    "munlock",                // 150
    "mlockall",               // 151
    "munlockall",             // 152
    "vhangup",                // 153
    "modify_ldt",             // 154
    "pivot_root",             // 155
    "_sysctl",                // 156
    "prctl",                  // 157
    "arch_prctl",             // 158
    "adjtimex",               // 159
    "setrlimit",              // 160
    "chroot",                 // 161
    "sync",                   // 162
    "acct",                   // 163
    "settimeofday",           // 164
    "mount",                  // 165
    "umount2",                // 166
    "swapon",                 // 167
    "swapoff",                // 168
    "reboot",                 // 169
    "sethostname",            // 170
    "setdomainname",          // 171
    "iopl",                   // 172
    "ioperm",                 // 173
    "create_module",          // 174
    "init_module",            // 175
    "delete_module",          // 176
    "get_kernel_syms",        // 177
    "query_module",           // 178
    "quotactl",               // 179
    "nfsservctl",             // 180
    "getpmsg",                // 181
    "putpmsg",                // 182
    "afs_syscall",            // 183
    "tuxcall",                // 184
    "security",               // 185
    "gettid",                 // 186
    "readahead",              // 187
    "setxattr",               // 188
    "lsetxattr",              // 189
    "fsetxattr",              // 190
    "getxattr",               // 191
    "lgetxattr",              // 192
    "fgetxattr",              // 193
    "listxattr",              // 194
    "llistxattr",             // 195
    "flistxattr",             // 196
    "removexattr",            // 197
    "lremovexattr",           // 198
    "fremovexattr",           // 199
    "tkill",                  // 200
    "time",                   // 201
    "futex",                  // 202
    "sched_setaffinity",      // 203
    "sched_getaffinity",      // 204
    "set_thread_area",        // 205
    "io_setup",               // 206
    "io_destroy",             // 207
    "io_getevents",           // 208
    "io_submit",              // 209
    "io_cancel",              // 210
    "get_thread_area",        // 211
    "lookup_dcookie",         // 212
    "epoll_create",           // 213
    "epoll_ctl_old",          // 214
    "epoll_wait_old",         // 215
    "remap_file_pages",       // 216
    "getdents64",             // 217
    "set_tid_address",        // 218
    "restart_syscall",        // 219
    "semtimedop",             // 220
    "fadvise64",              // 221
    "timer_create",           // 222
    "timer_settime",          // 223
    "timer_gettime",          // 224
    "timer_getoverrun",       // 225
    "timer_delete",           // 226
    "clock_settime",          // 227
    "clock_gettime",          // 228
    "clock_getres",           // 229
    "clock_nanosleep",        // 230
    "exit_group",             // 231
    "epoll_wait",             // 232
    "epoll_ctl",              // 233
    "tgkill",                 // 234
    "utimes",                 // 235
    "vserver",                // 236
    "mbind",                  // 237
    "set_mempolicy",          // 238
    "get_mempolicy",          // 239
    "mq_open",                // 240
    "mq_unlink",              // 241
    "mq_timedsend",           // 242
    "mq_timedreceive",        // 243
    "mq_notify",              // 244
    "mq_getsetattr",          // 245
    "kexec_load",             // 246
    "waitid",                 // 247
    "add_key",                // 248
    "request_key",            // 249
    "keyctl",                 // 250
    "ioprio_set",             // 251
    "ioprio_get",             // 252
    "inotify_init",           // 253
    "inotify_add_watch",      // 254
    "inotify_rm_watch",       // 255
    "migrate_pages",          // 256
    "openat",                 // 257
    "mkdirat",                // 258
    "mknodat",                // 259
    "fchownat",               // 260
    "futimesat",              // 261
    "newfstatat",             // 262
    "unlinkat",               // 263
    "renameat",               // 264
    "linkat",                 // 265
    "symlinkat",              // 266
    "readlinkat",             // 267
    "fchmodat",               // 268
    "faccessat",              // 269
    "pselect6",               // 270
    "ppoll",                  // 271
    "unshare",                // 272
    "set_robust_list",        // 273
    "get_robust_list",        // 274
    "splice",                 // 275
    "tee",                    // 276
    "sync_file_range",        // 277
    "vmsplice",               // 278
    "move_pages",             // 279
    "utimensat",              // 280
    "epoll_pwait",            // 281
    "signalfd",               // 282
    "timerfd_create",         // 283
    "eventfd",                // 284
    "fallocate",              // 285
    "timerfd_settime",        // 286
    "timerfd_gettime",        // 287
    "accept4",                // 288
    "signalfd4",              // 289
    "eventfd2",               // 290
    "epoll_create1",          // 291
    "dup3",                   // 292
    "pipe2",                  // 293
    "inotify_init1",          // 294
    "preadv",                 // 295
    "pwritev",                // 296
    "rt_tgsigqueueinfo",      // 297
    "perf_event_open",        // 298
    "recvmmsg",               // 299
    "fanotify_init",          // 300
    "fanotify_mark",          // 301
    "prlimit64",              // 302
    "name_to_handle_at",      // 303
    "open_by_handle_at",      // 304
    "clock_adjtime",          // 305
    "syncfs",                 // 306
    "sendmmsg",               // 307
    "setns",                  // 308
    "getcpu",                 // 309
    "process_vm_readv",       // 310
    "process_vm_writev",      // 311
    "kcmp",                   // 312
    "finit_module",           // 313
    "sched_setattr",          // 314
    "sched_getattr",          // 315
    "renameat2",              // 316
    "seccomp",                // 317
    "getrandom",              // 318
    "memfd_create",           // 319
    "kexec_file_load",        // 320
    "bpf",                    // 321
    "execveat",               // 322
    "userfaultfd",            // 323
    "membarrier",             // 324
    "mlock2",                 // 325
    "copy_file_range",        // 326
    "preadv2",                // 327
    "pwritev2",               // 328
    "pkey_mprotect",          // 329
    "pkey_alloc",             // 330
    "pkey_free",              // 331
    "statx",                  // 332
    "io_pgetevents",          // 333
    "rseq",                   // 334
];

/// Post-5.0 additions (sparse numbering resumes at 424).
static MODERN: [(u32, &str); 23] = [
    (424, "pidfd_send_signal"),
    (425, "io_uring_setup"),
    (426, "io_uring_enter"),
    (427, "io_uring_register"),
    (428, "open_tree"),
    (429, "move_mount"),
    (430, "fsopen"),
    (431, "fsconfig"),
    (432, "fsmount"),
    (433, "fspick"),
    (434, "pidfd_open"),
    (435, "clone3"),
    (436, "close_range"),
    (437, "openat2"),
    (438, "pidfd_getfd"),
    (439, "faccessat2"),
    (440, "process_madvise"),
    (441, "epoll_pwait2"),
    (442, "mount_setattr"),
    (443, "quotactl_fd"),
    (444, "landlock_create_ruleset"),
    (445, "landlock_add_rule"),
    (446, "landlock_restrict_self"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_range_is_dense() {
        for n in 0..335u32 {
            assert!(name_of(n).is_some(), "number {n} should be assigned");
        }
    }

    #[test]
    fn gap_between_classic_and_modern_is_unassigned() {
        for n in 335..424u32 {
            assert_eq!(name_of(n), None, "number {n} should be unassigned");
        }
    }

    #[test]
    fn name_number_round_trip() {
        for (num, name) in iter() {
            assert_eq!(number_of(name), Some(num), "{name}");
            assert_eq!(name_of(num), Some(name), "{num}");
        }
    }

    #[test]
    fn spot_check_assignments() {
        // Values cross-checked against syscall_64.tbl.
        assert_eq!(number_of("mmap"), Some(9));
        assert_eq!(number_of("clone"), Some(56));
        assert_eq!(number_of("execve"), Some(59));
        assert_eq!(number_of("ptrace"), Some(101));
        assert_eq!(number_of("pivot_root"), Some(155));
        assert_eq!(number_of("adjtimex"), Some(159));
        assert_eq!(number_of("init_module"), Some(175));
        assert_eq!(number_of("io_submit"), Some(209));
        assert_eq!(number_of("timer_create"), Some(222));
        assert_eq!(number_of("clock_nanosleep"), Some(230));
        assert_eq!(number_of("mq_notify"), Some(244));
        assert_eq!(number_of("keyctl"), Some(250));
        assert_eq!(number_of("inotify_add_watch"), Some(254));
        assert_eq!(number_of("unshare"), Some(272));
        assert_eq!(number_of("perf_event_open"), Some(298));
        assert_eq!(number_of("sched_getattr"), Some(315));
        assert_eq!(number_of("bpf"), Some(321));
        assert_eq!(number_of("execveat"), Some(322));
        assert_eq!(number_of("io_uring_setup"), Some(425));
    }

    #[test]
    fn count_matches_parts() {
        assert_eq!(count(), 335 + 23);
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for (_, name) in iter() {
            assert!(seen.insert(name), "duplicate name {name}");
        }
    }
}
