//! Dense bit-set of system call numbers.

use crate::{Sysno, MAX_SYSNO};
use std::fmt;

const WORDS: usize = (MAX_SYSNO as usize).div_ceil(64);

/// A set of system call numbers, stored as a fixed-size bitmap.
///
/// This is the result type of every identification analysis in the
/// workspace: cheap to copy, set-algebra friendly, and ordered iteration.
///
/// # Examples
///
/// ```
/// use bside_syscalls::{Sysno, SyscallSet};
///
/// let a: SyscallSet = ["read", "write", "close"]
///     .iter()
///     .filter_map(|n| Sysno::from_name(n))
///     .collect();
/// let b: SyscallSet = ["write", "openat"]
///     .iter()
///     .filter_map(|n| Sysno::from_name(n))
///     .collect();
///
/// assert_eq!(a.union(&b).len(), 4);
/// assert_eq!(a.intersection(&b).len(), 1);
/// assert!(a.difference(&b).contains(Sysno::from_name("read").unwrap()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyscallSet {
    words: [u64; WORDS],
}

impl SyscallSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SyscallSet { words: [0; WORDS] }
    }

    /// Creates a set containing every number in `0..MAX_SYSNO` that is
    /// assigned in the x86-64 table — "allow everything" in filter terms.
    pub fn all_known() -> Self {
        crate::table::iter()
            .filter_map(|(n, _)| Sysno::new(n))
            .collect()
    }

    /// Inserts a system call. Returns `true` if it was newly inserted.
    pub fn insert(&mut self, sysno: Sysno) -> bool {
        let (w, b) = Self::slot(sysno);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes a system call. Returns `true` if it was present.
    pub fn remove(&mut self, sysno: Sysno) -> bool {
        let (w, b) = Self::slot(sysno);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Tests membership.
    pub fn contains(&self, sysno: Sysno) -> bool {
        let (w, b) = Self::slot(sysno);
        self.words[w] & (1 << b) != 0
    }

    /// Number of system calls in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union.
    pub fn union(&self, other: &Self) -> Self {
        let mut out = *self;
        out.extend_from(other);
        out
    }

    /// In-place union.
    pub fn extend_from(&mut self, other: &Self) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Self) -> Self {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
        out
    }

    /// Elements of `self` not in `other`.
    pub fn difference(&self, other: &Self) -> Self {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
        out
    }

    /// `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over members in ascending numeric order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, next: 0 }
    }

    fn slot(sysno: Sysno) -> (usize, u32) {
        let raw = sysno.raw();
        ((raw / 64) as usize, raw % 64)
    }
}

impl Default for SyscallSet {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SyscallSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for SyscallSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        f.write_str("{")?;
        for s in self.iter() {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        f.write_str("}")
    }
}

impl FromIterator<Sysno> for SyscallSet {
    fn from_iter<I: IntoIterator<Item = Sysno>>(iter: I) -> Self {
        let mut set = SyscallSet::new();
        set.extend(iter);
        set
    }
}

impl Extend<Sysno> for SyscallSet {
    fn extend<I: IntoIterator<Item = Sysno>>(&mut self, iter: I) {
        for s in iter {
            self.insert(s);
        }
    }
}

impl<'a> IntoIterator for &'a SyscallSet {
    type Item = Sysno;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Ascending iterator over a [`SyscallSet`], created by [`SyscallSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a SyscallSet,
    next: u32,
}

impl Iterator for Iter<'_> {
    type Item = Sysno;

    fn next(&mut self) -> Option<Sysno> {
        while self.next < MAX_SYSNO {
            let cur = self.next;
            self.next += 1;
            let sysno = Sysno::new(cur).expect("in range");
            if self.set.contains(sysno) {
                return Some(sysno);
            }
        }
        None
    }
}

impl serde::Serialize for SyscallSet {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter().map(|s| s.raw()))
    }
}

impl<'de> serde::Deserialize<'de> for SyscallSet {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let raws: Vec<u32> = Vec::deserialize(deserializer)?;
        let mut set = SyscallSet::new();
        for raw in raws {
            let sysno = Sysno::new(raw).ok_or_else(|| {
                serde::de::Error::custom(format!("system call number {raw} out of range"))
            })?;
            set.insert(sysno);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::well_known as wk;

    #[test]
    fn insert_remove_contains() {
        let mut s = SyscallSet::new();
        assert!(s.insert(wk::READ));
        assert!(!s.insert(wk::READ), "second insert reports not-fresh");
        assert!(s.contains(wk::READ));
        assert!(s.remove(wk::READ));
        assert!(!s.remove(wk::READ), "second remove reports absent");
        assert!(s.is_empty());
    }

    #[test]
    fn len_counts_across_words() {
        let mut s = SyscallSet::new();
        s.insert(Sysno::new(0).unwrap());
        s.insert(Sysno::new(63).unwrap());
        s.insert(Sysno::new(64).unwrap());
        s.insert(Sysno::new(446).unwrap());
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn iter_is_ascending_and_complete() {
        let mut s = SyscallSet::new();
        for raw in [322, 0, 59, 101, 425] {
            s.insert(Sysno::new(raw).unwrap());
        }
        let raws: Vec<u32> = s.iter().map(|x| x.raw()).collect();
        assert_eq!(raws, vec![0, 59, 101, 322, 425]);
    }

    #[test]
    fn set_algebra() {
        let a: SyscallSet = [wk::READ, wk::WRITE, wk::OPEN].into_iter().collect();
        let b: SyscallSet = [wk::WRITE, wk::CLOSE].into_iter().collect();
        assert_eq!(a.union(&b).len(), 4);
        let i = a.intersection(&b);
        assert_eq!(i.len(), 1);
        assert!(i.contains(wk::WRITE));
        let d = a.difference(&b);
        assert!(d.contains(wk::READ) && d.contains(wk::OPEN) && !d.contains(wk::WRITE));
        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn all_known_matches_table_count() {
        assert_eq!(SyscallSet::all_known().len(), crate::table::count());
    }

    fn evens() -> SyscallSet {
        (0..crate::MAX_SYSNO)
            .step_by(2)
            .filter_map(Sysno::new)
            .collect()
    }

    fn multiples_of(k: u32) -> SyscallSet {
        (0..crate::MAX_SYSNO)
            .step_by(k as usize)
            .filter_map(Sysno::new)
            .collect()
    }

    #[test]
    fn bulk_union_matches_element_wise() {
        // The parallel merge step folds per-site/per-worker sets with
        // extend_from; it must agree with element-wise insertion across
        // word boundaries.
        let a = evens();
        let b = multiples_of(3);
        let u = a.union(&b);
        for raw in 0..crate::MAX_SYSNO {
            let s = Sysno::new(raw).unwrap();
            assert_eq!(u.contains(s), raw % 2 == 0 || raw % 3 == 0, "{raw}");
        }
        assert_eq!(
            u.len(),
            (0..crate::MAX_SYSNO)
                .filter(|r| r % 2 == 0 || r % 3 == 0)
                .count()
        );

        // In-place union over many small sets equals one big collect.
        let mut folded = SyscallSet::new();
        for raw in 0..crate::MAX_SYSNO {
            if raw % 2 == 0 || raw % 3 == 0 {
                let single: SyscallSet = [Sysno::new(raw).unwrap()].into_iter().collect();
                folded.extend_from(&single);
            }
        }
        assert_eq!(folded, u);
    }

    #[test]
    fn bulk_intersection_matches_element_wise() {
        let a = evens();
        let b = multiples_of(3);
        let i = a.intersection(&b);
        for raw in 0..crate::MAX_SYSNO {
            let s = Sysno::new(raw).unwrap();
            assert_eq!(i.contains(s), raw % 6 == 0, "{raw}");
        }
        assert_eq!(i, multiples_of(6));
        assert!(i.is_subset(&a) && i.is_subset(&b));

        // Identities: x ∩ x = x, x ∩ ∅ = ∅, and for a set of *assigned*
        // numbers, x ∩ all_known = x.
        assert_eq!(a.intersection(&a), a);
        assert!(a.intersection(&SyscallSet::new()).is_empty());
        let assigned = SyscallSet::all_known().intersection(&a);
        assert_eq!(assigned.intersection(&SyscallSet::all_known()), assigned);
        assert!(!assigned.is_empty());
    }

    #[test]
    fn bulk_iteration_is_ascending_and_lossless() {
        let set = multiples_of(7);
        let raws: Vec<u32> = set.iter().map(|s| s.raw()).collect();
        assert_eq!(raws.len(), set.len());
        assert!(raws.windows(2).all(|w| w[0] < w[1]), "ascending");
        assert!(raws.iter().all(|r| r % 7 == 0));
        // Round trip through iteration rebuilds the identical bitmap.
        let rebuilt: SyscallSet = set.iter().collect();
        assert_eq!(rebuilt, set);
        // Full-range iteration covers the highest representable word.
        let full = SyscallSet::all_known();
        let max = full.iter().last().unwrap();
        assert!(full.contains(max));
        assert_eq!(full.iter().count(), full.len());
    }

    #[test]
    fn difference_and_union_are_consistent() {
        let a = evens();
        let b = multiples_of(3);
        // (a \ b) ∪ (a ∩ b) = a, and (a \ b) ∩ b = ∅.
        let rebuilt = a.difference(&b).union(&a.intersection(&b));
        assert_eq!(rebuilt, a);
        assert!(a.difference(&b).intersection(&b).is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let a: SyscallSet = [wk::READ, wk::EXECVEAT].into_iter().collect();
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(json, "[0,322]");
        let back: SyscallSet = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn serde_rejects_out_of_range() {
        let err = serde_json::from_str::<SyscallSet>("[9999]");
        assert!(err.is_err());
    }

    #[test]
    fn display_lists_names() {
        let a: SyscallSet = [wk::READ, wk::WRITE].into_iter().collect();
        assert_eq!(a.to_string(), "{read, write}");
    }
}
