//! Kernel CVE database from Table 5 of the B-Side paper.
//!
//! Each entry maps a Linux kernel CVE to the system call(s) whose invocation
//! is required to trigger it. A filtering rule that denies *all* of a CVE's
//! trigger system calls protects the process against that CVE (§5.5).

use crate::{SyscallSet, Sysno};

/// The impact class of a CVE, following the legend of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CveType {
    /// Check bypass.
    CheckBypass,
    /// Information leak.
    InfoLeak,
    /// Use after free.
    UseAfterFree,
    /// Arbitrary memory read primitive.
    MemRead,
    /// Arbitrary memory write primitive.
    MemWrite,
    /// Denial of service.
    DenialOfService,
    /// Privilege escalation.
    PrivilegeEscalation,
}

serde::impl_serde_unit_enum!(CveType {
    CheckBypass,
    InfoLeak,
    UseAfterFree,
    MemRead,
    MemWrite,
    DenialOfService,
    PrivilegeEscalation,
});

/// One row of Table 5: a CVE, its trigger system calls, and impact classes.
#[derive(Debug, Clone)]
pub struct CveEntry {
    /// CVE identifier, e.g. `"2019-13272"`.
    pub id: &'static str,
    /// Names of the system calls involved in the attack.
    pub syscall_names: &'static [&'static str],
    /// Impact classes.
    pub types: &'static [CveType],
}

impl CveEntry {
    /// The trigger system calls as a [`SyscallSet`].
    ///
    /// 32-bit compat entry points (`compat_sys_*`) are mapped to their
    /// x86-64 equivalents, since a 64-bit seccomp policy filters the 64-bit
    /// numbers.
    pub fn syscalls(&self) -> SyscallSet {
        self.syscall_names
            .iter()
            .map(|name| {
                let name = name.strip_prefix("compat_sys_").unwrap_or(name);
                Sysno::from_name(name)
                    .unwrap_or_else(|| panic!("CVE table references unknown syscall {name}"))
            })
            .collect()
    }

    /// `true` if a process restricted to `allowed` cannot trigger this CVE,
    /// i.e. at least one required system call is denied.
    ///
    /// Table 5 counts a binary as protected when the filtering rule derived
    /// from the analysis precludes the CVE's system call; for multi-syscall
    /// CVEs the attack needs all of them, so denying any one suffices.
    pub fn is_blocked_by(&self, allowed: &SyscallSet) -> bool {
        !self.syscalls().is_subset(allowed)
    }
}

use CveType::*;

/// The 36 CVEs of Table 5 (post-2014 kernel CVEs triggerable through
/// system calls, collected from SysFilter, Confine and Kite).
pub static CVE_TABLE: [CveEntry; 36] = [
    CveEntry {
        id: "2021-35039",
        syscall_names: &["init_module"],
        types: &[CheckBypass],
    },
    CveEntry {
        id: "2019-13272",
        syscall_names: &["ptrace"],
        types: &[PrivilegeEscalation],
    },
    CveEntry {
        id: "2019-11815",
        syscall_names: &["clone", "unshare"],
        types: &[UseAfterFree],
    },
    CveEntry {
        id: "2019-10125",
        syscall_names: &["io_submit"],
        types: &[UseAfterFree],
    },
    CveEntry {
        id: "2019-9857",
        syscall_names: &["inotify_add_watch"],
        types: &[DenialOfService],
    },
    CveEntry {
        id: "2019-3901",
        syscall_names: &["execve"],
        types: &[InfoLeak],
    },
    CveEntry {
        id: "2018-18281",
        syscall_names: &["ftruncate", "mremap"],
        types: &[UseAfterFree],
    },
    CveEntry {
        id: "2018-14634",
        syscall_names: &["execve", "execveat"],
        types: &[PrivilegeEscalation],
    },
    CveEntry {
        id: "2018-13053",
        syscall_names: &["clock_nanosleep"],
        types: &[DenialOfService],
    },
    CveEntry {
        id: "2018-12233",
        syscall_names: &["setxattr"],
        types: &[PrivilegeEscalation, InfoLeak, DenialOfService],
    },
    CveEntry {
        id: "2018-11508",
        syscall_names: &["adjtimex"],
        types: &[InfoLeak],
    },
    CveEntry {
        id: "2018-1068",
        syscall_names: &["compat_sys_setsockopt"],
        types: &[MemWrite],
    },
    CveEntry {
        id: "2017-18509",
        syscall_names: &["setsockopt", "getsockopt"],
        types: &[PrivilegeEscalation, DenialOfService],
    },
    CveEntry {
        id: "2017-18344",
        syscall_names: &["timer_create"],
        types: &[MemRead],
    },
    CveEntry {
        id: "2017-17712",
        syscall_names: &["sendto", "sendmsg"],
        types: &[PrivilegeEscalation],
    },
    CveEntry {
        id: "2017-17053",
        syscall_names: &["modify_ldt", "clone"],
        types: &[UseAfterFree],
    },
    CveEntry {
        id: "2017-14954",
        syscall_names: &["waitid"],
        types: &[CheckBypass, PrivilegeEscalation, InfoLeak],
    },
    CveEntry {
        id: "2017-11176",
        syscall_names: &["mq_notify"],
        types: &[DenialOfService],
    },
    CveEntry {
        id: "2017-6001",
        syscall_names: &["perf_event_open"],
        types: &[PrivilegeEscalation],
    },
    CveEntry {
        id: "2016-7911",
        syscall_names: &["ioprio_get"],
        types: &[PrivilegeEscalation, DenialOfService],
    },
    CveEntry {
        id: "2016-6198",
        syscall_names: &["rename"],
        types: &[DenialOfService],
    },
    CveEntry {
        id: "2016-6197",
        syscall_names: &["rename", "unlink"],
        types: &[DenialOfService],
    },
    CveEntry {
        id: "2016-4998",
        syscall_names: &["setsockopt"],
        types: &[PrivilegeEscalation, DenialOfService],
    },
    CveEntry {
        id: "2016-4997",
        syscall_names: &["setsockopt"],
        types: &[PrivilegeEscalation, DenialOfService],
    },
    CveEntry {
        id: "2016-3134",
        syscall_names: &["setsockopt"],
        types: &[PrivilegeEscalation, DenialOfService],
    },
    CveEntry {
        id: "2016-2383",
        syscall_names: &["bpf"],
        types: &[InfoLeak],
    },
    CveEntry {
        id: "2016-0728",
        syscall_names: &["keyctl"],
        types: &[PrivilegeEscalation, DenialOfService],
    },
    CveEntry {
        id: "2015-8543",
        syscall_names: &["socket"],
        types: &[PrivilegeEscalation, DenialOfService],
    },
    CveEntry {
        id: "2015-7613",
        syscall_names: &["semget", "msgget", "shmget"],
        types: &[PrivilegeEscalation],
    },
    CveEntry {
        id: "2014-9903",
        syscall_names: &["sched_getattr"],
        types: &[InfoLeak],
    },
    CveEntry {
        id: "2014-9529",
        syscall_names: &["keyctl"],
        types: &[DenialOfService],
    },
    CveEntry {
        id: "2014-8133",
        syscall_names: &["set_thread_area"],
        types: &[CheckBypass],
    },
    CveEntry {
        id: "2014-7970",
        syscall_names: &["pivot_root"],
        types: &[DenialOfService],
    },
    CveEntry {
        id: "2014-5207",
        syscall_names: &["mount"],
        types: &[PrivilegeEscalation],
    },
    CveEntry {
        id: "2014-4699",
        syscall_names: &["fork", "clone", "ptrace"],
        types: &[PrivilegeEscalation, DenialOfService],
    },
    CveEntry {
        id: "2014-3180",
        syscall_names: &["compat_sys_nanosleep"],
        types: &[MemRead],
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::well_known as wk;

    #[test]
    fn table_has_36_entries() {
        assert_eq!(CVE_TABLE.len(), 36);
    }

    #[test]
    fn every_entry_resolves_to_syscalls() {
        for entry in &CVE_TABLE {
            let set = entry.syscalls();
            assert_eq!(
                set.len(),
                {
                    // compat aliases may collapse onto the same 64-bit number,
                    // but no entry in this table mixes an alias with its target.
                    entry.syscall_names.len()
                },
                "{}",
                entry.id
            );
            assert!(!entry.types.is_empty(), "{}", entry.id);
        }
    }

    #[test]
    fn compat_names_map_to_native_numbers() {
        let e = CVE_TABLE.iter().find(|e| e.id == "2018-1068").unwrap();
        assert!(e.syscalls().contains(wk::SETSOCKOPT));
        let e = CVE_TABLE.iter().find(|e| e.id == "2014-3180").unwrap();
        assert!(e
            .syscalls()
            .contains(Sysno::from_name("nanosleep").unwrap()));
    }

    #[test]
    fn blocking_any_trigger_syscall_protects() {
        let e = CVE_TABLE.iter().find(|e| e.id == "2014-4699").unwrap();
        // Allow everything: not protected.
        let everything = SyscallSet::all_known();
        assert!(!e.is_blocked_by(&everything));
        // Deny ptrace only: protected, the attack needs fork+clone+ptrace.
        let mut no_ptrace = everything;
        no_ptrace.remove(wk::PTRACE);
        assert!(e.is_blocked_by(&no_ptrace));
    }

    #[test]
    fn single_syscall_cve_blocked_only_without_it() {
        let e = CVE_TABLE.iter().find(|e| e.id == "2019-13272").unwrap();
        let mut allowed = SyscallSet::new();
        allowed.insert(wk::READ);
        assert!(e.is_blocked_by(&allowed));
        allowed.insert(wk::PTRACE);
        assert!(!e.is_blocked_by(&allowed));
    }

    #[test]
    fn ids_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for e in &CVE_TABLE {
            assert!(seen.insert(e.id), "duplicate {}", e.id);
        }
    }
}
