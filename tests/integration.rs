//! Workspace-level integration tests spanning every crate through the
//! `bside` facade: generator → ELF → CFG → symbolic identification →
//! shared interfaces → policy → replay, plus randomized soundness sweeps.

use bside::baselines::{chestnut, sysfilter};
use bside::core::{Analyzer, AnalyzerOptions, LibraryStore, SharedInterface};
use bside::filter::metrics::score;
use bside::filter::replay::replay_flat;
use bside::filter::FilterPolicy;
use bside::gen::corpus::corpus_with_size;
use bside::gen::{profiles, trace_syscalls};

#[test]
fn full_pipeline_on_all_profiles() {
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    for profile in profiles::all_profiles() {
        let analysis = analyzer
            .analyze_static(&profile.program.elf)
            .expect("analyzes");
        let truth = trace_syscalls(&profile.program, &[]);

        // Soundness + precision.
        let s = score(&analysis.syscalls, &truth);
        assert_eq!(s.false_negatives, 0, "{}", profile.name);
        assert!(s.f1 > 0.9, "{}: f1={}", profile.name, s.f1);

        // Policy replay: the traced execution passes the derived filter.
        let policy = FilterPolicy::allow_only(profile.name, analysis.syscalls);
        let trace: Vec<_> = truth.iter().collect();
        assert!(replay_flat(&policy, &trace).is_empty(), "{}", profile.name);
    }
}

#[test]
fn randomized_corpus_soundness_sweep() {
    // The paper's headline validity claim (§5.1: no false negatives),
    // checked over corpora generated from multiple seeds.
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    for seed in [1u64, 2, 3, 0xDEAD, 0xBEEF] {
        let corpus = corpus_with_size(seed, 6, 6, 4);
        let mut store = LibraryStore::new();
        for lib in &corpus.libraries {
            store.insert(
                analyzer
                    .analyze_library(&lib.elf, &lib.spec.name, None)
                    .expect("lib analyzes"),
            );
        }
        for binary in &corpus.binaries {
            let libs: Vec<_> = corpus.libs_of(binary).into_iter().cloned().collect();
            let analysis = if binary.is_static {
                analyzer.analyze_static(&binary.program.elf)
            } else {
                analyzer.analyze_dynamic(&binary.program.elf, &store, &[])
            }
            .unwrap_or_else(|e| panic!("seed {seed} {}: {e}", binary.program.spec.name));
            let truth = binary.truth(&libs);
            assert!(
                truth.is_subset(&analysis.syscalls),
                "seed {seed} {}: FN {}",
                binary.program.spec.name,
                truth.difference(&analysis.syscalls)
            );
        }
    }
}

#[test]
fn baselines_rank_below_bside_on_f1() {
    // Table 1's ordering as an invariant: B-Side ≥ SysFilter and
    // B-Side ≥ Chestnut on every profile (strict for the averages).
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    let mut avg = [0.0f64; 3];
    let mut n = [0usize; 3];
    for profile in profiles::all_profiles() {
        let elf = &profile.program.elf;
        let truth = trace_syscalls(&profile.program, &[]);
        let b = score(
            &analyzer.analyze_static(elf).expect("analyzes").syscalls,
            &truth,
        )
        .f1;
        avg[0] += b;
        n[0] += 1;
        if let Ok(set) = chestnut::analyze(elf, &[]) {
            let f1 = score(&set, &truth).f1;
            assert!(b >= f1, "{}: B-Side {b} < Chestnut {f1}", profile.name);
            avg[1] += f1;
            n[1] += 1;
        }
        if let Ok(set) = sysfilter::analyze(elf, &[]) {
            let f1 = score(&set, &truth).f1;
            assert!(b >= f1, "{}: B-Side {b} < SysFilter {f1}", profile.name);
            avg[2] += f1;
            n[2] += 1;
        }
    }
    let mean = |i: usize| avg[i] / n[i].max(1) as f64;
    assert!(
        mean(0) > mean(2) && mean(2) > mean(1),
        "ordering: {:?}",
        [mean(0), mean(1), mean(2)]
    );
}

#[test]
fn shared_interfaces_survive_json_round_trip() {
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    let corpus = corpus_with_size(11, 0, 2, 3);
    for lib in &corpus.libraries {
        let interface = analyzer
            .analyze_library(&lib.elf, &lib.spec.name, None)
            .expect("ok");
        let json = interface.to_json();
        let back = SharedInterface::from_json(&json).expect("parses");
        assert_eq!(interface, back, "{}", lib.spec.name);
    }
}

#[test]
fn library_store_resolution_is_order_independent() {
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    let corpus = corpus_with_size(21, 0, 4, 5);
    let interfaces: Vec<_> = corpus
        .libraries
        .iter()
        .map(|l| {
            analyzer
                .analyze_library(&l.elf, &l.spec.name, None)
                .expect("ok")
        })
        .collect();

    let mut forward = LibraryStore::new();
    for i in &interfaces {
        forward.insert(i.clone());
    }
    let mut reverse = LibraryStore::new();
    for i in interfaces.iter().rev() {
        reverse.insert(i.clone());
    }
    for binary in corpus.binaries.iter().filter(|b| !b.is_static) {
        let a = analyzer
            .analyze_dynamic(&binary.program.elf, &forward, &[])
            .expect("ok");
        let b = analyzer
            .analyze_dynamic(&binary.program.elf, &reverse, &[])
            .expect("ok");
        assert_eq!(a.syscalls, b.syscalls, "{}", binary.program.spec.name);
    }
}

#[test]
fn corrupt_inputs_fail_cleanly_across_the_stack() {
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    // Arbitrary bytes.
    assert!(bside::elf::Elf::parse(&[0u8; 64]).is_err());
    // A valid ELF with garbage text: analysis degrades, never panics.
    let program = profiles::sqlite().program;
    let mut image = program.image.clone();
    // Stomp over a chunk in the middle of the file (inside .text).
    for b in image.iter_mut().skip(0x1200).take(64) {
        *b = 0x06; // undecodable opcode
    }
    if let Ok(elf) = bside::elf::Elf::parse(&image) {
        let _ = analyzer.analyze_static(&elf); // may Err, must not panic
    }
}

#[test]
fn phase_policies_accept_traces_on_looped_programs() {
    // Temporal policies must never kill a legitimate execution: build
    // programs with explicit init → serve-loop → shutdown structure,
    // derive the phase policy, and replay the interpreter's trace.
    use bside::core::phase::{detect_phases, PhaseOptions};
    use bside::filter::replay::replay_phased;
    use bside::filter::PhasePolicy;
    use bside::gen::{generate, ProgramSpec, Scenario, ServeLoop, WrapperStyle};
    use std::collections::HashMap;

    let analyzer = Analyzer::new(AnalyzerOptions::default());
    for (wrapper, seed_sysno) in [
        (WrapperStyle::None, 0u32),
        (WrapperStyle::Register, 10),
        (WrapperStyle::Stack, 20),
    ] {
        let spec = ProgramSpec {
            name: format!("looped_{seed_sysno}"),
            kind: bside::elf::ElfKind::Executable,
            wrapper_style: wrapper,
            scenarios: vec![
                Scenario::Direct(vec![2]),
                Scenario::Direct(vec![seed_sysno + 1, seed_sysno + 2]),
                Scenario::ViaWrapper(vec![seed_sysno + 3]),
                Scenario::BranchJoin(seed_sysno + 4, seed_sysno + 5),
                Scenario::ThroughStack(seed_sysno + 6),
                Scenario::Direct(vec![3]),
            ],
            dead_scenarios: vec![],
            imports: vec![],
            libs: vec![],
            serve_loop: Some(ServeLoop {
                start: 1,
                end: 5,
                iterations: 3,
            }),
        };
        let program = generate(&spec);
        let analysis = analyzer.analyze_static(&program.elf).expect("analyzes");
        let site_sets: HashMap<u64, bside::SyscallSet> = analysis
            .sites
            .iter()
            .map(|s| (s.site, s.syscalls))
            .collect();
        let automaton = detect_phases(&analysis.cfg, &site_sets, &PhaseOptions::default());
        let policy = PhasePolicy::from_automaton(&spec.name, &automaton);

        let image = bside::gen::link(&program, &[]);
        let trace = bside::x86::interp::execute(
            &image,
            program.elf.entry_point(),
            &bside::x86::interp::ExecConfig::default(),
        );
        let sysnos: Vec<bside::Sysno> = trace
            .syscalls
            .iter()
            .filter_map(|&(_, rax)| u32::try_from(rax).ok().and_then(bside::Sysno::new))
            .collect();
        assert!(
            sysnos.len() > 10,
            "loop actually ran: {} calls",
            sysnos.len()
        );
        replay_phased(&policy, &sysnos).unwrap_or_else(|v| {
            panic!(
                "{:?} policy killed legitimate {} at index {} (phase {})",
                wrapper, v.sysno, v.index, v.phase
            )
        });
    }
}

#[test]
fn shallow_context_depth_coarsens_phases() {
    // The phase NFA's call-string contexts are an ablatable refinement:
    // shallow depths step over nested calls, dropping their syscall
    // sites from the automaton and coarsening the phase structure.
    use bside::core::phase::{detect_phases, PhaseOptions};
    use std::collections::HashMap;

    let profile = profiles::nginx();
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    let analysis = analyzer
        .analyze_static(&profile.program.elf)
        .expect("analyzes");
    let site_sets: HashMap<u64, bside::SyscallSet> = analysis
        .sites
        .iter()
        .map(|s| (s.site, s.syscalls))
        .collect();

    let precise = detect_phases(&analysis.cfg, &site_sets, &PhaseOptions::default());
    let shallow = detect_phases(
        &analysis.cfg,
        &site_sets,
        &PhaseOptions {
            context_depth: 1,
            ..PhaseOptions::default()
        },
    );
    // With depth 1, calls nested inside scenario functions (the wrapper,
    // helpers) are stepped over instead of entered, so their syscall
    // sites vanish from the automaton and the structure coarsens.
    assert!(
        precise.phases.len() > shallow.phases.len(),
        "contexts: {} phases, depth-1: {} phases",
        precise.phases.len(),
        shallow.phases.len()
    );
}
