//! Property-based soundness: for arbitrary generated programs, the
//! identified set is a superset of the constructed runtime truth and
//! matches the sound static optimum — the §5.1 validity claim quantified
//! over the program space rather than six hand-picked applications.

use bside::core::{Analyzer, AnalyzerOptions};
use bside::elf::ElfKind;
use bside::gen::{generate, trace_syscalls, ProgramSpec, Scenario, WrapperStyle};
use proptest::prelude::*;

fn sysno_strategy() -> impl Strategy<Value = u32> {
    // Assigned, non-terminating numbers.
    prop_oneof![0u32..60, 61u32..231, 232u32..335]
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    prop_oneof![
        prop::collection::vec(sysno_strategy(), 1..5).prop_map(Scenario::Direct),
        (sysno_strategy(), sysno_strategy()).prop_map(|(a, b)| Scenario::BranchJoin(a, b)),
        sysno_strategy().prop_map(Scenario::ThroughStack),
        prop::collection::vec(sysno_strategy(), 1..5).prop_map(Scenario::ViaWrapper),
        sysno_strategy().prop_map(Scenario::IndirectHelper),
        sysno_strategy().prop_map(Scenario::PopularHelper),
        (sysno_strategy(), 1u8..4).prop_map(|(n, c)| Scenario::Loop(n, c)),
        sysno_strategy().prop_map(Scenario::TailCall),
        (sysno_strategy(), 0u32..20).prop_map(|(b, d)| {
            // Keep the computed number off the terminating syscalls.
            let d = if matches!(b + d, 60 | 231) { d + 1 } else { d };
            Scenario::ComputedAdd(b, d)
        }),
        (prop::collection::vec(sysno_strategy(), 2..4), any::<prop::sample::Index>()).prop_map(
            |(options, idx)| {
                let used = idx.index(options.len());
                Scenario::DispatchTable { options, used }
            }
        ),
    ]
}

fn wrapper_strategy() -> impl Strategy<Value = WrapperStyle> {
    prop_oneof![
        Just(WrapperStyle::None),
        Just(WrapperStyle::Register),
        Just(WrapperStyle::Stack),
    ]
}

fn kind_strategy() -> impl Strategy<Value = ElfKind> {
    prop_oneof![Just(ElfKind::Executable), Just(ElfKind::PieExecutable)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn identified_is_sound_and_optimal(
        kind in kind_strategy(),
        wrapper_style in wrapper_strategy(),
        scenarios in prop::collection::vec(scenario_strategy(), 1..8),
        dead in prop::collection::vec(scenario_strategy(), 0..4),
    ) {
        let spec = ProgramSpec {
            name: "prop".into(),
            kind,
            wrapper_style,
            scenarios,
            dead_scenarios: dead,
            imports: vec![],
            libs: vec![],
            serve_loop: None,
        };
        let program = generate(&spec);
        let analyzer = Analyzer::new(AnalyzerOptions::default());
        let analysis = analyzer.analyze_static(&program.elf).expect("analyzes");

        // Soundness: nothing the program can do is missed.
        prop_assert!(
            program.truth.is_subset(&analysis.syscalls),
            "FN: {}",
            program.truth.difference(&analysis.syscalls)
        );
        // Precision: exactly the sound static optimum on clean binaries.
        prop_assert_eq!(analysis.syscalls, program.static_truth);
    }

    #[test]
    fn trace_is_always_within_identified(
        wrapper_style in wrapper_strategy(),
        scenarios in prop::collection::vec(scenario_strategy(), 1..6),
    ) {
        let spec = ProgramSpec {
            name: "prop_trace".into(),
            kind: ElfKind::Executable,
            wrapper_style,
            scenarios,
            dead_scenarios: vec![],
            imports: vec![],
            libs: vec![],
            serve_loop: None,
        };
        let program = generate(&spec);
        let traced = trace_syscalls(&program, &[]);
        let analysis = Analyzer::new(AnalyzerOptions::default())
            .analyze_static(&program.elf)
            .expect("analyzes");
        prop_assert!(traced.is_subset(&analysis.syscalls));
        prop_assert_eq!(traced, program.truth, "full-coverage trace equals constructed truth");
    }
}
