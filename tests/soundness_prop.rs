//! Property-based soundness: for arbitrary generated programs, the
//! identified set is a superset of the constructed runtime truth and
//! matches the sound static optimum — the §5.1 validity claim quantified
//! over the program space rather than six hand-picked applications.
//!
//! The build environment has no registry access, so instead of proptest
//! this uses a seeded uniform generator over the same scenario space: the
//! properties are checked on 48 deterministic pseudo-random programs per
//! test (failures print the seed index for replay).

use bside::core::{Analyzer, AnalyzerOptions};
use bside::elf::ElfKind;
use bside::gen::{generate, trace_syscalls, ProgramSpec, Scenario, WrapperStyle};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// Assigned, non-terminating syscall numbers.
fn sysno(rng: &mut SmallRng) -> u32 {
    match rng.gen_range(0..3) {
        0 => rng.gen_range(0u32..60),
        1 => rng.gen_range(61u32..231),
        _ => rng.gen_range(232u32..335),
    }
}

fn sysnos(rng: &mut SmallRng, lo: usize, hi: usize) -> Vec<u32> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| sysno(rng)).collect()
}

fn scenario(rng: &mut SmallRng) -> Scenario {
    match rng.gen_range(0..10) {
        0 => Scenario::Direct(sysnos(rng, 1, 5)),
        1 => Scenario::BranchJoin(sysno(rng), sysno(rng)),
        2 => Scenario::ThroughStack(sysno(rng)),
        3 => Scenario::ViaWrapper(sysnos(rng, 1, 5)),
        4 => Scenario::IndirectHelper(sysno(rng)),
        5 => Scenario::PopularHelper(sysno(rng)),
        6 => Scenario::Loop(sysno(rng), rng.gen_range(1u8..4)),
        7 => Scenario::TailCall(sysno(rng)),
        8 => {
            let b = sysno(rng);
            let d = rng.gen_range(0u32..20);
            // Keep the computed number off the terminating syscalls.
            let d = if matches!(b + d, 60 | 231) { d + 1 } else { d };
            Scenario::ComputedAdd(b, d)
        }
        _ => {
            let options = sysnos(rng, 2, 4);
            let used = rng.gen_range(0..options.len());
            Scenario::DispatchTable { options, used }
        }
    }
}

fn scenarios(rng: &mut SmallRng, lo: usize, hi: usize) -> Vec<Scenario> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| scenario(rng)).collect()
}

fn wrapper_style(rng: &mut SmallRng) -> WrapperStyle {
    match rng.gen_range(0..3) {
        0 => WrapperStyle::None,
        1 => WrapperStyle::Register,
        _ => WrapperStyle::Stack,
    }
}

fn kind(rng: &mut SmallRng) -> ElfKind {
    if rng.gen_bool(0.5) {
        ElfKind::Executable
    } else {
        ElfKind::PieExecutable
    }
}

#[test]
fn identified_is_sound_and_optimal() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB51DE + case);
        let spec = ProgramSpec {
            name: "prop".into(),
            kind: kind(&mut rng),
            wrapper_style: wrapper_style(&mut rng),
            scenarios: scenarios(&mut rng, 1, 8),
            dead_scenarios: scenarios(&mut rng, 0, 4),
            imports: vec![],
            libs: vec![],
            serve_loop: None,
        };
        let program = generate(&spec);
        let analyzer = Analyzer::new(AnalyzerOptions::default());
        let analysis = analyzer.analyze_static(&program.elf).expect("analyzes");

        // Soundness: nothing the program can do is missed.
        assert!(
            program.truth.is_subset(&analysis.syscalls),
            "case {case}: FN: {}",
            program.truth.difference(&analysis.syscalls)
        );
        // Precision: exactly the sound static optimum on clean binaries.
        assert_eq!(
            analysis.syscalls, program.static_truth,
            "case {case}: identified set is not the static optimum"
        );
    }
}

#[test]
fn trace_is_always_within_identified() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7A5CE + case);
        let spec = ProgramSpec {
            name: "prop_trace".into(),
            kind: ElfKind::Executable,
            wrapper_style: wrapper_style(&mut rng),
            scenarios: scenarios(&mut rng, 1, 6),
            dead_scenarios: vec![],
            imports: vec![],
            libs: vec![],
            serve_loop: None,
        };
        let program = generate(&spec);
        let traced = trace_syscalls(&program, &[]);
        let analysis = Analyzer::new(AnalyzerOptions::default())
            .analyze_static(&program.elf)
            .expect("analyzes");
        assert!(traced.is_subset(&analysis.syscalls), "case {case}");
        assert_eq!(
            traced, program.truth,
            "case {case}: full-coverage trace equals constructed truth"
        );
    }
}
